//! Tree operations: induced subtrees, unary-node suppression, subtree
//! extraction, canonical ordering and isomorphism.
//!
//! These implement the tree-algebra pieces the paper's queries are built on:
//! *tree projection* (Fig. 2) is "restrict to a leaf set, then suppress
//! out-degree-1 nodes summing edge weights"; *tree pattern match* needs a
//! name-aware isomorphism check on the projected tree.

use crate::error::PhyloError;
use crate::traverse::Traverse;
use crate::tree::{NodeId, Tree};
use std::collections::{HashMap, HashSet};

/// Extract the subtree rooted at `root` as a new independent [`Tree`].
/// Node names and branch lengths are preserved; the new root keeps its
/// branch length (callers can clear it if undesired).
pub fn extract_subtree(tree: &Tree, root: NodeId) -> Tree {
    let mut out = Tree::new();
    let new_root = out.add_node();
    if let Some(name) = tree.name(root) {
        out.set_name(new_root, name).expect("new root exists");
    }
    if let Some(bl) = tree.branch_length(root) {
        out.set_branch_length(new_root, bl)
            .expect("new root exists");
    }
    // Iterative copy to stay safe on very deep trees.
    let mut stack = vec![(root, new_root)];
    while let Some((old, new)) = stack.pop() {
        for &child in tree.children(old) {
            let copied = out
                .add_child(
                    new,
                    tree.name(child).map(|s| s.to_string()),
                    tree.branch_length(child),
                )
                .expect("parent was just created");
            stack.push((child, copied));
        }
    }
    out
}

/// Restrict `tree` to the subtree induced by `leaves`: the union of all
/// root-to-leaf paths for the given leaves, rooted at their LCA.
/// No unary suppression is performed; see [`suppress_unary`] / [`project`].
pub fn induced_subtree(tree: &Tree, leaves: &[NodeId]) -> Result<Tree, PhyloError> {
    if leaves.is_empty() {
        return Err(PhyloError::TooFewLeaves {
            required: 1,
            actual: 0,
        });
    }
    for &l in leaves {
        tree.try_node(l)?;
    }
    // Mark every node on a path from the LCA of the set down to a kept leaf.
    let mut lca = leaves[0];
    for &l in &leaves[1..] {
        lca = tree.lca(lca, l);
    }
    let mut keep: HashSet<NodeId> = HashSet::with_capacity(leaves.len() * 2);
    for &l in leaves {
        let mut cur = l;
        loop {
            if !keep.insert(cur) {
                break;
            }
            if cur == lca {
                break;
            }
            cur = tree
                .parent(cur)
                .expect("walked past the root before reaching the LCA");
        }
    }
    // Copy the kept nodes in pre-order from the LCA.
    let mut out = Tree::new();
    let mut map: HashMap<NodeId, NodeId> = HashMap::with_capacity(keep.len());
    let new_root = out.add_node();
    if let Some(name) = tree.name(lca) {
        out.set_name(new_root, name).expect("root exists");
    }
    map.insert(lca, new_root);
    for node in tree.preorder_from(lca) {
        if node == lca || !keep.contains(&node) {
            continue;
        }
        let parent = tree.parent(node).expect("non-root kept node has a parent");
        let new_parent = *map
            .get(&parent)
            .expect("pre-order guarantees the parent was copied");
        let copied = out
            .add_child(
                new_parent,
                tree.name(node).map(|s| s.to_string()),
                tree.branch_length(node),
            )
            .expect("parent exists");
        map.insert(node, copied);
    }
    Ok(out)
}

/// Suppress every out-degree-1 interior node in place, merging it with its
/// single child and **summing the two edge weights** — exactly the rule the
/// paper applies when projecting (the parent of `Lla` in Fig. 2).
///
/// The root is also suppressed if it has a single child (the child becomes
/// the new root and its branch length is cleared), matching the convention
/// that reconstruction algorithms never produce unary nodes.
///
/// Returns a *new* tree with dense node ids.
pub fn suppress_unary(tree: &Tree) -> Tree {
    let Some(root) = tree.root() else {
        return Tree::new();
    };

    // Walk down from the root skipping unary chains.
    let mut effective_root = root;
    let mut root_skipped = false;
    while tree.degree(effective_root) == 1 && !tree.is_leaf(effective_root) {
        effective_root = tree.children(effective_root)[0];
        root_skipped = true;
    }

    let mut out = Tree::new();
    let new_root = out.add_node();
    if let Some(name) = tree.name(effective_root) {
        out.set_name(new_root, name).expect("root exists");
    }
    if !root_skipped {
        if let Some(bl) = tree.branch_length(effective_root) {
            out.set_branch_length(new_root, bl).expect("root exists");
        }
    }

    // For each copied node, walk each child through unary chains, accumulating
    // branch lengths.
    let mut stack = vec![(effective_root, new_root)];
    while let Some((old, new)) = stack.pop() {
        for &child in tree.children(old) {
            let mut target = child;
            let mut length = tree.node(child).branch_length_or_zero();
            let mut saw_length = tree.branch_length(child).is_some();
            while tree.degree(target) == 1 {
                let only = tree.children(target)[0];
                length += tree.node(only).branch_length_or_zero();
                saw_length |= tree.branch_length(only).is_some();
                target = only;
            }
            let copied = out
                .add_child(
                    new,
                    tree.name(target).map(|s| s.to_string()),
                    saw_length.then_some(length),
                )
                .expect("parent exists");
            stack.push((target, copied));
        }
    }
    out
}

/// Project `tree` onto the given `leaves`: induced subtree followed by unary
/// suppression. This is the *tree projection* operation of §1/§2.2.
pub fn project(tree: &Tree, leaves: &[NodeId]) -> Result<Tree, PhyloError> {
    let induced = induced_subtree(tree, leaves)?;
    Ok(suppress_unary(&induced))
}

/// Project `tree` onto leaves given by name.
pub fn project_by_names(tree: &Tree, names: &[&str]) -> Result<Tree, PhyloError> {
    let mut leaves = Vec::with_capacity(names.len());
    for name in names {
        let id = tree
            .find_leaf_by_name(name)
            .ok_or_else(|| PhyloError::UnknownLeaf((*name).to_string()))?;
        leaves.push(id);
    }
    project(tree, &leaves)
}

/// A canonical form of a tree that is invariant under reordering of children.
///
/// Two trees have equal canonical forms iff they are isomorphic as rooted,
/// leaf-labelled trees (names compared exactly; branch lengths ignored).
pub fn canonical_form(tree: &Tree) -> String {
    fn recurse(tree: &Tree, node: NodeId, out: &mut String) {
        if tree.is_leaf(node) {
            out.push_str(tree.name(node).unwrap_or(""));
            return;
        }
        let mut parts: Vec<String> = tree
            .children(node)
            .iter()
            .map(|&c| {
                let mut s = String::new();
                recurse(tree, c, &mut s);
                s
            })
            .collect();
        parts.sort();
        out.push('(');
        out.push_str(&parts.join(","));
        out.push(')');
    }
    let mut s = String::new();
    if let Some(root) = tree.root() {
        recurse(tree, root, &mut s);
    }
    s
}

/// `true` when the two trees are isomorphic as rooted, leaf-labelled trees
/// (topology + names; branch lengths ignored). This is the *exact* tree
/// pattern match predicate of §2.2.
pub fn isomorphic(a: &Tree, b: &Tree) -> bool {
    if a.node_count() != b.node_count() || a.leaf_count() != b.leaf_count() {
        return false;
    }
    canonical_form(a) == canonical_form(b)
}

/// `true` when the two trees are isomorphic *and* corresponding branch
/// lengths agree within `tol`.
pub fn isomorphic_with_lengths(a: &Tree, b: &Tree, tol: f64) -> bool {
    fn signature(tree: &Tree, node: NodeId, tol: f64) -> String {
        let bl = tree
            .branch_length(node)
            .map(|l| format!("{:.*}", decimals(tol), l));
        let bl = bl.unwrap_or_default();
        if tree.is_leaf(node) {
            return format!("{}:{}", tree.name(node).unwrap_or(""), bl);
        }
        let mut parts: Vec<String> = tree
            .children(node)
            .iter()
            .map(|&c| signature(tree, c, tol))
            .collect();
        parts.sort();
        format!("({}):{}", parts.join(","), bl)
    }
    fn decimals(tol: f64) -> usize {
        // Render enough decimal places that differences larger than `tol`
        // cannot round to the same string.
        let mut d = 0usize;
        let mut t = tol.max(1e-12);
        while t < 1.0 && d < 12 {
            t *= 10.0;
            d += 1;
        }
        d
    }
    match (a.root(), b.root()) {
        (Some(ra), Some(rb)) => signature(a, ra, tol) == signature(b, rb, tol),
        (None, None) => true,
        _ => false,
    }
}

/// Count nodes by out-degree; useful for checking reconstruction outputs
/// ("all nodes in trees produced by reconstruction algorithms have outdegree
/// greater than 1").
pub fn degree_histogram(tree: &Tree) -> HashMap<usize, usize> {
    let mut hist = HashMap::new();
    for id in tree.node_ids() {
        if !tree.is_leaf(id) {
            *hist.entry(tree.degree(id)).or_insert(0) += 1;
        }
    }
    hist
}

/// `true` if no interior node has out-degree 1 (reconstruction-style tree).
pub fn is_unary_free(tree: &Tree) -> bool {
    tree.node_ids()
        .all(|id| tree.is_leaf(id) || tree.degree(id) != 1)
}

/// `true` if every interior node has out-degree exactly 2.
pub fn is_binary(tree: &Tree) -> bool {
    tree.node_ids()
        .all(|id| tree.is_leaf(id) || tree.degree(id) == 2)
}

/// Relabel a tree's leaves using the provided map (names not present in the
/// map are left unchanged). Returns the number of leaves renamed.
pub fn rename_leaves(tree: &mut Tree, renames: &HashMap<String, String>) -> usize {
    let mut count = 0;
    let ids: Vec<NodeId> = tree.leaf_ids().collect();
    for id in ids {
        if let Some(old) = tree.name(id).map(|s| s.to_string()) {
            if let Some(new) = renames.get(&old) {
                tree.set_name(id, new.clone()).expect("leaf exists");
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{balanced_binary, caterpillar, figure1_tree};

    #[test]
    fn figure2_projection_matches_paper() {
        // Projecting Figure 1 over {Bha, Lla, Syn} must give Figure 2:
        // root with children (Syn:2.5) and an interior node at 1.5 with
        // children Bha:0.75 and Lla:1.5 (1.0 + 0.5 merged).
        let t = figure1_tree();
        let p = project_by_names(&t, &["Bha", "Lla", "Syn"]).unwrap();
        assert_eq!(p.leaf_count(), 3);
        assert_eq!(p.node_count(), 5);
        assert!(is_unary_free(&p));
        let lla = p.find_leaf_by_name("Lla").unwrap();
        assert!((p.branch_length(lla).unwrap() - 1.5).abs() < 1e-12);
        let bha = p.find_leaf_by_name("Bha").unwrap();
        assert!((p.branch_length(bha).unwrap() - 0.75).abs() < 1e-12);
        let syn = p.find_leaf_by_name("Syn").unwrap();
        assert!((p.branch_length(syn).unwrap() - 2.5).abs() < 1e-12);
        // Root-to-leaf distances are preserved by projection.
        assert!((p.root_distance(lla) - 3.0).abs() < 1e-12);
        assert!((p.root_distance(bha) - 2.25).abs() < 1e-12);
    }

    #[test]
    fn projection_of_all_leaves_is_same_topology() {
        let t = figure1_tree();
        let all: Vec<&str> = vec!["Bha", "Lla", "Spy", "Syn", "Bsu"];
        let p = project_by_names(&t, &all).unwrap();
        assert!(isomorphic(&t, &p));
    }

    #[test]
    fn projection_two_leaves() {
        let t = figure1_tree();
        let p = project_by_names(&t, &["Lla", "Spy"]).unwrap();
        // Root of the projection is their LCA; both leaves attach directly.
        assert_eq!(p.leaf_count(), 2);
        assert_eq!(p.node_count(), 3);
    }

    #[test]
    fn projection_single_leaf() {
        let t = figure1_tree();
        let leaf = t.find_leaf_by_name("Syn").unwrap();
        let p = project(&t, &[leaf]).unwrap();
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.name(p.root_unchecked()), Some("Syn"));
    }

    #[test]
    fn projection_unknown_leaf_errors() {
        let t = figure1_tree();
        assert!(matches!(
            project_by_names(&t, &["Bha", "Nope"]),
            Err(PhyloError::UnknownLeaf(_))
        ));
    }

    #[test]
    fn projection_empty_errors() {
        let t = figure1_tree();
        assert!(project(&t, &[]).is_err());
    }

    #[test]
    fn induced_subtree_keeps_unary_nodes() {
        let t = figure1_tree();
        let bha = t.find_leaf_by_name("Bha").unwrap();
        let lla = t.find_leaf_by_name("Lla").unwrap();
        let ind = induced_subtree(&t, &[bha, lla]).unwrap();
        // Path root(i1) -> {Bha, i2 -> Lla}: i2 is unary here.
        assert!(!is_unary_free(&ind));
        let sup = suppress_unary(&ind);
        assert!(is_unary_free(&sup));
    }

    #[test]
    fn suppress_unary_root_chain() {
        // root -> a -> b -> {x, y}; root and a are unary and must disappear.
        let mut t = Tree::new();
        let root = t.add_node();
        let a = t.add_child(root, None, Some(1.0)).unwrap();
        let b = t.add_child(a, None, Some(2.0)).unwrap();
        t.add_child(b, Some("x".into()), Some(0.5)).unwrap();
        t.add_child(b, Some("y".into()), Some(0.25)).unwrap();
        let s = suppress_unary(&t);
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.leaf_count(), 2);
        assert!(s.branch_length(s.root_unchecked()).is_none());
    }

    #[test]
    fn suppress_unary_sums_lengths_along_chain() {
        // root -> {leaf L:1.0, chain a:1 -> b:2 -> c:3 -> leaf M:4}
        let mut t = Tree::new();
        let root = t.add_node();
        t.add_child(root, Some("L".into()), Some(1.0)).unwrap();
        let a = t.add_child(root, None, Some(1.0)).unwrap();
        let b = t.add_child(a, None, Some(2.0)).unwrap();
        let c = t.add_child(b, None, Some(3.0)).unwrap();
        t.add_child(c, Some("M".into()), Some(4.0)).unwrap();
        let s = suppress_unary(&t);
        let m = s.find_leaf_by_name("M").unwrap();
        assert!((s.branch_length(m).unwrap() - 10.0).abs() < 1e-12);
        assert_eq!(s.node_count(), 3);
    }

    #[test]
    fn extract_subtree_roundtrip() {
        let t = figure1_tree();
        let root = t.root_unchecked();
        let copy = extract_subtree(&t, root);
        assert!(isomorphic(&t, &copy));
        // Extract just the (Lla, Spy) clade.
        let lla = t.find_leaf_by_name("Lla").unwrap();
        let clade_root = t.parent(lla).unwrap();
        let clade = extract_subtree(&t, clade_root);
        assert_eq!(clade.leaf_count(), 2);
        assert_eq!(clade.node_count(), 3);
    }

    #[test]
    fn canonical_form_is_order_invariant() {
        // Same topology with children in different orders.
        let mut a = Tree::new();
        let ra = a.add_node();
        a.add_child(ra, Some("X".into()), None).unwrap();
        a.add_child(ra, Some("Y".into()), None).unwrap();
        let mut b = Tree::new();
        let rb = b.add_node();
        b.add_child(rb, Some("Y".into()), None).unwrap();
        b.add_child(rb, Some("X".into()), None).unwrap();
        assert_eq!(canonical_form(&a), canonical_form(&b));
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn pattern_mismatch_when_leaves_swapped() {
        // The paper: swapping Bha and Lla in the Fig. 2 pattern no longer
        // matches the tree.
        let t = figure1_tree();
        let p = project_by_names(&t, &["Bha", "Lla", "Syn"]).unwrap();
        let mut swapped = p.clone();
        let mut renames = HashMap::new();
        renames.insert("Bha".to_string(), "Lla".to_string());
        renames.insert("Lla".to_string(), "Bha".to_string());
        rename_leaves(&mut swapped, &renames);
        // Bha and Lla are siblings in this projection, so the unweighted
        // labelled topology is unchanged by the swap …
        assert_eq!(canonical_form(&p), canonical_form(&swapped));
        // … but the weighted pattern no longer matches (Bha:0.75 vs Lla:1.5
        // exchange places), which is what the paper's example relies on.
        assert!(!isomorphic_with_lengths(&p, &swapped, 1e-9));
    }

    #[test]
    fn isomorphic_with_lengths_tolerance() {
        let t = figure1_tree();
        let mut t2 = figure1_tree();
        let bha = t2.find_leaf_by_name("Bha").unwrap();
        t2.set_branch_length(bha, 0.75 + 1e-7).unwrap();
        assert!(isomorphic_with_lengths(&t, &t2, 1e-3));
        t2.set_branch_length(bha, 0.85).unwrap();
        assert!(!isomorphic_with_lengths(&t, &t2, 1e-3));
    }

    #[test]
    fn degree_histogram_counts() {
        let t = figure1_tree();
        let h = degree_histogram(&t);
        assert_eq!(h.get(&3), Some(&1)); // root
        assert_eq!(h.get(&2), Some(&2)); // the two interior nodes
        assert_eq!(h.get(&1), None);
    }

    #[test]
    fn binary_checks() {
        assert!(is_binary(&balanced_binary(3, 1.0)));
        assert!(is_binary(&caterpillar(5, 1.0)));
        assert!(!is_binary(&figure1_tree())); // root has degree 3
        assert!(is_unary_free(&figure1_tree()));
    }

    #[test]
    fn projection_on_large_balanced_tree_preserves_distances() {
        let t = balanced_binary(8, 1.0); // 256 leaves
        let names: Vec<String> = t.leaf_names().into_iter().step_by(17).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let p = project_by_names(&t, &refs).unwrap();
        assert_eq!(p.leaf_count(), refs.len());
        assert!(is_unary_free(&p));
        // Root distances from the projection root equal original distances
        // minus the (constant) distance from the original root to the LCA.
        let orig_lca = {
            let ids: Vec<NodeId> = refs
                .iter()
                .map(|n| t.find_leaf_by_name(n).unwrap())
                .collect();
            let mut l = ids[0];
            for &x in &ids[1..] {
                l = t.lca(l, x);
            }
            l
        };
        let offset = t.root_distance(orig_lca);
        for name in &refs {
            let orig = t.root_distance(t.find_leaf_by_name(name).unwrap());
            let proj = p.root_distance(p.find_leaf_by_name(name).unwrap());
            assert!(
                (orig - offset - proj).abs() < 1e-9,
                "distance mismatch for {name}"
            );
        }
    }
}
