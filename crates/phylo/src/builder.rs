//! Convenience builder for constructing trees programmatically.

use crate::error::PhyloError;
use crate::tree::{NodeId, Tree};

/// A small fluent helper for building trees in tests, examples and
/// generators without having to thread `NodeId`s around by hand.
///
/// ```
/// use phylo::TreeBuilder;
///
/// let mut b = TreeBuilder::new();
/// let root = b.root();
/// let clade = b.child(root, None, Some(1.5));
/// b.leaf(clade, "Bha", 0.75);
/// b.leaf(root, "Syn", 2.5);
/// let tree = b.finish();
/// assert_eq!(tree.leaf_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TreeBuilder {
    tree: Tree,
    root: NodeId,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    /// Start a new tree with an anonymous root.
    pub fn new() -> Self {
        let mut tree = Tree::new();
        let root = tree.add_node();
        TreeBuilder { tree, root }
    }

    /// Start a new tree with a named root.
    pub fn with_root_name(name: impl Into<String>) -> Self {
        let mut b = Self::new();
        b.tree.set_name(b.root, name).expect("root exists");
        b
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Add an interior (or as-yet childless) node under `parent`.
    pub fn child(
        &mut self,
        parent: NodeId,
        name: Option<&str>,
        branch_length: Option<f64>,
    ) -> NodeId {
        self.tree
            .add_child(parent, name.map(|s| s.to_string()), branch_length)
            .expect("builder parents are always valid")
    }

    /// Add a named leaf with a branch length under `parent`.
    pub fn leaf(&mut self, parent: NodeId, name: impl Into<String>, branch_length: f64) -> NodeId {
        self.tree
            .add_child(parent, Some(name.into()), Some(branch_length))
            .expect("builder parents are always valid")
    }

    /// Access the tree under construction.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Mutable access to the tree under construction.
    pub fn tree_mut(&mut self) -> &mut Tree {
        &mut self.tree
    }

    /// Finish building and return the tree.
    pub fn finish(self) -> Tree {
        self.tree
    }
}

/// Build the example tree from **Figure 1** of the paper:
///
/// ```text
///            root
///          /  |   \
///        i1  Syn  Bsu
///       /  \  2.5  1.25
///   Bha    i2
///   0.75  /  \
///       Lla  Spy
///       1.0  1.0
/// ```
/// where the edge root→i1 has length 1.5 and i1→i2 has length 0.5.
///
/// This tree is used throughout the test-suite and the paper's worked
/// examples (tree projection in Fig. 2, the layered index in Fig. 4, the
/// time-based sampling example in §2.2).
pub fn figure1_tree() -> Tree {
    let mut b = TreeBuilder::new();
    let root = b.root();
    let i1 = b.child(root, None, Some(1.5));
    b.leaf(i1, "Bha", 0.75);
    let i2 = b.child(i1, None, Some(0.5));
    b.leaf(i2, "Lla", 1.0);
    b.leaf(i2, "Spy", 1.0);
    b.leaf(root, "Syn", 2.5);
    b.leaf(root, "Bsu", 1.25);
    b.finish()
}

/// Build a caterpillar (fully unbalanced) tree with `depth` internal levels;
/// every internal node has one leaf child and one internal child, except the
/// deepest which has two leaves. Leaves are named `L0..L<depth>`. Every edge
/// has length `edge_len`.
///
/// Caterpillars are the worst case for flat Dewey labels (label length grows
/// linearly with depth), so they drive experiment E3.
pub fn caterpillar(depth: usize, edge_len: f64) -> Tree {
    assert!(depth >= 1, "caterpillar needs depth >= 1");
    let mut b = TreeBuilder::new();
    let mut spine = b.root();
    for i in 0..depth {
        b.leaf(spine, format!("L{i}"), edge_len);
        if i + 1 == depth {
            b.leaf(spine, format!("L{}", depth), edge_len);
        } else {
            spine = b.child(spine, None, Some(edge_len));
        }
    }
    b.finish()
}

/// Build a complete binary tree with `levels` levels below the root
/// (so `2^levels` leaves), all edges of length `edge_len`. Leaves are named
/// `T0..`.
pub fn balanced_binary(levels: usize, edge_len: f64) -> Tree {
    let mut b = TreeBuilder::new();
    let mut frontier = vec![b.root()];
    for _ in 0..levels {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for parent in frontier {
            next.push(b.child(parent, None, Some(edge_len)));
            next.push(b.child(parent, None, Some(edge_len)));
        }
        frontier = next;
    }
    for (i, leaf) in frontier.into_iter().enumerate() {
        b.tree_mut()
            .set_name(leaf, format!("T{i}"))
            .expect("leaf exists");
    }
    b.finish()
}

impl TreeBuilder {
    /// Consume the builder, validating that all leaf names are unique.
    pub fn finish_checked(self) -> Result<Tree, PhyloError> {
        self.tree.name_index()?;
        Ok(self.tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::Traverse;

    #[test]
    fn figure1_shape() {
        let t = figure1_tree();
        assert_eq!(t.node_count(), 8);
        assert_eq!(t.leaf_count(), 5);
        assert_eq!(t.max_depth(), 3);
        let names: Vec<_> = t.leaf_names();
        assert_eq!(names, vec!["Bha", "Lla", "Spy", "Syn", "Bsu"]);
    }

    #[test]
    fn figure1_distances_match_paper() {
        let t = figure1_tree();
        let d = |n: &str| t.root_distance(t.find_leaf_by_name(n).unwrap());
        assert!((d("Bha") - 2.25).abs() < 1e-12);
        assert!((d("Lla") - 3.0).abs() < 1e-12);
        assert!((d("Spy") - 3.0).abs() < 1e-12);
        assert!((d("Syn") - 2.5).abs() < 1e-12);
        assert!((d("Bsu") - 1.25).abs() < 1e-12);
    }

    #[test]
    fn caterpillar_depth_and_leaves() {
        let t = caterpillar(10, 1.0);
        assert_eq!(t.max_depth(), 10);
        assert_eq!(t.leaf_count(), 11);
        // All internal nodes have out-degree 2.
        for id in t.node_ids() {
            if !t.is_leaf(id) {
                assert_eq!(t.degree(id), 2);
            }
        }
    }

    #[test]
    fn caterpillar_depth_one() {
        let t = caterpillar(1, 2.0);
        assert_eq!(t.leaf_count(), 2);
        assert_eq!(t.max_depth(), 1);
    }

    #[test]
    fn balanced_binary_counts() {
        let t = balanced_binary(4, 1.0);
        assert_eq!(t.leaf_count(), 16);
        assert_eq!(t.node_count(), 31);
        assert_eq!(t.max_depth(), 4);
        // Every leaf is named.
        for leaf in t.leaf_ids() {
            assert!(t.name(leaf).is_some());
        }
    }

    #[test]
    fn builder_checked_rejects_duplicates() {
        let mut b = TreeBuilder::new();
        let r = b.root();
        b.leaf(r, "A", 1.0);
        b.leaf(r, "A", 1.0);
        assert!(b.finish_checked().is_err());
    }

    #[test]
    fn builder_with_root_name() {
        let b = TreeBuilder::with_root_name("origin");
        let t = b.finish();
        assert_eq!(t.name(t.root_unchecked()), Some("origin"));
    }

    #[test]
    fn preorder_of_figure1_starts_at_root() {
        let t = figure1_tree();
        let first = t.preorder().next().unwrap();
        assert_eq!(first, t.root_unchecked());
    }
}
