//! Arena-based rooted phylogenetic tree.
//!
//! Nodes live in a flat `Vec` and are addressed by [`NodeId`]. Every node
//! except the root has a parent and an incoming branch length (the
//! "evolutionary time from the parent species to child species" in the
//! paper's Figure 1). Leaf nodes carry taxon names; interior nodes may be
//! anonymous or named.

use crate::error::PhyloError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a node inside a [`Tree`] arena.
///
/// Ids are dense indices: the root of a freshly built tree is not necessarily
/// id 0 (it is whatever the builder created first), but ids never exceed
/// `tree.node_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single node in the arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Children in insertion order.
    pub children: Vec<NodeId>,
    /// Taxon name (always set for leaves loaded from data; optional for
    /// interior nodes).
    pub name: Option<String>,
    /// Length of the branch connecting this node to its parent. `None` for
    /// the root or when the source format omitted lengths.
    pub branch_length: Option<f64>,
}

impl Node {
    fn new() -> Self {
        Node {
            parent: None,
            children: Vec::new(),
            name: None,
            branch_length: None,
        }
    }

    /// `true` when the node has no children.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Branch length to the parent, defaulting to zero when absent.
    #[inline]
    pub fn branch_length_or_zero(&self) -> f64 {
        self.branch_length.unwrap_or(0.0)
    }
}

/// A rooted, edge-weighted phylogenetic tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    root: Option<NodeId>,
}

impl Default for Tree {
    fn default() -> Self {
        Self::new()
    }
}

impl Tree {
    /// Create an empty tree with no nodes.
    pub fn new() -> Self {
        Tree {
            nodes: Vec::new(),
            root: None,
        }
    }

    /// Create an empty tree with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Tree {
            nodes: Vec::with_capacity(n),
            root: None,
        }
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Add a detached node and return its id. The first node added becomes
    /// the root unless [`Tree::set_root`] is called later.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new());
        if self.root.is_none() {
            self.root = Some(id);
        }
        id
    }

    /// Add a node with a name.
    pub fn add_named_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.add_node();
        self.nodes[id.index()].name = Some(name.into());
        id
    }

    /// Add a new child of `parent` with the given optional name and branch
    /// length.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        name: Option<String>,
        branch_length: Option<f64>,
    ) -> Result<NodeId, PhyloError> {
        self.check(parent)?;
        let child = self.add_node();
        self.nodes[child.index()].name = name;
        self.nodes[child.index()].branch_length = branch_length;
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(child);
        Ok(child)
    }

    /// Attach an existing detached node as a child of `parent`.
    pub fn attach(&mut self, parent: NodeId, child: NodeId) -> Result<(), PhyloError> {
        self.check(parent)?;
        self.check(child)?;
        if parent == child {
            return Err(PhyloError::WouldCreateCycle);
        }
        // Walking up from `parent`: if we meet `child` the attach would form a cycle.
        let mut cur = Some(parent);
        while let Some(c) = cur {
            if c == child {
                return Err(PhyloError::WouldCreateCycle);
            }
            cur = self.nodes[c.index()].parent;
        }
        if let Some(old_parent) = self.nodes[child.index()].parent {
            let siblings = &mut self.nodes[old_parent.index()].children;
            siblings.retain(|&c| c != child);
        }
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(child);
        if self.root == Some(child) {
            // The old root now has a parent; promote the new topmost ancestor.
            let mut top = parent;
            while let Some(p) = self.nodes[top.index()].parent {
                top = p;
            }
            self.root = Some(top);
        }
        Ok(())
    }

    /// Explicitly set the root node.
    pub fn set_root(&mut self, root: NodeId) -> Result<(), PhyloError> {
        self.check(root)?;
        self.root = Some(root);
        Ok(())
    }

    /// Set or replace a node's name.
    pub fn set_name(&mut self, id: NodeId, name: impl Into<String>) -> Result<(), PhyloError> {
        self.check(id)?;
        self.nodes[id.index()].name = Some(name.into());
        Ok(())
    }

    /// Set or replace the branch length of the edge above `id`.
    pub fn set_branch_length(&mut self, id: NodeId, len: f64) -> Result<(), PhyloError> {
        self.check(id)?;
        self.nodes[id.index()].branch_length = Some(len);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The root node, if the tree is non-empty.
    #[inline]
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// The root node, panicking on an empty tree. Intended for code paths
    /// where the tree is known to be populated.
    #[inline]
    pub fn root_unchecked(&self) -> NodeId {
        self.root.expect("tree has no root")
    }

    /// Total number of nodes (interior + leaves).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tree contains no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Borrow a node, returning an error for out-of-range ids.
    pub fn try_node(&self, id: NodeId) -> Result<&Node, PhyloError> {
        self.nodes
            .get(id.index())
            .ok_or(PhyloError::InvalidNode(id.0))
    }

    /// Parent of `id`, or `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// Children of `id`.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Name of `id` if set.
    #[inline]
    pub fn name(&self, id: NodeId) -> Option<&str> {
        self.nodes[id.index()].name.as_deref()
    }

    /// Branch length of the edge above `id`.
    #[inline]
    pub fn branch_length(&self, id: NodeId) -> Option<f64> {
        self.nodes[id.index()].branch_length
    }

    /// `true` if `id` has no children.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id.index()].is_leaf()
    }

    /// `true` if `id` is the root.
    #[inline]
    pub fn is_root(&self, id: NodeId) -> bool {
        self.root == Some(id)
    }

    /// Out-degree of `id`.
    #[inline]
    pub fn degree(&self, id: NodeId) -> usize {
        self.nodes[id.index()].children.len()
    }

    /// Iterate over every node id in arena order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over all leaf ids in arena order.
    pub fn leaf_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(move |&id| self.is_leaf(id))
    }

    /// Collect the names of all leaves (unnamed leaves are skipped).
    pub fn leaf_names(&self) -> Vec<String> {
        self.leaf_ids()
            .filter_map(|id| self.name(id).map(|s| s.to_string()))
            .collect()
    }

    /// Find the first leaf whose name equals `name`.
    pub fn find_leaf_by_name(&self, name: &str) -> Option<NodeId> {
        self.leaf_ids().find(|&id| self.name(id) == Some(name))
    }

    /// Find any node (leaf or interior) whose name equals `name`.
    pub fn find_node_by_name(&self, name: &str) -> Option<NodeId> {
        self.node_ids().find(|&id| self.name(id) == Some(name))
    }

    /// Build a name → id map over all named nodes. Returns an error if a
    /// name occurs twice.
    pub fn name_index(&self) -> Result<HashMap<String, NodeId>, PhyloError> {
        let mut map = HashMap::with_capacity(self.leaf_count());
        for id in self.node_ids() {
            if let Some(name) = self.name(id) {
                if map.insert(name.to_string(), id).is_some() {
                    return Err(PhyloError::DuplicateName(name.to_string()));
                }
            }
        }
        Ok(map)
    }

    // ------------------------------------------------------------------
    // Measurements
    // ------------------------------------------------------------------

    /// Number of edges on the path from the root to `id` (root depth = 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Sum of branch lengths from the root down to `id` (the "total weight
    /// from the root" used by time-based sampling in §2.2 of the paper).
    pub fn root_distance(&self, id: NodeId) -> f64 {
        let mut dist = 0.0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            dist += self.nodes[cur.index()].branch_length_or_zero();
            cur = p;
        }
        dist
    }

    /// Maximum node depth (in edges) over the whole tree. Returns 0 for an
    /// empty tree.
    pub fn max_depth(&self) -> usize {
        let Some(root) = self.root else { return 0 };
        // Iterative DFS to stay safe on the paper's million-level trees.
        let mut max = 0usize;
        let mut stack = vec![(root, 0usize)];
        while let Some((node, d)) = stack.pop() {
            max = max.max(d);
            for &c in self.children(node) {
                stack.push((c, d + 1));
            }
        }
        max
    }

    /// Compute the root distance of every node in a single pass.
    /// Index the result by `NodeId::index`.
    pub fn all_root_distances(&self) -> Vec<f64> {
        let mut dist = vec![0.0; self.node_count()];
        let Some(root) = self.root else { return dist };
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            let base = dist[node.index()];
            for &c in self.children(node) {
                dist[c.index()] = base + self.node(c).branch_length_or_zero();
                stack.push(c);
            }
        }
        dist
    }

    /// Compute the depth (edge count from root) of every node in one pass.
    pub fn all_depths(&self) -> Vec<usize> {
        let mut depth = vec![0usize; self.node_count()];
        let Some(root) = self.root else { return depth };
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            let base = depth[node.index()];
            for &c in self.children(node) {
                depth[c.index()] = base + 1;
                stack.push(c);
            }
        }
        depth
    }

    /// Least common ancestor computed by walking parent pointers. This is the
    /// straightforward O(depth) reference implementation; the `labeling`
    /// crate provides the label-based versions evaluated in the paper.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        if a == b {
            return a;
        }
        let da = self.depth(a);
        let db = self.depth(b);
        let (mut x, mut y) = (a, b);
        let (mut dx, mut dy) = (da, db);
        while dx > dy {
            x = self.parent(x).expect("depth bookkeeping broken");
            dx -= 1;
        }
        while dy > dx {
            y = self.parent(y).expect("depth bookkeeping broken");
            dy -= 1;
        }
        while x != y {
            x = self.parent(x).expect("nodes in different trees");
            y = self.parent(y).expect("nodes in different trees");
        }
        x
    }

    /// `true` if `ancestor` is an ancestor-or-self of `node`.
    pub fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    fn check(&self, id: NodeId) -> Result<(), PhyloError> {
        if id.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(PhyloError::InvalidNode(id.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the Figure 1 tree by hand:
    /// root ── (interior a, 1.5) ── Bha:0.75, (interior b, 0.5) ── Lla:1.0, Spy:1.0
    ///      ── Syn:2.5
    ///      ── Bsu:1.25
    fn fig1() -> (Tree, HashMap<&'static str, NodeId>) {
        let mut t = Tree::new();
        let root = t.add_node();
        let a = t.add_child(root, None, Some(1.5)).unwrap();
        let bha = t.add_child(a, Some("Bha".into()), Some(0.75)).unwrap();
        let b = t.add_child(a, None, Some(0.5)).unwrap();
        let lla = t.add_child(b, Some("Lla".into()), Some(1.0)).unwrap();
        let spy = t.add_child(b, Some("Spy".into()), Some(1.0)).unwrap();
        let syn = t.add_child(root, Some("Syn".into()), Some(2.5)).unwrap();
        let bsu = t.add_child(root, Some("Bsu".into()), Some(1.25)).unwrap();
        let mut m = HashMap::new();
        m.insert("root", root);
        m.insert("a", a);
        m.insert("b", b);
        m.insert("Bha", bha);
        m.insert("Lla", lla);
        m.insert("Spy", spy);
        m.insert("Syn", syn);
        m.insert("Bsu", bsu);
        (t, m)
    }

    #[test]
    fn build_and_count() {
        let (t, _) = fig1();
        assert_eq!(t.node_count(), 8);
        assert_eq!(t.leaf_count(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn first_node_becomes_root() {
        let mut t = Tree::new();
        let r = t.add_node();
        assert_eq!(t.root(), Some(r));
    }

    #[test]
    fn parent_child_links() {
        let (t, m) = fig1();
        assert_eq!(t.parent(m["Lla"]), Some(m["b"]));
        assert_eq!(t.parent(m["root"]), None);
        assert_eq!(t.children(m["root"]).len(), 3);
        assert!(t.is_leaf(m["Syn"]));
        assert!(!t.is_leaf(m["a"]));
        assert!(t.is_root(m["root"]));
    }

    #[test]
    fn depths_and_distances() {
        let (t, m) = fig1();
        assert_eq!(t.depth(m["root"]), 0);
        assert_eq!(t.depth(m["Lla"]), 3);
        assert_eq!(t.max_depth(), 3);
        assert!((t.root_distance(m["Lla"]) - 3.0).abs() < 1e-12);
        assert!((t.root_distance(m["Bha"]) - 2.25).abs() < 1e-12);
        assert!((t.root_distance(m["Syn"]) - 2.5).abs() < 1e-12);
        let all = t.all_root_distances();
        assert!((all[m["Lla"].index()] - 3.0).abs() < 1e-12);
        let depths = t.all_depths();
        assert_eq!(depths[m["Spy"].index()], 3);
    }

    #[test]
    fn lca_matches_paper_example() {
        // In the paper, LCA(Lla, Spy) is their parent and LCA(Lla, Syn) is the
        // node labelled 1 (the child of the root on the left side)... actually
        // LCA(Lla, Syn) is the root's left subtree ancestor = node `a`'s parent?
        // From Figure 1, Syn hangs off the root, so LCA(Lla, Syn) is the root.
        let (t, m) = fig1();
        assert_eq!(t.lca(m["Lla"], m["Spy"]), m["b"]);
        assert_eq!(t.lca(m["Lla"], m["Bha"]), m["a"]);
        assert_eq!(t.lca(m["Lla"], m["Syn"]), m["root"]);
        assert_eq!(t.lca(m["Bha"], m["Bha"]), m["Bha"]);
        assert_eq!(t.lca(m["a"], m["Lla"]), m["a"]);
    }

    #[test]
    fn ancestor_checks() {
        let (t, m) = fig1();
        assert!(t.is_ancestor(m["root"], m["Lla"]));
        assert!(t.is_ancestor(m["b"], m["Lla"]));
        assert!(t.is_ancestor(m["Lla"], m["Lla"]));
        assert!(!t.is_ancestor(m["Lla"], m["b"]));
        assert!(!t.is_ancestor(m["Syn"], m["Bha"]));
    }

    #[test]
    fn name_lookup() {
        let (t, m) = fig1();
        assert_eq!(t.find_leaf_by_name("Spy"), Some(m["Spy"]));
        assert_eq!(t.find_leaf_by_name("nope"), None);
        let idx = t.name_index().unwrap();
        assert_eq!(idx["Bsu"], m["Bsu"]);
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn duplicate_names_detected() {
        let mut t = Tree::new();
        let r = t.add_node();
        t.add_child(r, Some("X".into()), None).unwrap();
        t.add_child(r, Some("X".into()), None).unwrap();
        assert!(matches!(t.name_index(), Err(PhyloError::DuplicateName(_))));
    }

    #[test]
    fn attach_detects_cycles() {
        let mut t = Tree::new();
        let r = t.add_node();
        let c = t.add_child(r, None, None).unwrap();
        assert!(matches!(t.attach(c, r), Err(PhyloError::WouldCreateCycle)));
        assert!(matches!(t.attach(c, c), Err(PhyloError::WouldCreateCycle)));
    }

    #[test]
    fn attach_moves_subtree() {
        let mut t = Tree::new();
        let r = t.add_node();
        let a = t.add_child(r, None, None).unwrap();
        let b = t.add_child(r, None, None).unwrap();
        let x = t.add_child(a, Some("x".into()), None).unwrap();
        t.attach(b, x).unwrap();
        assert_eq!(t.parent(x), Some(b));
        assert!(!t.children(a).contains(&x));
        assert!(t.children(b).contains(&x));
    }

    #[test]
    fn invalid_node_errors() {
        let t = Tree::new();
        assert!(t.try_node(NodeId(3)).is_err());
        let mut t2 = Tree::new();
        let r = t2.add_node();
        assert!(t2.add_child(NodeId(99), None, None).is_err());
        assert!(t2.add_child(r, None, None).is_ok());
    }

    #[test]
    fn deep_tree_iterative_depth() {
        // A caterpillar of depth 50_000 must not overflow the stack.
        let mut t = Tree::new();
        let mut cur = t.add_node();
        for _ in 0..50_000 {
            cur = t.add_child(cur, None, Some(1.0)).unwrap();
        }
        assert_eq!(t.max_depth(), 50_000);
        assert!((t.root_distance(cur) - 50_000.0).abs() < 1e-6);
    }
}
