//! Error types for the `phylo` crate.

use std::fmt;

/// Errors produced by tree construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhyloError {
    /// A node id referred to a node that does not exist in the tree arena.
    InvalidNode(u32),
    /// The operation requires a non-empty tree but the tree has no nodes.
    EmptyTree,
    /// The requested leaf name was not found in the tree.
    UnknownLeaf(String),
    /// Attempt to attach a child to itself or to create a parent cycle.
    WouldCreateCycle,
    /// The operation requires at least `required` leaves but `actual` were given.
    TooFewLeaves {
        /// Minimum number of leaves required by the operation.
        required: usize,
        /// Number of leaves actually supplied.
        actual: usize,
    },
    /// A leaf name appears more than once where unique names are required.
    DuplicateName(String),
    /// Format parsing failed.
    Parse(ParseError),
}

impl fmt::Display for PhyloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyloError::InvalidNode(id) => write!(f, "invalid node id {id}"),
            PhyloError::EmptyTree => write!(f, "operation requires a non-empty tree"),
            PhyloError::UnknownLeaf(name) => write!(f, "unknown leaf name `{name}`"),
            PhyloError::WouldCreateCycle => write!(f, "operation would create a cycle"),
            PhyloError::TooFewLeaves { required, actual } => {
                write!(
                    f,
                    "operation requires at least {required} leaves, got {actual}"
                )
            }
            PhyloError::DuplicateName(name) => write!(f, "duplicate taxon name `{name}`"),
            PhyloError::Parse(e) => write!(f, "parse error: {e}"),
        }
    }
}

impl std::error::Error for PhyloError {}

impl From<ParseError> for PhyloError {
    fn from(e: ParseError) -> Self {
        PhyloError::Parse(e)
    }
}

/// Errors produced while parsing Newick or NEXUS input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input at which the error was detected.
    pub offset: usize,
    /// 1-based line number at which the error was detected.
    pub line: usize,
    /// Human readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    /// Create a new parse error at the given byte offset / line.
    pub fn new(offset: usize, line: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, offset {}: {}",
            self.line, self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_node() {
        let e = PhyloError::InvalidNode(7);
        assert_eq!(e.to_string(), "invalid node id 7");
    }

    #[test]
    fn display_too_few_leaves() {
        let e = PhyloError::TooFewLeaves {
            required: 2,
            actual: 1,
        };
        assert!(e.to_string().contains("at least 2"));
    }

    #[test]
    fn parse_error_wraps_into_phylo_error() {
        let p = ParseError::new(12, 3, "unexpected `)`");
        let e: PhyloError = p.clone().into();
        match e {
            PhyloError::Parse(inner) => assert_eq!(inner, p),
            other => panic!("expected Parse variant, got {other:?}"),
        }
    }

    #[test]
    fn parse_error_display_includes_location() {
        let p = ParseError::new(12, 3, "bad token");
        let s = p.to_string();
        assert!(s.contains("line 3"));
        assert!(s.contains("offset 12"));
        assert!(s.contains("bad token"));
    }
}
