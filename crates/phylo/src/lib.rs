//! # phylo — phylogenetic tree data model
//!
//! This crate provides the in-memory tree substrate used throughout the
//! Crimson reproduction:
//!
//! * an arena-based rooted tree ([`Tree`]) with named nodes and weighted
//!   (branch-length) edges,
//! * traversal iterators (pre-order, post-order, level-order, ancestor walks),
//! * tree operations needed by the paper: induced subtrees, unary-node
//!   suppression with edge-weight summing, root-distance computation,
//!   canonical ordering and isomorphism checks,
//! * parsers and writers for the **Newick** and **NEXUS** interchange formats
//!   (the paper's input/output format, ref. \[6\]),
//! * patristic (leaf-to-leaf path) distance matrices,
//! * a plain-text dendrogram renderer standing in for the Walrus viewer.
//!
//! The crate is deliberately free of any storage or indexing concerns; those
//! live in the `crimson-storage` and `crimson-labeling` crates.
//!
//! ## Quick example
//!
//! ```
//! // The sample tree from Figure 1 of the paper.
//! let tree = phylo::newick::parse(
//!     "((Bha:0.75,(Lla:1.0,Spy:1.0):0.5):1.5,Syn:2.5,Bsu:1.25);",
//! ).unwrap();
//! assert_eq!(tree.leaf_count(), 5);
//! let bha = tree.find_leaf_by_name("Bha").unwrap();
//! assert!((tree.root_distance(bha) - 2.25).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod distance;
pub mod error;
pub mod newick;
pub mod nexus;
pub mod ops;
pub mod render;
pub mod traverse;
pub mod tree;

pub use builder::TreeBuilder;
pub use error::{ParseError, PhyloError};
pub use tree::{Node, NodeId, Tree};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::builder::TreeBuilder;
    pub use crate::error::{ParseError, PhyloError};
    pub use crate::traverse::TraversalOrder;
    pub use crate::tree::{Node, NodeId, Tree};
}
