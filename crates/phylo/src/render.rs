//! Plain-text dendrogram rendering.
//!
//! The original Crimson demo visualized result trees with the Walrus 3D graph
//! viewer (paper §2.3/§3). This module is the headless stand-in: it renders
//! trees as indented ASCII dendrograms suitable for terminals, log files and
//! the example binaries.

use crate::traverse::Traverse;
use crate::tree::{NodeId, Tree};
use std::fmt::Write as _;

/// Options for ASCII rendering.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Show branch lengths after each node.
    pub branch_lengths: bool,
    /// Show cumulative distance from the root.
    pub root_distances: bool,
    /// Maximum number of nodes to print before truncating (0 = unlimited).
    pub max_nodes: usize,
    /// Label used for unnamed interior nodes.
    pub anonymous_label: String,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            branch_lengths: true,
            root_distances: false,
            max_nodes: 0,
            anonymous_label: "*".to_string(),
        }
    }
}

/// Render a tree as an indented ASCII dendrogram using box-drawing prefixes.
///
/// ```text
/// *
/// ├── * :1.5
/// │   ├── Bha :0.75
/// │   └── * :0.5
/// │       ├── Lla :1
/// │       └── Spy :1
/// ├── Syn :2.5
/// └── Bsu :1.25
/// ```
pub fn ascii(tree: &Tree) -> String {
    ascii_with_options(tree, &RenderOptions::default())
}

/// Render with explicit [`RenderOptions`].
pub fn ascii_with_options(tree: &Tree, opts: &RenderOptions) -> String {
    let Some(root) = tree.root() else {
        return String::from("(empty tree)\n");
    };
    let mut out = String::new();
    let mut printed = 0usize;
    let distances = if opts.root_distances {
        Some(tree.all_root_distances())
    } else {
        None
    };

    // Iterative DFS carrying the prefix string and whether the node is the
    // last child of its parent.
    let mut stack: Vec<(NodeId, String, bool, bool)> = vec![(root, String::new(), true, true)];
    while let Some((node, prefix, is_last, is_root)) = stack.pop() {
        if opts.max_nodes > 0 && printed >= opts.max_nodes {
            let _ = writeln!(out, "{prefix}… (truncated)");
            break;
        }
        printed += 1;
        let connector = if is_root {
            ""
        } else if is_last {
            "└── "
        } else {
            "├── "
        };
        let name = tree.name(node).unwrap_or(&opts.anonymous_label);
        let mut line = format!("{prefix}{connector}{name}");
        if opts.branch_lengths {
            if let Some(bl) = tree.branch_length(node) {
                let _ = write!(line, " :{}", fmt_num(bl));
            }
        }
        if let Some(d) = &distances {
            let _ = write!(line, " (d={})", fmt_num(d[node.index()]));
        }
        let _ = writeln!(out, "{line}");

        let child_prefix = if is_root {
            String::new()
        } else if is_last {
            format!("{prefix}    ")
        } else {
            format!("{prefix}│   ")
        };
        let children = tree.children(node);
        for (i, &c) in children.iter().enumerate().rev() {
            let last = i == children.len() - 1;
            stack.push((c, child_prefix.clone(), last, false));
        }
    }
    out
}

/// A single-line summary of a tree: node/leaf counts, depth and total length.
pub fn summary(tree: &Tree) -> String {
    let total_length: f64 = tree
        .node_ids()
        .map(|id| tree.branch_length(id).unwrap_or(0.0))
        .sum();
    format!(
        "nodes={} leaves={} depth={} total_branch_length={}",
        tree.node_count(),
        tree.leaf_count(),
        tree.max_depth(),
        fmt_num(total_length)
    )
}

/// Render the leaf names in pre-order, one per line — a compact "species
/// list" view used by the examples.
pub fn leaf_list(tree: &Tree) -> String {
    let mut out = String::new();
    for id in tree.preorder() {
        if tree.is_leaf(id) {
            let _ = writeln!(out, "{}", tree.name(id).unwrap_or("<unnamed>"));
        }
    }
    out
}

fn fmt_num(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        let s = format!("{x:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{caterpillar, figure1_tree};

    #[test]
    fn ascii_contains_all_leaf_names() {
        let t = figure1_tree();
        let text = ascii(&t);
        for name in ["Bha", "Lla", "Spy", "Syn", "Bsu"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(text.contains("└──"));
        assert!(text.contains("├──"));
    }

    #[test]
    fn ascii_branch_lengths_shown() {
        let t = figure1_tree();
        let text = ascii(&t);
        assert!(text.contains(":2.5"));
        assert!(text.contains(":0.75"));
    }

    #[test]
    fn ascii_root_distances_option() {
        let t = figure1_tree();
        let text = ascii_with_options(
            &t,
            &RenderOptions {
                root_distances: true,
                ..RenderOptions::default()
            },
        );
        assert!(
            text.contains("(d=3)"),
            "expected cumulative distance for Lla/Spy:\n{text}"
        );
    }

    #[test]
    fn ascii_truncation() {
        let t = caterpillar(100, 1.0);
        let text = ascii_with_options(
            &t,
            &RenderOptions {
                max_nodes: 10,
                ..Default::default()
            },
        );
        assert!(text.contains("truncated"));
        assert!(text.lines().count() <= 12);
    }

    #[test]
    fn empty_tree_renders_placeholder() {
        let t = Tree::new();
        assert!(ascii(&t).contains("empty"));
    }

    #[test]
    fn summary_counts() {
        let t = figure1_tree();
        let s = summary(&t);
        assert!(s.contains("nodes=8"));
        assert!(s.contains("leaves=5"));
        assert!(s.contains("depth=3"));
    }

    #[test]
    fn leaf_list_preorder() {
        let t = figure1_tree();
        let rendered = leaf_list(&t);
        let list: Vec<&str> = rendered.lines().collect();
        assert_eq!(list, vec!["Bha", "Lla", "Spy", "Syn", "Bsu"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(2.0), "2");
        assert_eq!(fmt_num(0.75), "0.75");
        assert_eq!(fmt_num(1.0 / 3.0), "0.3333");
    }
}
