//! Traversal iterators over [`Tree`]s.
//!
//! All traversals are iterative (explicit stacks/queues) so that they remain
//! safe on the very deep simulation trees the paper targets (depth in the
//! hundreds of thousands).

use crate::tree::{NodeId, Tree};
use std::collections::VecDeque;

/// The order in which a traversal yields nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalOrder {
    /// Parent before children, children in insertion order (document order).
    Pre,
    /// Children before parent.
    Post,
    /// Breadth-first, level by level.
    Level,
}

/// Pre-order (depth-first, parent first) iterator.
pub struct PreOrder<'a> {
    tree: &'a Tree,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for PreOrder<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.stack.pop()?;
        // Push children in reverse so the first child is visited first.
        for &c in self.tree.children(node).iter().rev() {
            self.stack.push(c);
        }
        Some(node)
    }
}

/// Post-order (children before parent) iterator.
pub struct PostOrder<'a> {
    tree: &'a Tree,
    /// Stack of (node, next child index to expand).
    stack: Vec<(NodeId, usize)>,
}

impl<'a> Iterator for PostOrder<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            let &(node, child_idx) = self.stack.last()?;
            let children = self.tree.children(node);
            if child_idx < children.len() {
                let next_child = children[child_idx];
                self.stack.last_mut().expect("just peeked").1 += 1;
                self.stack.push((next_child, 0));
            } else {
                self.stack.pop();
                return Some(node);
            }
        }
    }
}

/// Level-order (breadth-first) iterator.
pub struct LevelOrder<'a> {
    tree: &'a Tree,
    queue: VecDeque<NodeId>,
}

impl<'a> Iterator for LevelOrder<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.queue.pop_front()?;
        for &c in self.tree.children(node) {
            self.queue.push_back(c);
        }
        Some(node)
    }
}

/// Iterator over the ancestors of a node, starting with its parent and
/// ending at the root.
pub struct Ancestors<'a> {
    tree: &'a Tree,
    current: Option<NodeId>,
}

impl<'a> Iterator for Ancestors<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let parent = self.tree.parent(self.current?);
        self.current = parent;
        parent
    }
}

/// Extension methods adding traversal iterators to [`Tree`].
pub trait Traverse {
    /// Pre-order traversal from the root (empty iterator on an empty tree).
    fn preorder(&self) -> PreOrder<'_>;
    /// Pre-order traversal rooted at `start`.
    fn preorder_from(&self, start: NodeId) -> PreOrder<'_>;
    /// Post-order traversal from the root.
    fn postorder(&self) -> PostOrder<'_>;
    /// Post-order traversal rooted at `start`.
    fn postorder_from(&self, start: NodeId) -> PostOrder<'_>;
    /// Level-order traversal from the root.
    fn levelorder(&self) -> LevelOrder<'_>;
    /// Ancestors of `node`, nearest first, not including `node` itself.
    fn ancestors(&self, node: NodeId) -> Ancestors<'_>;
    /// Leaves of the subtree rooted at `start`, in pre-order.
    fn leaves_under(&self, start: NodeId) -> Vec<NodeId>;
    /// Pre-order rank (position in the pre-order sequence) of every node.
    fn preorder_ranks(&self) -> Vec<usize>;
}

impl Traverse for Tree {
    fn preorder(&self) -> PreOrder<'_> {
        PreOrder {
            tree: self,
            stack: self.root().into_iter().collect(),
        }
    }

    fn preorder_from(&self, start: NodeId) -> PreOrder<'_> {
        PreOrder {
            tree: self,
            stack: vec![start],
        }
    }

    fn postorder(&self) -> PostOrder<'_> {
        PostOrder {
            tree: self,
            stack: self.root().map(|r| (r, 0)).into_iter().collect(),
        }
    }

    fn postorder_from(&self, start: NodeId) -> PostOrder<'_> {
        PostOrder {
            tree: self,
            stack: vec![(start, 0)],
        }
    }

    fn levelorder(&self) -> LevelOrder<'_> {
        LevelOrder {
            tree: self,
            queue: self.root().into_iter().collect(),
        }
    }

    fn ancestors(&self, node: NodeId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            current: Some(node),
        }
    }

    fn leaves_under(&self, start: NodeId) -> Vec<NodeId> {
        self.preorder_from(start)
            .filter(|&id| self.is_leaf(id))
            .collect()
    }

    fn preorder_ranks(&self) -> Vec<usize> {
        let mut ranks = vec![0usize; self.node_count()];
        for (rank, id) in self.preorder().enumerate() {
            ranks[id.index()] = rank;
        }
        ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Tree;

    /// root ── a ── (x, y), b
    fn small() -> (Tree, [NodeId; 5]) {
        let mut t = Tree::new();
        let root = t.add_node();
        let a = t.add_child(root, Some("a".into()), None).unwrap();
        let x = t.add_child(a, Some("x".into()), None).unwrap();
        let y = t.add_child(a, Some("y".into()), None).unwrap();
        let b = t.add_child(root, Some("b".into()), None).unwrap();
        (t, [root, a, x, y, b])
    }

    #[test]
    fn preorder_visits_parent_first() {
        let (t, [root, a, x, y, b]) = small();
        let order: Vec<_> = t.preorder().collect();
        assert_eq!(order, vec![root, a, x, y, b]);
    }

    #[test]
    fn postorder_visits_children_first() {
        let (t, [root, a, x, y, b]) = small();
        let order: Vec<_> = t.postorder().collect();
        assert_eq!(order, vec![x, y, a, b, root]);
    }

    #[test]
    fn levelorder_visits_by_depth() {
        let (t, [root, a, x, y, b]) = small();
        let order: Vec<_> = t.levelorder().collect();
        assert_eq!(order, vec![root, a, b, x, y]);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let (t, [root, a, x, _, _]) = small();
        let anc: Vec<_> = t.ancestors(x).collect();
        assert_eq!(anc, vec![a, root]);
        assert!(t.ancestors(root).next().is_none());
    }

    #[test]
    fn empty_tree_traversals_are_empty() {
        let t = Tree::new();
        assert_eq!(t.preorder().count(), 0);
        assert_eq!(t.postorder().count(), 0);
        assert_eq!(t.levelorder().count(), 0);
    }

    #[test]
    fn traversals_cover_all_nodes_once() {
        let (t, _) = small();
        assert_eq!(t.preorder().count(), t.node_count());
        assert_eq!(t.postorder().count(), t.node_count());
        assert_eq!(t.levelorder().count(), t.node_count());
    }

    #[test]
    fn subtree_traversal() {
        let (t, [_, a, x, y, _]) = small();
        let order: Vec<_> = t.preorder_from(a).collect();
        assert_eq!(order, vec![a, x, y]);
        let leaves = t.leaves_under(a);
        assert_eq!(leaves, vec![x, y]);
    }

    #[test]
    fn preorder_ranks_match_sequence() {
        let (t, [root, a, x, y, b]) = small();
        let ranks = t.preorder_ranks();
        assert_eq!(ranks[root.index()], 0);
        assert_eq!(ranks[a.index()], 1);
        assert_eq!(ranks[x.index()], 2);
        assert_eq!(ranks[y.index()], 3);
        assert_eq!(ranks[b.index()], 4);
    }

    #[test]
    fn deep_tree_traversal_does_not_overflow() {
        let mut t = Tree::new();
        let mut cur = t.add_node();
        for _ in 0..100_000 {
            cur = t.add_child(cur, None, None).unwrap();
        }
        assert_eq!(t.preorder().count(), 100_001);
        assert_eq!(t.postorder().count(), 100_001);
    }
}
