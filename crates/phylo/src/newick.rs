//! Newick format parser and writer.
//!
//! The Newick format is the de-facto interchange format for phylogenetic
//! trees and the tree representation embedded inside NEXUS `TREES` blocks.
//! The grammar handled here:
//!
//! ```text
//! tree      := subtree ';'
//! subtree   := leaf | internal
//! leaf      := label? length?
//! internal  := '(' subtree (',' subtree)* ')' label? length?
//! label     := unquoted | quoted
//! length    := ':' number
//! ```
//!
//! Additionally `[...]` comments are skipped and quoted labels (`'...'`,
//! with `''` as an escaped quote) are supported, as are underscores standing
//! in for spaces in unquoted labels (kept verbatim).
//!
//! Both the parser and the writer are **iterative**, so trees with depth in
//! the hundreds of thousands (the paper's simulation trees) do not overflow
//! the stack.

use crate::error::ParseError;
use crate::tree::{NodeId, Tree};

/// Parse a single Newick tree from `input`.
pub fn parse(input: &str) -> Result<Tree, ParseError> {
    let mut parser = Parser::new(input);
    let tree = parser.parse_tree()?;
    parser.skip_ws();
    if !parser.at_end() {
        return Err(parser.error("trailing content after ';'"));
    }
    Ok(tree)
}

/// Parse a string that may contain several `;`-terminated Newick trees
/// (one per statement). Blank segments are ignored.
pub fn parse_many(input: &str) -> Result<Vec<Tree>, ParseError> {
    let mut parser = Parser::new(input);
    let mut trees = Vec::new();
    loop {
        parser.skip_ws();
        if parser.at_end() {
            break;
        }
        trees.push(parser.parse_tree()?);
    }
    Ok(trees)
}

/// Serialize a tree to Newick, including branch lengths when present.
pub fn write(tree: &Tree) -> String {
    write_with_options(tree, &WriteOptions::default())
}

/// Options controlling Newick serialization.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Emit branch lengths (`:0.5`) when the node has one.
    pub branch_lengths: bool,
    /// Emit names of interior nodes.
    pub internal_names: bool,
    /// Number of decimal places for branch lengths.
    pub precision: usize,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            branch_lengths: true,
            internal_names: true,
            precision: 6,
        }
    }
}

/// Serialize a tree to Newick with explicit [`WriteOptions`].
///
/// The writer is an explicit `(node, next child index)` state machine so it
/// never recurses, even on million-level trees.
pub fn write_with_options(tree: &Tree, opts: &WriteOptions) -> String {
    let Some(root) = tree.root() else {
        return ";".to_string();
    };
    let mut out = String::with_capacity(tree.node_count() * 8);
    // (node, next child index)
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    while let Some((node, child_idx)) = stack.pop() {
        let children = tree.children(node);
        if children.is_empty() {
            emit_label_and_length(tree, node, opts, true, &mut out);
            continue;
        }
        if child_idx == 0 {
            out.push('(');
        }
        if child_idx < children.len() {
            if child_idx > 0 {
                out.push(',');
            }
            stack.push((node, child_idx + 1));
            stack.push((children[child_idx], 0));
        } else {
            out.push(')');
            emit_label_and_length(tree, node, opts, false, &mut out);
        }
    }
    out.push(';');
    out
}

fn emit_label_and_length(
    tree: &Tree,
    node: NodeId,
    opts: &WriteOptions,
    is_leaf: bool,
    out: &mut String,
) {
    if is_leaf || opts.internal_names {
        if let Some(name) = tree.name(node) {
            out.push_str(&quote_if_needed(name));
        }
    }
    if opts.branch_lengths {
        if let Some(len) = tree.branch_length(node) {
            out.push(':');
            let formatted = format!("{:.*}", opts.precision, len);
            // Trim trailing zeros but keep at least one digit after the dot.
            let trimmed = trim_float(&formatted);
            out.push_str(&trimmed);
        }
    }
}

fn trim_float(s: &str) -> String {
    if !s.contains('.') {
        return s.to_string();
    }
    let t = s.trim_end_matches('0');
    let t = t
        .strip_suffix('.')
        .map(|p| format!("{p}.0"))
        .unwrap_or_else(|| t.to_string());
    t
}

fn quote_if_needed(name: &str) -> String {
    let needs_quotes = name
        .chars()
        .any(|c| c.is_whitespace() || matches!(c, '(' | ')' | ',' | ':' | ';' | '[' | ']' | '\''));
    if needs_quotes {
        format!("'{}'", name.replace('\'', "''"))
    } else {
        name.to_string()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, self.line, msg)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'[') => {
                    // Newick comment: skip to the matching ']'. Nested
                    // comments are not part of the format; first ']' closes.
                    self.bump();
                    while let Some(b) = self.bump() {
                        if b == b']' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    /// Parse one `subtree ;` statement into a [`Tree`].
    fn parse_tree(&mut self) -> Result<Tree, ParseError> {
        self.skip_ws();
        let mut tree = Tree::new();
        // Stack of open internal nodes created by '('.
        let mut open: Vec<NodeId> = Vec::new();
        // The most recently completed node (leaf or closed internal node);
        // label/length tokens attach to it.
        let mut last: Option<NodeId> = None;
        // Whether we are positioned where a new child may start.
        let mut expect_node = true;

        loop {
            self.skip_ws();
            let Some(b) = self.peek() else {
                return Err(self.error("unexpected end of input (missing ';')"));
            };
            match b {
                b'(' => {
                    if !expect_node {
                        return Err(self.error("unexpected '('"));
                    }
                    self.bump();
                    let node = if let Some(&parent) = open.last() {
                        tree.add_child(parent, None, None)
                            .expect("parent node was created by this parser")
                    } else {
                        let n = tree.add_node();
                        tree.set_root(n).expect("node just added");
                        n
                    };
                    open.push(node);
                    expect_node = true;
                }
                b')' => {
                    self.bump();
                    if expect_node {
                        // An empty child slot like "(,A)" — treat as an
                        // anonymous leaf to be permissive, as real-world
                        // NEXUS exports occasionally contain them.
                        let parent = *open
                            .last()
                            .ok_or_else(|| self.error("')' without matching '('"))?;
                        tree.add_child(parent, None, None).expect("parent exists");
                    }
                    let closed = open
                        .pop()
                        .ok_or_else(|| self.error("')' without matching '('"))?;
                    last = Some(closed);
                    expect_node = false;
                    // Optional label / branch length handled by subsequent
                    // iterations (identifier / ':' branches below).
                }
                b',' => {
                    self.bump();
                    if open.is_empty() {
                        return Err(self.error("',' outside of any '(...)' group"));
                    }
                    expect_node = true;
                    last = None;
                }
                b';' => {
                    self.bump();
                    if !open.is_empty() {
                        return Err(self.error("unbalanced '(': tree ended early"));
                    }
                    if tree.is_empty() {
                        return Err(self.error("empty tree"));
                    }
                    return Ok(tree);
                }
                b':' => {
                    self.bump();
                    let len = self.parse_number()?;
                    let target = match last {
                        Some(n) => n,
                        None => {
                            // A length with no preceding label: applies to an
                            // implicit anonymous leaf (e.g. "(:1.0,B:2);").
                            let node = self.materialize_leaf(&mut tree, &open)?;
                            last = Some(node);
                            expect_node = false;
                            node
                        }
                    };
                    tree.set_branch_length(target, len).expect("node exists");
                }
                _ => {
                    // A label: either for a new leaf, or for the internal
                    // node just closed by ')'.
                    let label = self.parse_label()?;
                    if expect_node {
                        let node = self.materialize_named_leaf(&mut tree, &open, label)?;
                        last = Some(node);
                        expect_node = false;
                    } else {
                        let target =
                            last.ok_or_else(|| self.error("label in unexpected position"))?;
                        tree.set_name(target, label).expect("node exists");
                    }
                }
            }
        }
    }

    fn materialize_leaf(&self, tree: &mut Tree, open: &[NodeId]) -> Result<NodeId, ParseError> {
        if let Some(&parent) = open.last() {
            Ok(tree.add_child(parent, None, None).expect("parent exists"))
        } else {
            // Single-node tree like "A;" or ":1;"
            if tree.is_empty() {
                Ok(tree.add_node())
            } else {
                Err(self.error("multiple root nodes"))
            }
        }
    }

    fn materialize_named_leaf(
        &self,
        tree: &mut Tree,
        open: &[NodeId],
        label: String,
    ) -> Result<NodeId, ParseError> {
        let node = self.materialize_leaf(tree, open)?;
        tree.set_name(node, label).expect("node exists");
        Ok(node)
    }

    fn parse_number(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E' => {
                    self.bump();
                }
                _ => break,
            }
        }
        if start == self.pos {
            return Err(self.error("expected a branch length after ':'"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("branch length is not valid UTF-8"))?;
        text.parse::<f64>()
            .map_err(|_| self.error(format!("invalid branch length `{text}`")))
    }

    fn parse_label(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        if self.peek() == Some(b'\'') {
            self.bump();
            let mut label = String::new();
            loop {
                match self.bump() {
                    Some(b'\'') => {
                        if self.peek() == Some(b'\'') {
                            self.bump();
                            label.push('\'');
                        } else {
                            return Ok(label);
                        }
                    }
                    Some(b) => label.push(b as char),
                    None => return Err(self.error("unterminated quoted label")),
                }
            }
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'(' | b')' | b',' | b':' | b';' | b'[' | b']' | b'\'' => break,
                b if b.is_ascii_whitespace() => break,
                _ => {
                    self.bump();
                }
            }
        }
        if start == self.pos {
            return Err(self.error("expected a label"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("label is not valid UTF-8"))?;
        Ok(text.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::figure1_tree;
    use crate::ops::isomorphic_with_lengths;

    const FIG1: &str = "((Bha:0.75,(Lla:1.0,Spy:1.0):0.5):1.5,Syn:2.5,Bsu:1.25);";

    #[test]
    fn parse_figure1() {
        let t = parse(FIG1).unwrap();
        assert_eq!(t.leaf_count(), 5);
        assert_eq!(t.node_count(), 8);
        let lla = t.find_leaf_by_name("Lla").unwrap();
        assert!((t.root_distance(lla) - 3.0).abs() < 1e-12);
        assert!(isomorphic_with_lengths(&t, &figure1_tree(), 1e-9));
    }

    #[test]
    fn roundtrip_figure1() {
        let t = figure1_tree();
        let text = write(&t);
        let back = parse(&text).unwrap();
        assert!(isomorphic_with_lengths(&t, &back, 1e-9));
    }

    #[test]
    fn parse_single_leaf() {
        let t = parse("OnlyTaxon;").unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.name(t.root_unchecked()), Some("OnlyTaxon"));
    }

    #[test]
    fn parse_no_branch_lengths() {
        let t = parse("((A,B),(C,D));").unwrap();
        assert_eq!(t.leaf_count(), 4);
        assert!(t.branch_length(t.find_leaf_by_name("A").unwrap()).is_none());
    }

    #[test]
    fn parse_internal_labels() {
        let t = parse("((A:1,B:2)AB:3,C:4)Root;").unwrap();
        assert_eq!(t.name(t.root_unchecked()), Some("Root"));
        let ab = t.find_node_by_name("AB").unwrap();
        assert!(!t.is_leaf(ab));
        assert_eq!(t.branch_length(ab), Some(3.0));
    }

    #[test]
    fn parse_quoted_labels_and_comments() {
        let t = parse("('Homo sapiens':1.0[human],'It''s':2.0);").unwrap();
        assert!(t.find_leaf_by_name("Homo sapiens").is_some());
        assert!(t.find_leaf_by_name("It's").is_some());
    }

    #[test]
    fn parse_scientific_notation_lengths() {
        let t = parse("(A:1e-3,B:2.5E2);").unwrap();
        let a = t.find_leaf_by_name("A").unwrap();
        assert!((t.branch_length(a).unwrap() - 1e-3).abs() < 1e-12);
        let b = t.find_leaf_by_name("B").unwrap();
        assert!((t.branch_length(b).unwrap() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn parse_whitespace_and_newlines() {
        let t = parse("(\n  A : 1.0 ,\n  B : 2.0\n) ;").unwrap();
        assert_eq!(t.leaf_count(), 2);
    }

    #[test]
    fn error_unbalanced_paren() {
        assert!(parse("((A,B);").is_err());
        assert!(parse("(A,B));").is_err());
    }

    #[test]
    fn error_missing_semicolon() {
        assert!(parse("(A,B)").is_err());
    }

    #[test]
    fn error_trailing_garbage() {
        assert!(parse("(A,B); extra").is_err());
    }

    #[test]
    fn error_empty_input() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
    }

    #[test]
    fn error_bad_length() {
        assert!(parse("(A:abc,B);").is_err());
    }

    #[test]
    fn parse_many_trees() {
        let trees = parse_many("(A,B);\n(C,(D,E));\n").unwrap();
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[1].leaf_count(), 3);
    }

    #[test]
    fn writer_quotes_awkward_names() {
        let mut t = Tree::new();
        let r = t.add_node();
        t.add_child(r, Some("needs space".into()), Some(1.0))
            .unwrap();
        t.add_child(r, Some("a:b".into()), None).unwrap();
        let text = write(&t);
        assert!(text.contains("'needs space'"));
        assert!(text.contains("'a:b'"));
        let back = parse(&text).unwrap();
        assert!(back.find_leaf_by_name("needs space").is_some());
        assert!(back.find_leaf_by_name("a:b").is_some());
    }

    #[test]
    fn writer_precision_option() {
        let mut t = Tree::new();
        let r = t.add_node();
        t.add_child(r, Some("A".into()), Some(1.0 / 3.0)).unwrap();
        t.add_child(r, Some("B".into()), Some(2.0)).unwrap();
        let text = write_with_options(
            &t,
            &WriteOptions {
                precision: 2,
                ..WriteOptions::default()
            },
        );
        assert!(text.contains("A:0.33"), "got {text}");
        assert!(text.contains("B:2.0"), "got {text}");
    }

    #[test]
    fn writer_can_skip_lengths_and_internal_names() {
        let t = parse("((A:1,B:2)AB:3,C:4)Root;").unwrap();
        let text = write_with_options(
            &t,
            &WriteOptions {
                branch_lengths: false,
                internal_names: false,
                precision: 6,
            },
        );
        assert_eq!(text, "((A,B),C);");
    }

    #[test]
    fn deep_tree_roundtrip() {
        // depth ~20k caterpillar written and re-parsed without stack overflow.
        let t = crate::builder::caterpillar(20_000, 0.5);
        let text = write(&t);
        let back = parse(&text).unwrap();
        assert_eq!(back.leaf_count(), t.leaf_count());
        assert_eq!(back.max_depth(), t.max_depth());
    }

    #[test]
    fn polytomy_roundtrip() {
        let t = parse("(A:1,B:1,C:1,D:1,E:1);").unwrap();
        assert_eq!(t.degree(t.root_unchecked()), 5);
        let back = parse(&write(&t)).unwrap();
        assert_eq!(back.degree(back.root_unchecked()), 5);
    }

    #[test]
    fn empty_tree_writes_semicolon() {
        let t = Tree::new();
        assert_eq!(write(&t), ";");
    }
}
