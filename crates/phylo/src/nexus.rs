//! NEXUS file format support.
//!
//! NEXUS (Maddison, Swofford & Maddison 1997 — ref. \[6\] in the paper) is the
//! standard exchange format for phylogenetic data. Crimson accepts NEXUS as
//! input and emits NEXUS as one of its output formats, while storing data
//! relationally internally. This module supports the blocks Crimson needs:
//!
//! * `TAXA` — taxon labels (`DIMENSIONS NTAX`, `TAXLABELS`),
//! * `TREES` — named Newick trees, with optional `TRANSLATE` tables,
//! * `DATA` / `CHARACTERS` — aligned sequences (`DIMENSIONS NCHAR`,
//!   `FORMAT DATATYPE=DNA`, `MATRIX`).
//!
//! Unknown blocks are skipped so that files written by other tools still load.

use crate::error::ParseError;
use crate::newick;
use crate::tree::Tree;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A parsed NEXUS document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NexusDocument {
    /// Taxon labels from the `TAXA` block (possibly empty).
    pub taxa: Vec<String>,
    /// Named trees from the `TREES` block, in file order.
    pub trees: Vec<NamedTree>,
    /// Aligned sequences from a `DATA`/`CHARACTERS` block, keyed by taxon.
    pub sequences: HashMap<String, String>,
    /// Declared number of characters, if a DIMENSIONS command provided one.
    pub nchar: Option<usize>,
    /// Declared datatype (e.g. `DNA`), if given.
    pub datatype: Option<String>,
}

/// A tree with the name given in the `TREES` block.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedTree {
    /// The identifier after `TREE` (e.g. `gold_standard`).
    pub name: String,
    /// Whether the tree was flagged as rooted (`[&R]`) — defaults to true.
    pub rooted: bool,
    /// The tree itself.
    pub tree: Tree,
}

impl NexusDocument {
    /// Create an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: the first tree in the document, if any.
    pub fn first_tree(&self) -> Option<&Tree> {
        self.trees.first().map(|t| &t.tree)
    }

    /// Add a tree under a name.
    pub fn push_tree(&mut self, name: impl Into<String>, tree: Tree) {
        self.trees.push(NamedTree {
            name: name.into(),
            rooted: true,
            tree,
        });
    }

    /// Add a sequence for a taxon (also records the taxon label).
    pub fn push_sequence(&mut self, taxon: impl Into<String>, seq: impl Into<String>) {
        let taxon = taxon.into();
        if !self.taxa.contains(&taxon) {
            self.taxa.push(taxon.clone());
        }
        self.sequences.insert(taxon, seq.into());
    }
}

/// Parse a NEXUS document from text.
pub fn parse(input: &str) -> Result<NexusDocument, ParseError> {
    let mut doc = NexusDocument::new();
    let mut lexer = Lexer::new(input);

    let header = lexer.next_word();
    match header {
        Some(w) if w.eq_ignore_ascii_case("#NEXUS") => {}
        _ => return Err(ParseError::new(0, 1, "file does not start with #NEXUS")),
    }

    while let Some(word) = lexer.next_word() {
        if !word.eq_ignore_ascii_case("BEGIN") {
            // Stray token between blocks — ignore for robustness.
            continue;
        }
        let block = lexer
            .next_word()
            .ok_or_else(|| lexer.error("BEGIN not followed by a block name"))?;
        let block = block.trim_end_matches(';').to_ascii_uppercase();
        match block.as_str() {
            "TAXA" => parse_taxa_block(&mut lexer, &mut doc)?,
            "TREES" => parse_trees_block(&mut lexer, &mut doc)?,
            "DATA" | "CHARACTERS" => parse_data_block(&mut lexer, &mut doc)?,
            _ => skip_block(&mut lexer)?,
        }
    }
    Ok(doc)
}

/// Serialize a document to NEXUS text.
pub fn write(doc: &NexusDocument) -> String {
    let mut out = String::new();
    out.push_str("#NEXUS\n\n");

    if !doc.taxa.is_empty() {
        out.push_str("BEGIN TAXA;\n");
        let _ = writeln!(out, "    DIMENSIONS NTAX={};", doc.taxa.len());
        out.push_str("    TAXLABELS");
        for t in &doc.taxa {
            out.push(' ');
            out.push_str(&quote_token(t));
        }
        out.push_str(";\nEND;\n\n");
    }

    if !doc.sequences.is_empty() {
        let nchar = doc
            .nchar
            .unwrap_or_else(|| doc.sequences.values().map(|s| s.len()).max().unwrap_or(0));
        out.push_str("BEGIN DATA;\n");
        let _ = writeln!(
            out,
            "    DIMENSIONS NTAX={} NCHAR={};",
            doc.sequences.len(),
            nchar
        );
        let datatype = doc.datatype.clone().unwrap_or_else(|| "DNA".to_string());
        let _ = writeln!(out, "    FORMAT DATATYPE={} MISSING=? GAP=-;", datatype);
        out.push_str("    MATRIX\n");
        // Deterministic order: taxa order first, then any extra keys sorted.
        let mut emitted = Vec::new();
        for t in &doc.taxa {
            if let Some(seq) = doc.sequences.get(t) {
                let _ = writeln!(out, "        {} {}", quote_token(t), seq);
                emitted.push(t.clone());
            }
        }
        let mut rest: Vec<_> = doc
            .sequences
            .keys()
            .filter(|k| !emitted.contains(k))
            .cloned()
            .collect();
        rest.sort();
        for t in rest {
            let _ = writeln!(out, "        {} {}", quote_token(&t), doc.sequences[&t]);
        }
        out.push_str("    ;\nEND;\n\n");
    }

    if !doc.trees.is_empty() {
        out.push_str("BEGIN TREES;\n");
        for nt in &doc.trees {
            let flag = if nt.rooted { "[&R] " } else { "[&U] " };
            let _ = writeln!(
                out,
                "    TREE {} = {}{}",
                quote_token(&nt.name),
                flag,
                newick::write(&nt.tree)
            );
        }
        out.push_str("END;\n");
    }
    out
}

fn quote_token(s: &str) -> String {
    if s.chars()
        .any(|c| c.is_whitespace() || "();,=[]'".contains(c))
    {
        format!("'{}'", s.replace('\'', "''"))
    } else {
        s.to_string()
    }
}

// ---------------------------------------------------------------------------
// Block parsers
// ---------------------------------------------------------------------------

fn parse_taxa_block(lexer: &mut Lexer<'_>, doc: &mut NexusDocument) -> Result<(), ParseError> {
    loop {
        let Some(cmd) = lexer.next_word() else {
            return Err(lexer.error("unterminated TAXA block"));
        };
        let upper = cmd.to_ascii_uppercase();
        if upper.starts_with("END") {
            lexer.skip_to_semicolon_if_needed(&cmd);
            return Ok(());
        } else if upper.starts_with("TAXLABELS") {
            loop {
                let Some(tok) = lexer.next_token() else {
                    return Err(lexer.error("unterminated TAXLABELS command"));
                };
                if tok == ";" {
                    break;
                }
                doc.taxa.push(trim_token(&tok));
            }
        } else {
            // DIMENSIONS and anything else: skip to ';'.
            lexer.skip_command(&cmd);
        }
    }
}

fn parse_trees_block(lexer: &mut Lexer<'_>, doc: &mut NexusDocument) -> Result<(), ParseError> {
    let mut translate: HashMap<String, String> = HashMap::new();
    loop {
        let Some(cmd) = lexer.next_word() else {
            return Err(lexer.error("unterminated TREES block"));
        };
        let upper = cmd.to_ascii_uppercase();
        if upper.starts_with("END") {
            lexer.skip_to_semicolon_if_needed(&cmd);
            return Ok(());
        } else if upper.starts_with("TRANSLATE") {
            // Pairs "key label," terminated by ';'.
            loop {
                let Some(key) = lexer.next_token() else {
                    return Err(lexer.error("unterminated TRANSLATE command"));
                };
                if key == ";" {
                    break;
                }
                let Some(value) = lexer.next_token() else {
                    return Err(lexer.error("TRANSLATE key without a label"));
                };
                let value = value.trim_end_matches(',').to_string();
                translate.insert(trim_token(&key), trim_token(&value));
                // The pair may be followed by a ',' token.
            }
        } else if upper.starts_with("TREE") {
            // TREE name = [&R] (...);
            let Some(name_tok) = lexer.next_word() else {
                return Err(lexer.error("TREE command without a name"));
            };
            let name = trim_token(name_tok.trim_end_matches('='));
            // Collect raw text up to the statement-terminating ';' (one
            // inside a quoted label or comment does not count) — the Newick
            // parser handles the rest.
            let mut rooted = true;
            let raw = lexer.take_newick_statement();
            let raw = raw.trim();
            let raw = raw.strip_prefix('=').unwrap_or(raw).trim();
            let raw = if let Some(rest) = raw.strip_prefix("[&U]") {
                rooted = false;
                rest.trim()
            } else if let Some(rest) = raw.strip_prefix("[&R]") {
                rest.trim()
            } else {
                raw
            };
            let mut text = raw.to_string();
            if !text.ends_with(';') {
                text.push(';');
            }
            let mut tree = newick::parse(&text).map_err(|e| {
                ParseError::new(e.offset, e.line, format!("in TREE {name}: {}", e.message))
            })?;
            if !translate.is_empty() {
                apply_translate(&mut tree, &translate);
            }
            doc.trees.push(NamedTree { name, rooted, tree });
        } else {
            lexer.skip_command(&cmd);
        }
    }
}

fn apply_translate(tree: &mut Tree, translate: &HashMap<String, String>) {
    let ids: Vec<_> = tree.node_ids().collect();
    for id in ids {
        if let Some(name) = tree.name(id).map(|s| s.to_string()) {
            if let Some(real) = translate.get(&name) {
                tree.set_name(id, real.clone()).expect("node exists");
            }
        }
    }
}

fn parse_data_block(lexer: &mut Lexer<'_>, doc: &mut NexusDocument) -> Result<(), ParseError> {
    loop {
        let Some(cmd) = lexer.next_word() else {
            return Err(lexer.error("unterminated DATA block"));
        };
        let upper = cmd.to_ascii_uppercase();
        if upper.starts_with("END") {
            lexer.skip_to_semicolon_if_needed(&cmd);
            return Ok(());
        } else if upper.starts_with("DIMENSIONS") {
            let text = lexer.take_until_semicolon();
            for part in format!("{cmd} {text}").split_whitespace() {
                let up = part.to_ascii_uppercase();
                if let Some(v) = up.strip_prefix("NCHAR=") {
                    doc.nchar = v.trim_end_matches(';').parse().ok();
                }
            }
        } else if upper.starts_with("FORMAT") {
            let text = lexer.take_until_semicolon();
            for part in text.split_whitespace() {
                let up = part.to_ascii_uppercase();
                if let Some(v) = up.strip_prefix("DATATYPE=") {
                    doc.datatype = Some(v.trim_end_matches(';').to_string());
                }
            }
        } else if upper.starts_with("MATRIX") {
            loop {
                let Some(taxon) = lexer.next_token() else {
                    return Err(lexer.error("unterminated MATRIX command"));
                };
                if taxon == ";" {
                    break;
                }
                let Some(seq) = lexer.next_token() else {
                    return Err(lexer.error("taxon in MATRIX without a sequence"));
                };
                if seq == ";" {
                    return Err(lexer.error("taxon in MATRIX without a sequence"));
                }
                let taxon = trim_token(&taxon);
                let seq = seq.trim_end_matches(';').to_string();
                doc.sequences
                    .entry(taxon.clone())
                    .and_modify(|s| s.push_str(&seq))
                    .or_insert(seq);
                if !doc.taxa.contains(&taxon) {
                    doc.taxa.push(taxon);
                }
            }
        } else {
            lexer.skip_command(&cmd);
        }
    }
}

fn skip_block(lexer: &mut Lexer<'_>) -> Result<(), ParseError> {
    loop {
        let Some(word) = lexer.next_word() else {
            return Err(lexer.error("unterminated block"));
        };
        if word.to_ascii_uppercase().starts_with("END") {
            lexer.skip_to_semicolon_if_needed(&word);
            return Ok(());
        }
        lexer.skip_command(&word);
    }
}

fn trim_token(tok: &str) -> String {
    let t = tok.trim().trim_end_matches(',').trim_end_matches(';');
    let t = t.trim_matches('\'');
    t.to_string()
}

// ---------------------------------------------------------------------------
// A small whitespace/comment-aware tokenizer
// ---------------------------------------------------------------------------

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, self.line, msg)
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.bytes.get(self.pos) {
                Some(b) if b.is_ascii_whitespace() => {
                    if *b == b'\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
                Some(b'[') => {
                    // NEXUS comment — but "[&R]" style rooting annotations are
                    // meaningful inside TREE commands; those are handled by
                    // take_until_semicolon, which preserves raw text.
                    while let Some(&b) = self.bytes.get(self.pos) {
                        self.pos += 1;
                        if b == b']' {
                            break;
                        }
                        if b == b'\n' {
                            self.line += 1;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    /// Next whitespace-delimited word (no special handling of ';').
    fn next_word(&mut self) -> Option<String> {
        self.skip_ws_and_comments();
        if self.pos >= self.bytes.len() {
            return None;
        }
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        Some(String::from_utf8_lossy(&self.bytes[start..self.pos]).to_string())
    }

    /// Next token where a bare `;` is returned on its own, and quoted labels
    /// are returned unquoted-aware.
    fn next_token(&mut self) -> Option<String> {
        self.skip_ws_and_comments();
        let &b = self.bytes.get(self.pos)?;
        if b == b';' {
            self.pos += 1;
            return Some(";".to_string());
        }
        if b == b'\'' {
            self.pos += 1;
            let mut s = String::new();
            while let Some(&c) = self.bytes.get(self.pos) {
                self.pos += 1;
                if c == b'\'' {
                    if self.bytes.get(self.pos) == Some(&b'\'') {
                        self.pos += 1;
                        s.push('\'');
                    } else {
                        break;
                    }
                } else {
                    if c == b'\n' {
                        self.line += 1;
                    }
                    s.push(c as char);
                }
            }
            return Some(s);
        }
        let start = self.pos;
        while let Some(&c) = self.bytes.get(self.pos) {
            if c.is_ascii_whitespace() || c == b';' {
                break;
            }
            self.pos += 1;
        }
        Some(String::from_utf8_lossy(&self.bytes[start..self.pos]).to_string())
    }

    /// Consume raw text (including `[...]` annotations) up to and including
    /// the next ';' and return it without the ';'.
    /// Consume up to the next ';' without any quote or comment awareness —
    /// for commands whose content is prose or key=value tokens (a
    /// `TITLE Bob's taxa;` apostrophe is not a label delimiter).
    fn take_until_semicolon(&mut self) -> String {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
            if b == b';' {
                return String::from_utf8_lossy(&self.bytes[start..self.pos - 1]).to_string();
            }
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).to_string()
    }

    /// Consume a statement that carries Newick content (a `TREE` command).
    /// A ';' inside a quoted Newick label ('like;this', with '' as the
    /// escaped quote) or inside a [...] comment does not terminate the
    /// statement. For quotes a plain toggle suffices — the '' escape
    /// flips out and straight back in. Quote tracking is suspended inside
    /// comments (an apostrophe in [Bob's tree] is prose, not a label
    /// delimiter), and bracket tracking inside quotes (a quoted label may
    /// legally contain brackets).
    fn take_newick_statement(&mut self) -> String {
        let start = self.pos;
        let mut in_quotes = false;
        let mut comment_depth = 0usize;
        while let Some(&b) = self.bytes.get(self.pos) {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
            if in_quotes {
                if b == b'\'' {
                    in_quotes = false;
                }
                continue;
            }
            if comment_depth > 0 {
                match b {
                    b'[' => comment_depth += 1,
                    b']' => comment_depth -= 1,
                    _ => {}
                }
                continue;
            }
            match b {
                b'\'' => in_quotes = true,
                b'[' => comment_depth = 1,
                b';' => {
                    return String::from_utf8_lossy(&self.bytes[start..self.pos - 1]).to_string()
                }
                _ => {}
            }
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).to_string()
    }

    /// Skip the remainder of a command unless the introducing word already
    /// ended with ';'.
    fn skip_command(&mut self, introducing_word: &str) {
        if !introducing_word.ends_with(';') {
            let _ = self.take_until_semicolon();
        }
    }

    /// `END` may appear as `END;` or `END ;` — consume the ';' if separate.
    fn skip_to_semicolon_if_needed(&mut self, word: &str) {
        if !word.ends_with(';') {
            let _ = self.take_until_semicolon();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::figure1_tree;
    use crate::ops::isomorphic_with_lengths;

    const SAMPLE: &str = r#"#NEXUS

BEGIN TAXA;
    DIMENSIONS NTAX=5;
    TAXLABELS Bha Lla Spy Syn Bsu;
END;

BEGIN DATA;
    DIMENSIONS NTAX=5 NCHAR=8;
    FORMAT DATATYPE=DNA MISSING=? GAP=-;
    MATRIX
        Bha ACGTACGT
        Lla ACGTACGA
        Spy ACGTACCA
        Syn ACCTACCA
        Bsu TTGTACCA
    ;
END;

BEGIN TREES;
    TREE gold = [&R] ((Bha:0.75,(Lla:1.0,Spy:1.0):0.5):1.5,Syn:2.5,Bsu:1.25);
END;
"#;

    #[test]
    fn parse_full_document() {
        let doc = parse(SAMPLE).unwrap();
        assert_eq!(doc.taxa, vec!["Bha", "Lla", "Spy", "Syn", "Bsu"]);
        assert_eq!(doc.sequences.len(), 5);
        assert_eq!(doc.sequences["Bha"], "ACGTACGT");
        assert_eq!(doc.nchar, Some(8));
        assert_eq!(doc.datatype.as_deref(), Some("DNA"));
        assert_eq!(doc.trees.len(), 1);
        assert_eq!(doc.trees[0].name, "gold");
        assert!(doc.trees[0].rooted);
        assert!(isomorphic_with_lengths(
            &doc.trees[0].tree,
            &figure1_tree(),
            1e-9
        ));
    }

    #[test]
    fn roundtrip_document() {
        let doc = parse(SAMPLE).unwrap();
        let text = write(&doc);
        let back = parse(&text).unwrap();
        assert_eq!(back.taxa, doc.taxa);
        assert_eq!(back.sequences, doc.sequences);
        assert_eq!(back.trees.len(), 1);
        assert!(isomorphic_with_lengths(
            &back.trees[0].tree,
            &doc.trees[0].tree,
            1e-9
        ));
    }

    #[test]
    fn missing_header_rejected() {
        assert!(parse("BEGIN TAXA; END;").is_err());
    }

    #[test]
    fn unknown_blocks_skipped() {
        let text = "#NEXUS\nBEGIN ASSUMPTIONS;\n  OPTIONS DEFTYPE=unord;\nEND;\nBEGIN TREES;\n TREE t = (A,B);\nEND;\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.trees.len(), 1);
        assert_eq!(doc.trees[0].tree.leaf_count(), 2);
    }

    #[test]
    fn translate_table_applied() {
        let text = "#NEXUS\nBEGIN TREES;\n  TRANSLATE 1 Bha, 2 Lla, 3 Syn;\n  TREE t = ((1:1,2:1):1,3:2);\nEND;\n";
        let doc = parse(text).unwrap();
        let tree = &doc.trees[0].tree;
        assert!(tree.find_leaf_by_name("Bha").is_some());
        assert!(tree.find_leaf_by_name("Lla").is_some());
        assert!(tree.find_leaf_by_name("Syn").is_some());
        assert!(tree.find_leaf_by_name("1").is_none());
    }

    #[test]
    fn unrooted_flag_parsed() {
        let text = "#NEXUS\nBEGIN TREES;\n TREE t = [&U] (A,B,C);\nEND;\n";
        let doc = parse(text).unwrap();
        assert!(!doc.trees[0].rooted);
    }

    #[test]
    fn multiple_trees() {
        let text = "#NEXUS\nBEGIN TREES;\n TREE a = (A,B);\n TREE b = ((A,B),C);\nEND;\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.trees.len(), 2);
        assert_eq!(doc.trees[1].name, "b");
        assert_eq!(doc.trees[1].tree.leaf_count(), 3);
    }

    #[test]
    fn quoted_taxa_names() {
        let text = "#NEXUS\nBEGIN TAXA;\n TAXLABELS 'Homo sapiens' 'E. coli';\nEND;\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.taxa, vec!["Homo sapiens", "E. coli"]);
    }

    #[test]
    fn characters_block_alias() {
        let text = "#NEXUS\nBEGIN CHARACTERS;\n DIMENSIONS NCHAR=4;\n MATRIX\n A AAAA\n B CCCC\n ;\nEND;\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.sequences["A"], "AAAA");
        assert_eq!(doc.nchar, Some(4));
    }

    #[test]
    fn build_and_write_programmatically() {
        let mut doc = NexusDocument::new();
        doc.push_sequence("X", "ACGT");
        doc.push_sequence("Y", "ACGA");
        doc.push_tree("demo", figure1_tree());
        let text = write(&doc);
        assert!(text.starts_with("#NEXUS"));
        assert!(text.contains("BEGIN DATA;"));
        assert!(text.contains("TREE demo"));
        let back = parse(&text).unwrap();
        assert_eq!(back.sequences.len(), 2);
        assert_eq!(back.trees.len(), 1);
    }

    #[test]
    fn error_on_unterminated_block() {
        let text = "#NEXUS\nBEGIN TAXA;\n TAXLABELS A B C";
        assert!(parse(text).is_err());
    }

    #[test]
    fn matrix_interleaved_concatenates() {
        // Same taxon appearing twice in MATRIX gets its chunks concatenated
        // (interleaved format).
        let text = "#NEXUS\nBEGIN DATA;\n MATRIX\n A ACGT\n B TTTT\n A GGGG\n B CCCC\n ;\nEND;\n";
        let doc = parse(text).unwrap();
        assert_eq!(doc.sequences["A"], "ACGTGGGG");
        assert_eq!(doc.sequences["B"], "TTTTCCCC");
    }
}
