//! Patristic (path-length) distances between leaves.
//!
//! The benchmark manager needs true evolutionary distances between sampled
//! species: a reconstruction algorithm is fed either sequence-derived
//! distances or these true patristic distances, and its output is compared
//! against the projected gold-standard subtree.

use crate::error::PhyloError;
use crate::tree::{NodeId, Tree};

/// A symmetric matrix of pairwise distances between named taxa.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    /// Taxon names, defining row/column order.
    pub taxa: Vec<String>,
    /// Row-major `taxa.len() × taxa.len()` distances.
    values: Vec<f64>,
}

impl DistanceMatrix {
    /// Create a zeroed matrix over the given taxa.
    pub fn zeroed(taxa: Vec<String>) -> Self {
        let n = taxa.len();
        DistanceMatrix {
            taxa,
            values: vec![0.0; n * n],
        }
    }

    /// Number of taxa.
    #[inline]
    pub fn len(&self) -> usize {
        self.taxa.len()
    }

    /// `true` if the matrix has no taxa.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.taxa.is_empty()
    }

    /// Distance between taxa `i` and `j` (by index).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.taxa.len() + j]
    }

    /// Set the distance between taxa `i` and `j` (both directions).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, d: f64) {
        let n = self.taxa.len();
        self.values[i * n + j] = d;
        self.values[j * n + i] = d;
    }

    /// Index of a taxon by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.taxa.iter().position(|t| t == name)
    }

    /// Distance between two taxa by name.
    pub fn get_by_name(&self, a: &str, b: &str) -> Option<f64> {
        Some(self.get(self.index_of(a)?, self.index_of(b)?))
    }

    /// Maximum off-diagonal entry.
    pub fn max(&self) -> f64 {
        let n = self.len();
        let mut m = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m = m.max(self.get(i, j));
                }
            }
        }
        m
    }

    /// Mean off-diagonal entry (0 for < 2 taxa).
    pub fn mean(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                sum += self.get(i, j);
                count += 1;
            }
        }
        sum / count as f64
    }
}

/// Compute the patristic distance between two nodes (sum of branch lengths
/// along the path connecting them).
pub fn patristic_distance(tree: &Tree, a: NodeId, b: NodeId) -> f64 {
    let lca = tree.lca(a, b);
    tree.root_distance(a) + tree.root_distance(b) - 2.0 * tree.root_distance(lca)
}

/// Compute the full leaf × leaf patristic distance matrix for the named
/// leaves of `tree`. Unnamed leaves are skipped.
///
/// Runs in O(n · depth) using per-leaf root paths; adequate for the sample
/// sizes reconstruction algorithms can handle (≤ a few thousand taxa).
pub fn patristic_matrix(tree: &Tree) -> Result<DistanceMatrix, PhyloError> {
    let leaves: Vec<NodeId> = tree
        .leaf_ids()
        .filter(|&id| tree.name(id).is_some())
        .collect();
    if leaves.is_empty() {
        return Err(PhyloError::EmptyTree);
    }
    let taxa: Vec<String> = leaves
        .iter()
        .map(|&id| tree.name(id).expect("filtered").to_string())
        .collect();
    let mut m = DistanceMatrix::zeroed(taxa);

    // Pre-compute root distances once, then pairwise LCAs via the Euler-free
    // O(depth) walk. For the matrix sizes used by reconstruction (≤ ~2000)
    // this is fast enough and keeps the code dependency-free.
    let dist = tree.all_root_distances();
    let depths = tree.all_depths();
    for i in 0..leaves.len() {
        for j in (i + 1)..leaves.len() {
            let lca = lca_with_depths(tree, &depths, leaves[i], leaves[j]);
            let d = dist[leaves[i].index()] + dist[leaves[j].index()] - 2.0 * dist[lca.index()];
            m.set(i, j, d);
        }
    }
    Ok(m)
}

fn lca_with_depths(tree: &Tree, depths: &[usize], a: NodeId, b: NodeId) -> NodeId {
    let (mut x, mut y) = (a, b);
    let (mut dx, mut dy) = (depths[a.index()], depths[b.index()]);
    while dx > dy {
        x = tree.parent(x).expect("depth > 0 implies a parent");
        dx -= 1;
    }
    while dy > dx {
        y = tree.parent(y).expect("depth > 0 implies a parent");
        dy -= 1;
    }
    while x != y {
        x = tree.parent(x).expect("nodes share a root");
        y = tree.parent(y).expect("nodes share a root");
    }
    x
}

/// Leaf-name set difference helper used when aligning matrices to trees:
/// returns names present in the matrix but missing from the tree.
pub fn missing_taxa(matrix: &DistanceMatrix, tree: &Tree) -> Vec<String> {
    let tree_names: std::collections::HashSet<String> = tree.leaf_names().into_iter().collect();
    matrix
        .taxa
        .iter()
        .filter(|t| !tree_names.contains(*t))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{balanced_binary, figure1_tree};

    #[test]
    fn figure1_pairwise_distances() {
        let t = figure1_tree();
        let m = patristic_matrix(&t).unwrap();
        assert_eq!(m.len(), 5);
        // Lla–Spy share their parent: 1.0 + 1.0.
        assert!((m.get_by_name("Lla", "Spy").unwrap() - 2.0).abs() < 1e-12);
        // Bha–Lla: 0.75 + 0.5 + 1.0 = 2.25.
        assert!((m.get_by_name("Bha", "Lla").unwrap() - 2.25).abs() < 1e-12);
        // Bha–Syn: 0.75 + 1.5 + 2.5 = 4.75.
        assert!((m.get_by_name("Bha", "Syn").unwrap() - 4.75).abs() < 1e-12);
        // Syn–Bsu: 2.5 + 1.25.
        assert!((m.get_by_name("Syn", "Bsu").unwrap() - 3.75).abs() < 1e-12);
        // Diagonal is zero.
        for i in 0..m.len() {
            assert_eq!(m.get(i, i), 0.0);
        }
    }

    #[test]
    fn patristic_distance_single_pair() {
        let t = figure1_tree();
        let a = t.find_leaf_by_name("Lla").unwrap();
        let b = t.find_leaf_by_name("Bsu").unwrap();
        // 1.0 + 0.5 + 1.5 + 1.25 = 4.25
        assert!((patristic_distance(&t, a, b) - 4.25).abs() < 1e-12);
        assert_eq!(patristic_distance(&t, a, a), 0.0);
    }

    #[test]
    fn matrix_is_symmetric() {
        let t = balanced_binary(5, 0.7);
        let m = patristic_matrix(&t).unwrap();
        for i in 0..m.len() {
            for j in 0..m.len() {
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn balanced_tree_distances_are_depth_based() {
        let t = balanced_binary(3, 1.0);
        let m = patristic_matrix(&t).unwrap();
        // Sibling leaves are 2 apart; leaves in different root subtrees are 6 apart.
        assert!((m.get_by_name("T0", "T1").unwrap() - 2.0).abs() < 1e-12);
        assert!((m.get_by_name("T0", "T7").unwrap() - 6.0).abs() < 1e-12);
        assert!((m.max() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_max() {
        let t = figure1_tree();
        let m = patristic_matrix(&t).unwrap();
        assert!(m.max() >= m.mean());
        assert!(m.mean() > 0.0);
    }

    #[test]
    fn empty_tree_is_error() {
        let t = Tree::new();
        assert!(patristic_matrix(&t).is_err());
    }

    #[test]
    fn missing_taxa_detected() {
        let t = figure1_tree();
        let mut m = patristic_matrix(&t).unwrap();
        m.taxa.push("Ghost".to_string());
        // Re-zero values length to stay consistent is unnecessary for this check.
        let missing = missing_taxa(&m, &t);
        assert_eq!(missing, vec!["Ghost"]);
    }

    #[test]
    fn triangle_inequality_holds_on_trees() {
        let t = balanced_binary(4, 0.3);
        let m = patristic_matrix(&t).unwrap();
        let n = m.len();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    assert!(m.get(i, j) <= m.get(i, k) + m.get(k, j) + 1e-9);
                }
            }
        }
    }
}
