//! Property tests for Newick/NEXUS round-tripping on randomized trees.
//!
//! The parsers' example-based tests cover the grammar corner by corner;
//! these tests cover the *space*: hundreds of randomized trees with the
//! features that historically break Newick implementations — labels that
//! need quoting (spaces, embedded quotes, parens, colons, semicolons),
//! zero-length branches, missing branch lengths, unnamed interior nodes and
//! unary (single-child) nodes — each serialized, re-parsed and compared
//! node-for-node.
//!
//! Two properties are checked per tree:
//! 1. **Round-trip fidelity**: `parse(write(T))` equals `T` structurally
//!    (same child lists in order, same names, branch lengths within the
//!    writer's 6-decimal precision).
//! 2. **Write idempotency**: `write(parse(write(T))) == write(T)` byte for
//!    byte — the serialized form is a fixed point, so lossy formatting
//!    cannot hide behind tolerance.

use phylo::{newick, nexus, NodeId, Tree};
use rand::prelude::*;

/// Label pool covering the quoting-relevant alphabet: plain tokens,
/// whitespace, embedded single quotes (doubled on write), structural
/// characters, underscores (which Newick keeps verbatim when unquoted) and
/// comment brackets.
fn random_label(rng: &mut StdRng, salt: usize) -> String {
    let base = match rng.gen_range(0usize..8) {
        0 => "Taxon".to_string(),
        1 => "Bacillus halodurans".to_string(), // space → quoted
        2 => "O'Hara".to_string(),              // quote → doubled
        3 => "weird(paren".to_string(),         // paren → quoted
        4 => "colon:in:name".to_string(),       // colon → quoted
        5 => "semi;colon".to_string(),          // semicolon → quoted
        6 => "under_score".to_string(),         // kept verbatim
        7 => "brack[et]".to_string(),           // comment chars → quoted
        _ => unreachable!(),
    };
    format!("{base}_{salt}")
}

/// Grow a random tree with `target` leaves. Interior nodes get 1–4
/// children (1 ⇒ unary node), optional names, and branch lengths that are
/// `None`, exactly zero, or a 4-decimal value (exact at the writer's
/// 6-decimal precision).
fn random_tree(rng: &mut StdRng, target: usize) -> Tree {
    let mut tree = Tree::new();
    let root = tree.add_node();
    tree.set_root(root).unwrap();
    let mut leaves = vec![root];
    let mut salt = 0usize;
    while leaves.len() < target {
        // Expand a random current leaf into an interior node.
        let idx = rng.gen_range(0usize..leaves.len());
        let node = leaves.swap_remove(idx);
        let arity = match rng.gen_range(0usize..10) {
            0 => 1, // unary
            1..=6 => 2,
            7 | 8 => 3,
            _ => 4,
        };
        for _ in 0..arity {
            let child = tree.add_node();
            tree.attach(node, child).unwrap();
            match rng.gen_range(0usize..4) {
                0 => {}                                           // no branch length
                1 => tree.set_branch_length(child, 0.0).unwrap(), // zero-length
                _ => {
                    let len = rng.gen_range(1i64..20_000) as f64 / 1e4;
                    tree.set_branch_length(child, len).unwrap();
                }
            }
            leaves.push(child);
        }
        // Interior nodes are named half the time.
        if rng.gen_bool(0.5) {
            salt += 1;
            tree.set_name(node, random_label(rng, salt)).unwrap();
        }
    }
    // Every leaf gets a (possibly awkward) unique name.
    for (i, leaf) in leaves.into_iter().enumerate() {
        tree.set_name(leaf, random_label(rng, 10_000 + i)).unwrap();
    }
    tree
}

/// Structural equality: same shape (child lists in order), same names,
/// branch lengths equal within `tol`.
fn assert_trees_equal(a: &Tree, b: &Tree, tol: f64, what: &str) {
    assert_eq!(a.node_count(), b.node_count(), "{what}: node counts differ");
    let mut stack: Vec<(NodeId, NodeId)> = vec![(a.root_unchecked(), b.root_unchecked())];
    while let Some((na, nb)) = stack.pop() {
        assert_eq!(a.name(na), b.name(nb), "{what}: names differ");
        match (a.branch_length(na), b.branch_length(nb)) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert!(
                    (x - y).abs() <= tol,
                    "{what}: branch lengths differ: {x} vs {y}"
                )
            }
            (x, y) => panic!("{what}: branch length presence differs: {x:?} vs {y:?}"),
        }
        let ca = a.children(na);
        let cb = b.children(nb);
        assert_eq!(ca.len(), cb.len(), "{what}: arity differs at {na:?}");
        stack.extend(ca.iter().copied().zip(cb.iter().copied()));
    }
}

#[test]
fn newick_roundtrips_randomized_trees() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..200 {
        let target = rng.gen_range(2usize..60);
        let tree = random_tree(&mut rng, target);
        let text = newick::write(&tree);
        let back = newick::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e:?}\n{text}"));
        assert_trees_equal(&tree, &back, 1e-6, &format!("case {case}"));
        // Idempotency: the serialized form is a fixed point.
        assert_eq!(
            newick::write(&back),
            text,
            "case {case}: write/parse/write is not a fixed point"
        );
    }
}

#[test]
fn newick_roundtrips_unary_chains_and_zero_lengths() {
    // A pathological shape no simulator produces: a pure unary chain with
    // zero-length branches and quoted labels at both ends.
    let mut tree = Tree::new();
    let root = tree.add_node();
    tree.set_root(root).unwrap();
    tree.set_name(root, "root node".to_string()).unwrap();
    let mut cur = root;
    for i in 0..12 {
        let child = tree.add_node();
        tree.attach(cur, child).unwrap();
        tree.set_branch_length(child, 0.0).unwrap();
        if i == 11 {
            tree.set_name(child, "tip's end".to_string()).unwrap();
        }
        cur = child;
    }
    let text = newick::write(&tree);
    let back = newick::parse(&text).unwrap();
    assert_trees_equal(&tree, &back, 0.0, "unary chain");
    assert_eq!(newick::write(&back), text);
}

#[test]
fn nexus_statement_lexing_survives_comments_and_quotes() {
    // An apostrophe inside a [...] comment is prose, not a label delimiter:
    // it must not desynchronize the statement lexer's quote tracking. And a
    // quoted label may contain brackets and semicolons.
    let text = "#NEXUS\nBEGIN SETS;\nTITLE Bob's_taxa;\nEND;\n\
        BEGIN TREES;\n\
        TREE a = [Bob's tree] (left:1.0,right:2.0);\n\
        TREE b = ('semi;colon':1.0,'brack[et':2.0);\n\
        END;\n";
    let doc = nexus::parse(text).expect("comments with apostrophes must parse");
    assert_eq!(doc.trees.len(), 2);
    assert_eq!(doc.trees[0].tree.leaf_count(), 2);
    let names = doc.trees[1].tree.leaf_names();
    assert!(names.contains(&"semi;colon".to_string()), "{names:?}");
    assert!(names.contains(&"brack[et".to_string()), "{names:?}");
}

#[test]
fn nexus_roundtrips_randomized_documents() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case in 0..40 {
        let mut doc = nexus::NexusDocument::new();
        let n_trees = rng.gen_range(1usize..4);
        let mut trees = Vec::new();
        for t in 0..n_trees {
            let leaves = rng.gen_range(2usize..25);
            let tree = random_tree(&mut rng, leaves);
            doc.push_tree(format!("tree_{t}"), tree.clone());
            trees.push(tree);
        }
        // Sequences for the first tree's leaves (names may need quoting).
        for name in trees[0].leaf_names() {
            let seq: String = (0..rng.gen_range(4usize..12))
                .map(|_| ['A', 'C', 'G', 'T'][rng.gen_range(0usize..4)])
                .collect();
            doc.push_sequence(name, seq);
        }
        let text = nexus::write(&doc);
        let back = nexus::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e:?}\n{text}"));
        assert_eq!(back.trees.len(), trees.len(), "case {case}");
        for (i, tree) in trees.iter().enumerate() {
            assert_trees_equal(
                tree,
                &back.trees[i].tree,
                1e-6,
                &format!("case {case}, tree {i}"),
            );
        }
        assert_eq!(back.sequences, doc.sequences, "case {case}: sequences");
    }
}
