//! Parent-pointer baseline: no labels at all, just pointer chasing.
//!
//! This is what "store the tree as adjacency and walk it" looks like — the
//! natural main-memory representation the paper argues against for huge
//! trees. LCA costs O(depth) pointer dereferences; on the million-level
//! simulation trees that is millions of random accesses per query.

use crate::scheme::{LabelStats, LcaScheme};
use phylo::{NodeId, Tree};

/// Plain parent pointers and depths.
#[derive(Debug, Clone)]
pub struct ParentPointers {
    parents: Vec<Option<NodeId>>,
    depths: Vec<u32>,
}

impl ParentPointers {
    /// Capture parent pointers and depths from `tree`.
    pub fn build(tree: &Tree) -> Self {
        let parents: Vec<Option<NodeId>> = tree.node_ids().map(|id| tree.parent(id)).collect();
        let depths: Vec<u32> = tree.all_depths().into_iter().map(|d| d as u32).collect();
        ParentPointers { parents, depths }
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, node: NodeId) -> u32 {
        self.depths[node.index()]
    }
}

impl LcaScheme for ParentPointers {
    fn scheme_name(&self) -> &'static str {
        "parent-pointer"
    }

    fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut x, mut y) = (a, b);
        let (mut dx, mut dy) = (self.depths[x.index()], self.depths[y.index()]);
        while dx > dy {
            x = self.parents[x.index()].expect("depth > 0 implies a parent");
            dx -= 1;
        }
        while dy > dx {
            y = self.parents[y.index()].expect("depth > 0 implies a parent");
            dy -= 1;
        }
        while x != y {
            x = self.parents[x.index()].expect("nodes share a root");
            y = self.parents[y.index()].expect("nodes share a root");
        }
        x
    }

    fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        self.lca(ancestor, node) == ancestor
    }

    fn label_bytes(&self, _node: NodeId) -> usize {
        8 // parent pointer + depth
    }

    fn stats(&self) -> LabelStats {
        LabelStats::from_sizes(self.parents.iter().map(|_| 8usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::validate_against_reference;
    use phylo::builder::{balanced_binary, figure1_tree};

    #[test]
    fn matches_reference() {
        let tree = figure1_tree();
        let pp = ParentPointers::build(&tree);
        let ids: Vec<NodeId> = tree.node_ids().collect();
        let mut pairs = Vec::new();
        for &a in &ids {
            for &b in &ids {
                pairs.push((a, b));
            }
        }
        validate_against_reference(&pp, &tree, &pairs).unwrap();
    }

    #[test]
    fn depths_recorded() {
        let tree = balanced_binary(4, 1.0);
        let pp = ParentPointers::build(&tree);
        assert_eq!(pp.depth(tree.root_unchecked()), 0);
        for leaf in tree.leaf_ids() {
            assert_eq!(pp.depth(leaf), 4);
        }
    }

    #[test]
    fn stats_constant_per_node() {
        let tree = balanced_binary(3, 1.0);
        let pp = ParentPointers::build(&tree);
        assert_eq!(pp.stats().total_bytes, tree.node_count() * 8);
    }
}
