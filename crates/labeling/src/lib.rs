//! # crimson-labeling — node labeling schemes for deep phylogenetic trees
//!
//! The heart of the Crimson paper is an indexing strategy for structure
//! queries (least common ancestor, ancestor/descendant, minimal spanning
//! clade, projection) on trees that are far deeper than the XML documents
//! contemporary labeling schemes were designed for.
//!
//! This crate implements the paper's scheme and the baselines it is compared
//! against:
//!
//! * [`dewey::FlatDewey`] — the classical Dewey labeling (ref. \[11\]): a
//!   node's label is the sequence of child ordinals on the root path. LCA is
//!   the longest common label prefix, but labels grow linearly with depth.
//! * [`hierarchical::HierarchicalDewey`] — **the paper's contribution**: the
//!   tree is decomposed into subtrees ("frames") of depth at most `f`; frames
//!   are represented by nodes one layer up, recursively, so every label is a
//!   frame id plus a local Dewey path of length ≤ `f`. LCA recurses across
//!   layers exactly as described in §2.1 (Figure 4), using *source nodes* to
//!   hop from a frame back into its parent frame.
//! * [`interval::IntervalLabels`] — pre/post-order interval labels, the
//!   standard XML ancestor/descendant scheme the paper cites as *not*
//!   supporting LCA directly (refs \[2, 3\]).
//! * [`parent::ParentPointers`] — the plain pointer-chasing baseline.
//!
//! All schemes implement [`scheme::LcaScheme`], so the benchmarks and the
//! property tests can treat them interchangeably.
//!
//! ```
//! use labeling::prelude::*;
//! use phylo::builder::figure1_tree;
//!
//! let tree = figure1_tree();
//! let hier = HierarchicalDewey::build(&tree, 2);
//! let lla = tree.find_leaf_by_name("Lla").unwrap();
//! let syn = tree.find_leaf_by_name("Syn").unwrap();
//! // The paper's worked example (§2.1): the LCA of Lla and Syn is found by
//! // recursing through the layer-1 tree and resolving source nodes; for the
//! // Figure 1 tree that ancestor is the root.
//! assert_eq!(hier.lca(lla, syn), tree.root_unchecked());
//! let bha = tree.find_leaf_by_name("Bha").unwrap();
//! assert_eq!(hier.lca(lla, bha), tree.children(tree.root_unchecked())[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clade_hash;
pub mod dewey;
pub mod hierarchical;
pub mod interval;
pub mod parent;
pub mod scheme;

pub use clade_hash::{tree_hashes, CladeHash, CladeRef};
pub use dewey::FlatDewey;
pub use hierarchical::HierarchicalDewey;
pub use interval::{IntervalEntry, IntervalLabels};
pub use parent::ParentPointers;
pub use scheme::{LabelStats, LcaScheme};

/// Commonly used items.
pub mod prelude {
    pub use crate::dewey::FlatDewey;
    pub use crate::hierarchical::HierarchicalDewey;
    pub use crate::interval::{IntervalEntry, IntervalLabels};
    pub use crate::parent::ParentPointers;
    pub use crate::scheme::{LabelStats, LcaScheme};
}
