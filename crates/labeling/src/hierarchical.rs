//! Hierarchical (layered) Dewey labeling — the paper's core contribution.
//!
//! A flat Dewey label encodes the whole root path, so on a tree of depth one
//! million a single label has a million components. Crimson instead bounds
//! every label to a constant `f`:
//!
//! 1. The input tree is decomposed into subtrees — **frames** — of at most
//!    `f` levels ("layer 0"). Each node's label is a Dewey path *local to its
//!    frame*, so it has fewer than `f` components.
//! 2. Every layer-0 frame becomes a node one layer up. The **layer-1** tree
//!    connects frame-nodes exactly as the frames are connected in the
//!    original tree, and is itself decomposed into frames of at most `f`
//!    levels. This repeats until a layer consists of a single frame.
//! 3. When a frame is split off, the node it was split from — its parent in
//!    the original tree — is recorded as the frame's **source node** (the
//!    dotted edge from node 6 to node 3 in Figure 4).
//!
//! The LCA of two nodes `m`, `n` follows §2.1 literally:
//!
//! * same frame → longest common prefix of the local labels;
//! * different frames → let `r_m`, `r_n` be the layer-above nodes
//!   representing their frames, recursively compute `l' = LCA(r_m, r_n)`;
//!   `l'` represents a frame `T'` of the current layer; replace `m` and `n`
//!   by their ancestors inside `T'` (found by walking frame parents and
//!   taking the *source node* on the last hop) and finish with a local
//!   prefix LCA inside `T'`.

use crate::scheme::{LabelStats, LcaScheme};
use phylo::{NodeId, Tree};
use serde::{Deserialize, Serialize};

/// A node's hierarchical label: which frame it belongs to and its Dewey path
/// local to that frame. This is exactly what Crimson stores per node in the
/// relational Tree Repository.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierLabel {
    /// Frame (subtree) identifier within the node's layer.
    pub frame: u32,
    /// Dewey components local to the frame (1-based ordinals; empty for the
    /// frame root).
    pub path: Vec<u32>,
}

impl HierLabel {
    /// Size in bytes when stored (frame id + components).
    pub fn byte_size(&self) -> usize {
        4 + self.path.len() * 4
    }

    /// Paper-style rendering, e.g. `f3:(2.1)`.
    pub fn to_display(&self) -> String {
        let parts: Vec<String> = self.path.iter().map(|c| c.to_string()).collect();
        format!("f{}:({})", self.frame, parts.join("."))
    }
}

/// Metadata kept per frame; mirrors what the Crimson repository stores in its
/// subtree table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameInfo {
    /// The frame's root node (an id of the layer the frame belongs to).
    pub root: u32,
    /// Frame containing the parent of `root`, if any.
    pub parent_frame: Option<u32>,
    /// The parent of `root` in the layer tree — the paper's *source node*.
    pub source: Option<u32>,
}

/// One layer of the hierarchy. Layer 0's nodes are the original tree nodes;
/// layer `k+1`'s nodes are layer `k`'s frames.
#[derive(Debug, Clone)]
pub struct Layer {
    /// Parent of each layer node within the layer tree.
    parents: Vec<Option<u32>>,
    /// Frame id of each layer node.
    frame_of: Vec<u32>,
    /// Local Dewey path of each layer node.
    labels: Vec<Vec<u32>>,
    /// Frame metadata.
    frames: Vec<FrameInfo>,
}

impl Layer {
    /// Number of nodes in this layer.
    pub fn node_count(&self) -> usize {
        self.parents.len()
    }

    /// Number of frames this layer was decomposed into.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Frame metadata by id.
    pub fn frame(&self, id: u32) -> &FrameInfo {
        &self.frames[id as usize]
    }

    /// The label of a layer node.
    pub fn label(&self, node: u32) -> HierLabel {
        HierLabel {
            frame: self.frame_of[node as usize],
            path: self.labels[node as usize].clone(),
        }
    }
}

/// The full hierarchical index over one tree.
#[derive(Debug, Clone)]
pub struct HierarchicalDewey {
    frame_depth: usize,
    layers: Vec<Layer>,
}

impl HierarchicalDewey {
    /// Build the index for `tree` with frame depth `f` (maximum number of
    /// levels per frame, so every local label has fewer than `f` components).
    /// `f` must be at least 2.
    pub fn build(tree: &Tree, f: usize) -> Self {
        assert!(f >= 2, "frame depth must be at least 2");
        let n = tree.node_count();
        let mut layers = Vec::new();
        if n == 0 {
            return HierarchicalDewey {
                frame_depth: f,
                layers,
            };
        }

        // ---- Layer 0: decompose the original tree. -----------------------
        let mut parents: Vec<Option<u32>> = vec![None; n];
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for id in tree.node_ids() {
            if let Some(p) = tree.parent(id) {
                parents[id.index()] = Some(p.0);
                children[p.index()].push(id.0);
            }
        }
        let root = tree.root_unchecked().0;
        layers.push(decompose_layer(&parents, &children, &[root], f));

        // ---- Higher layers: nodes are the previous layer's frames. -------
        loop {
            let prev = layers.last().expect("at least layer 0 exists");
            if prev.frames.len() <= 1 {
                break;
            }
            let m = prev.frames.len();
            let mut parents: Vec<Option<u32>> = vec![None; m];
            let mut children: Vec<Vec<u32>> = vec![Vec::new(); m];
            let mut roots = Vec::new();
            for (fid, frame) in prev.frames.iter().enumerate() {
                match frame.parent_frame {
                    Some(pf) => {
                        parents[fid] = Some(pf);
                        children[pf as usize].push(fid as u32);
                    }
                    None => roots.push(fid as u32),
                }
            }
            let layer = decompose_layer(&parents, &children, &roots, f);
            layers.push(layer);
        }

        HierarchicalDewey {
            frame_depth: f,
            layers,
        }
    }

    /// The frame depth `f` the index was built with.
    pub fn frame_depth(&self) -> usize {
        self.frame_depth
    }

    /// Number of layers (≥ 1 for a non-empty tree).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Access a layer (0 = original nodes).
    pub fn layer(&self, k: usize) -> &Layer {
        &self.layers[k]
    }

    /// The label the repository stores for an original tree node.
    pub fn label(&self, node: NodeId) -> HierLabel {
        self.layers[0].label(node.0)
    }

    /// Total number of frames across all layers (index size metric for E3).
    pub fn total_frames(&self) -> usize {
        self.layers.iter().map(|l| l.frames.len()).sum()
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    fn local_lca(&self, k: usize, a: u32, b: u32) -> u32 {
        let layer = &self.layers[k];
        debug_assert_eq!(layer.frame_of[a as usize], layer.frame_of[b as usize]);
        let la = &layer.labels[a as usize];
        let lb = &layer.labels[b as usize];
        let prefix = la.iter().zip(lb.iter()).take_while(|(x, y)| x == y).count();
        // Walk up from the node whose local depth is smaller (or either if
        // equal) until its local depth equals the prefix length.
        let (mut node, depth) = if la.len() <= lb.len() {
            (a, la.len())
        } else {
            (b, lb.len())
        };
        for _ in prefix..depth {
            node = layer.parents[node as usize].expect("local depth > 0 implies a parent");
        }
        node
    }

    /// Ancestor-or-self of `node` that lies inside `target_frame`
    /// (which must be an ancestor frame of the node's frame, or its own).
    fn ancestor_in_frame(&self, k: usize, node: u32, target_frame: u32) -> u32 {
        let layer = &self.layers[k];
        let mut frame = layer.frame_of[node as usize];
        if frame == target_frame {
            return node;
        }
        loop {
            let info = &layer.frames[frame as usize];
            let parent = info
                .parent_frame
                .expect("target frame must be an ancestor of the node's frame");
            if parent == target_frame {
                return info
                    .source
                    .expect("non-root frames always record a source node");
            }
            frame = parent;
        }
    }

    fn lca_at_layer(&self, k: usize, a: u32, b: u32) -> u32 {
        if a == b {
            return a;
        }
        let layer = &self.layers[k];
        let fa = layer.frame_of[a as usize];
        let fb = layer.frame_of[b as usize];
        if fa == fb {
            return self.local_lca(k, a, b);
        }
        // Frames differ: recurse one layer up over the frame representatives.
        debug_assert!(
            k + 1 < self.layers.len(),
            "a layer with more than one frame always has a layer above it"
        );
        let lca_frame = self.lca_at_layer(k + 1, fa, fb);
        let a_anc = self.ancestor_in_frame(k, a, lca_frame);
        let b_anc = self.ancestor_in_frame(k, b, lca_frame);
        self.local_lca(k, a_anc, b_anc)
    }
}

impl LcaScheme for HierarchicalDewey {
    fn scheme_name(&self) -> &'static str {
        "hierarchical-dewey"
    }

    fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        NodeId(self.lca_at_layer(0, a.0, b.0))
    }

    fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        // The paper: m is an ancestor of n iff LCA(m, n) = m.
        self.lca(ancestor, node) == ancestor
    }

    fn label_bytes(&self, node: NodeId) -> usize {
        self.layers[0].label(node.0).byte_size()
    }

    fn stats(&self) -> LabelStats {
        if self.layers.is_empty() {
            return LabelStats::from_sizes(std::iter::empty());
        }
        LabelStats::from_sizes(self.layers[0].labels.iter().map(|path| 4 + path.len() * 4))
    }
}

/// Decompose one layer's forest (given by parent/children arrays and root
/// list) into frames of at most `f` levels, assigning local Dewey labels.
fn decompose_layer(
    parents: &[Option<u32>],
    children: &[Vec<u32>],
    roots: &[u32],
    f: usize,
) -> Layer {
    let n = parents.len();
    let mut frame_of = vec![u32::MAX; n];
    let mut labels: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut frames: Vec<FrameInfo> = Vec::new();

    // Iterative DFS carrying (node, local depth within its frame).
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for &root in roots {
        let fid = frames.len() as u32;
        frames.push(FrameInfo {
            root,
            parent_frame: None,
            source: None,
        });
        frame_of[root as usize] = fid;
        labels[root as usize] = Vec::new();
        stack.push((root, 0));
        while let Some((node, depth)) = stack.pop() {
            for (i, &child) in children[node as usize].iter().enumerate() {
                if depth + 1 < f {
                    // Child stays in the parent's frame.
                    frame_of[child as usize] = frame_of[node as usize];
                    let mut label = labels[node as usize].clone();
                    label.push(i as u32 + 1);
                    labels[child as usize] = label;
                    stack.push((child, depth + 1));
                } else {
                    // Child starts a new frame; record the split point.
                    let child_fid = frames.len() as u32;
                    frames.push(FrameInfo {
                        root: child,
                        parent_frame: Some(frame_of[node as usize]),
                        source: Some(node),
                    });
                    frame_of[child as usize] = child_fid;
                    labels[child as usize] = Vec::new();
                    stack.push((child, 0));
                }
            }
        }
    }
    Layer {
        parents: parents.to_vec(),
        frame_of,
        labels,
        frames,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::validate_against_reference;
    use phylo::builder::{balanced_binary, caterpillar, figure1_tree};
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn all_pairs(tree: &Tree) -> Vec<(NodeId, NodeId)> {
        let ids: Vec<NodeId> = tree.node_ids().collect();
        let mut pairs = Vec::new();
        for &a in &ids {
            for &b in &ids {
                pairs.push((a, b));
            }
        }
        pairs
    }

    #[test]
    fn figure1_structure_with_f2() {
        let tree = figure1_tree();
        let h = HierarchicalDewey::build(&tree, 2);
        // Labels are bounded: every local path has fewer than 2 components.
        for node in tree.node_ids() {
            assert!(h.label(node).path.len() < 2, "label too long for {node}");
        }
        // The depth-3 tree with f=2 needs more than one layer-0 frame, and
        // therefore at least two layers.
        assert!(h.layer(0).frame_count() > 1);
        assert!(h.layer_count() >= 2);
        // Every non-root frame records a source node that is the parent of
        // its root (the dotted edge of Figure 4).
        let layer0 = h.layer(0);
        for fid in 0..layer0.frame_count() as u32 {
            let frame = layer0.frame(fid);
            match (frame.parent_frame, frame.source) {
                (None, None) => assert_eq!(frame.root, tree.root_unchecked().0),
                (Some(_), Some(source)) => {
                    assert_eq!(tree.parent(NodeId(frame.root)), Some(NodeId(source)));
                }
                other => panic!("inconsistent frame metadata: {other:?}"),
            }
        }
    }

    #[test]
    fn figure4_worked_example_lla_syn() {
        // §2.1: LCA(Syn, Lla) requires going up a layer, computing the LCA of
        // the frame representatives, resolving the source node, and finishing
        // locally; the answer is the tree root (node "1" in the paper's
        // renumbered Figure 4).
        let tree = figure1_tree();
        for f in [2usize, 3, 4] {
            let h = HierarchicalDewey::build(&tree, f);
            let lla = tree.find_leaf_by_name("Lla").unwrap();
            let syn = tree.find_leaf_by_name("Syn").unwrap();
            assert_eq!(h.lca(lla, syn), tree.root_unchecked(), "f={f}");
            // And the in-clade example: LCA(Lla, Spy) is their parent.
            let spy = tree.find_leaf_by_name("Spy").unwrap();
            assert_eq!(h.lca(lla, spy), tree.parent(lla).unwrap(), "f={f}");
        }
    }

    #[test]
    fn matches_reference_on_figure1_all_pairs() {
        let tree = figure1_tree();
        for f in [2usize, 3, 8] {
            let h = HierarchicalDewey::build(&tree, f);
            validate_against_reference(&h, &tree, &all_pairs(&tree)).unwrap();
        }
    }

    #[test]
    fn matches_reference_on_balanced_tree() {
        let tree = balanced_binary(6, 1.0); // depth 6, 127 nodes
        for f in [2usize, 3, 4] {
            let h = HierarchicalDewey::build(&tree, f);
            validate_against_reference(&h, &tree, &all_pairs(&tree)).unwrap();
        }
    }

    #[test]
    fn matches_reference_on_deep_caterpillar() {
        let tree = caterpillar(300, 1.0);
        let h = HierarchicalDewey::build(&tree, 8);
        // Sampled pairs (all-pairs would be 600^2).
        let mut rng = StdRng::seed_from_u64(42);
        let ids: Vec<NodeId> = tree.node_ids().collect();
        let pairs: Vec<(NodeId, NodeId)> = (0..500)
            .map(|_| {
                (
                    ids[rng.gen_range(0..ids.len())],
                    ids[rng.gen_range(0..ids.len())],
                )
            })
            .collect();
        validate_against_reference(&h, &tree, &pairs).unwrap();
    }

    #[test]
    fn labels_are_bounded_by_f() {
        let tree = caterpillar(1000, 1.0);
        for f in [2usize, 4, 16] {
            let h = HierarchicalDewey::build(&tree, f);
            for node in tree.node_ids() {
                assert!(h.label(node).path.len() < f);
            }
            let stats = h.stats();
            assert!(stats.max_bytes <= 4 + (f - 1) * 4);
        }
    }

    #[test]
    fn bounded_labels_much_smaller_than_flat_on_deep_trees() {
        use crate::dewey::FlatDewey;
        let tree = caterpillar(2000, 1.0);
        let flat = FlatDewey::build(&tree);
        let hier = HierarchicalDewey::build(&tree, 8);
        let flat_stats = flat.stats();
        let hier_stats = hier.stats();
        assert!(
            hier_stats.max_bytes * 50 < flat_stats.max_bytes,
            "hierarchical max {} should be orders of magnitude below flat max {}",
            hier_stats.max_bytes,
            flat_stats.max_bytes
        );
        assert!(hier_stats.total_bytes < flat_stats.total_bytes / 10);
    }

    #[test]
    fn layer_count_shrinks_with_larger_f() {
        let tree = caterpillar(4000, 1.0);
        let small_f = HierarchicalDewey::build(&tree, 2);
        let big_f = HierarchicalDewey::build(&tree, 64);
        assert!(big_f.layer_count() < small_f.layer_count());
        assert!(big_f.total_frames() < small_f.total_frames());
    }

    #[test]
    fn single_node_and_shallow_trees() {
        let mut t = Tree::new();
        let only = t.add_node();
        let h = HierarchicalDewey::build(&t, 4);
        assert_eq!(h.layer_count(), 1);
        assert_eq!(h.lca(only, only), only);
        assert!(h.is_ancestor(only, only));

        let shallow = figure1_tree();
        let h = HierarchicalDewey::build(&shallow, 32);
        // Tree fits in one frame: a single layer, flat-Dewey-like behaviour.
        assert_eq!(h.layer(0).frame_count(), 1);
        assert_eq!(h.layer_count(), 1);
        validate_against_reference(&h, &shallow, &all_pairs(&shallow)).unwrap();
    }

    #[test]
    fn empty_tree_builds() {
        let t = Tree::new();
        let h = HierarchicalDewey::build(&t, 4);
        assert_eq!(h.layer_count(), 0);
        assert_eq!(h.stats().nodes, 0);
    }

    #[test]
    fn label_display_format() {
        let tree = figure1_tree();
        let h = HierarchicalDewey::build(&tree, 4);
        let lla = tree.find_leaf_by_name("Lla").unwrap();
        let text = h.label(lla).to_display();
        assert!(text.starts_with("f0:("), "{text}");
    }

    #[test]
    fn is_ancestor_matches_reference_on_random_pairs() {
        let tree = balanced_binary(7, 1.0);
        let h = HierarchicalDewey::build(&tree, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let ids: Vec<NodeId> = tree.node_ids().collect();
        for _ in 0..2000 {
            let a = ids[rng.gen_range(0..ids.len())];
            let b = ids[rng.gen_range(0..ids.len())];
            assert_eq!(h.is_ancestor(a, b), tree.is_ancestor(a, b), "a={a} b={b}");
        }
    }
}
