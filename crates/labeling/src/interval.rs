//! Interval (pre/post-order) labeling — the standard XML scheme used as a
//! baseline.
//!
//! Each node is labelled with its pre-order rank and the largest pre-order
//! rank in its subtree (`[start, end]`). `a` is an ancestor-or-self of `b`
//! iff `start(a) ≤ start(b) ≤ end(a)`. This answers ancestor/descendant in
//! O(1) — the reason interval labels dominate XML indexing (paper refs
//! \[2, 3\]) — but it does **not** identify the least common ancestor by
//! itself: the LCA must still be located by walking up the tree, which is
//! exactly the shortcoming the paper calls out when motivating Dewey-style
//! labels.

use crate::scheme::{LabelStats, LcaScheme};
use phylo::traverse::Traverse;
use phylo::{NodeId, Tree};

/// Pre/post-order interval labels for every node.
#[derive(Debug, Clone)]
pub struct IntervalLabels {
    start: Vec<u32>,
    end: Vec<u32>,
    parents: Vec<Option<NodeId>>,
}

impl IntervalLabels {
    /// Assign `[start, end]` intervals to every node of `tree`.
    pub fn build(tree: &Tree) -> Self {
        let n = tree.node_count();
        let mut start = vec![0u32; n];
        let mut end = vec![0u32; n];
        let mut parents = vec![None; n];
        for (rank, node) in tree.preorder().enumerate() {
            start[node.index()] = rank as u32;
            parents[node.index()] = tree.parent(node);
        }
        // end = max start in subtree; compute in post-order.
        for node in tree.postorder() {
            let mut e = start[node.index()];
            for &c in tree.children(node) {
                e = e.max(end[c.index()]);
            }
            end[node.index()] = e;
        }
        IntervalLabels { start, end, parents }
    }

    /// The `[start, end]` interval of a node.
    pub fn interval(&self, node: NodeId) -> (u32, u32) {
        (self.start[node.index()], self.end[node.index()])
    }
}

impl LcaScheme for IntervalLabels {
    fn scheme_name(&self) -> &'static str {
        "interval"
    }

    fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        // Intervals give a constant-time ancestor test but no direct LCA;
        // walk up from `a` until the interval contains `b` (or vice versa).
        if self.is_ancestor(a, b) {
            return a;
        }
        if self.is_ancestor(b, a) {
            return b;
        }
        let mut cur = a;
        loop {
            cur = self.parents[cur.index()].expect("two nodes of one tree always share the root");
            if self.is_ancestor(cur, b) {
                return cur;
            }
        }
    }

    fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        self.start[ancestor.index()] <= self.start[node.index()]
            && self.start[node.index()] <= self.end[ancestor.index()]
    }

    fn label_bytes(&self, _node: NodeId) -> usize {
        8 // start + end, 4 bytes each
    }

    fn stats(&self) -> LabelStats {
        LabelStats::from_sizes(self.start.iter().map(|_| 8usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::validate_against_reference;
    use phylo::builder::{balanced_binary, caterpillar, figure1_tree};

    #[test]
    fn intervals_nest_properly() {
        let tree = figure1_tree();
        let iv = IntervalLabels::build(&tree);
        let root = tree.root_unchecked();
        let (rs, re) = iv.interval(root);
        assert_eq!(rs, 0);
        assert_eq!(re as usize, tree.node_count() - 1);
        for node in tree.node_ids() {
            let (s, e) = iv.interval(node);
            assert!(s <= e);
            if let Some(p) = tree.parent(node) {
                let (ps, pe) = iv.interval(p);
                assert!(ps < s && e <= pe, "child interval must nest inside the parent's");
            }
        }
    }

    #[test]
    fn ancestor_test_is_exact() {
        let tree = balanced_binary(5, 1.0);
        let iv = IntervalLabels::build(&tree);
        for a in tree.node_ids() {
            for b in tree.node_ids() {
                assert_eq!(iv.is_ancestor(a, b), tree.is_ancestor(a, b));
            }
        }
    }

    #[test]
    fn lca_matches_reference() {
        let tree = figure1_tree();
        let iv = IntervalLabels::build(&tree);
        let ids: Vec<NodeId> = tree.node_ids().collect();
        let mut pairs = Vec::new();
        for &a in &ids {
            for &b in &ids {
                pairs.push((a, b));
            }
        }
        validate_against_reference(&iv, &tree, &pairs).unwrap();
    }

    #[test]
    fn constant_label_size() {
        let tree = caterpillar(200, 1.0);
        let iv = IntervalLabels::build(&tree);
        let stats = iv.stats();
        assert_eq!(stats.max_bytes, 8);
        assert_eq!(stats.total_bytes, tree.node_count() * 8);
    }

    #[test]
    fn leaves_have_point_intervals() {
        let tree = figure1_tree();
        let iv = IntervalLabels::build(&tree);
        for leaf in tree.leaf_ids() {
            let (s, e) = iv.interval(leaf);
            assert_eq!(s, e);
        }
    }
}
