//! Interval (pre/post-order) labeling — the standard XML scheme used as a
//! baseline, plus the on-disk entry format the storage layer persists.
//!
//! Each node is labelled with its pre-order rank and the largest pre-order
//! rank in its subtree (`[start, end]`). `a` is an ancestor-or-self of `b`
//! iff `start(a) ≤ start(b) ≤ end(a)`. This answers ancestor/descendant in
//! O(1) — the reason interval labels dominate XML indexing (paper refs
//! \[2, 3\]) — but it does **not** identify the least common ancestor by
//! itself: the LCA must still be located by walking up the tree, which is
//! exactly the shortcoming the paper calls out when motivating Dewey-style
//! labels. The stored form ([`IntervalEntry`]) therefore carries the
//! parent's pre-order rank as well, so the walk stays inside the interval
//! index instead of touching node rows.
//!
//! ## Serialized entry layout
//!
//! [`IntervalEntry::encode_key`] produces a *covering* B+tree key: every
//! field a structure query needs rides in the key bytes, so a range scan
//! answers subtree queries without fetching any row. Layout (big-endian, 25
//! bytes):
//!
//! ```text
//! tree_id: u64 | pre: u32 | end: u32 | parent_pre: u32 | node: u32 | flags: u8
//! ```
//!
//! Keys sort by `(tree_id, pre)` — the remaining bytes are unique per
//! `(tree_id, pre)` and never influence ordering in practice — so the
//! subtree of a node `v` of tree `t` is exactly the contiguous key range
//! `[(t, pre(v)), (t, end(v)+1))`.

use crate::scheme::{LabelStats, LcaScheme};
use phylo::traverse::Traverse;
use phylo::{NodeId, Tree};

/// Length of the `(tree_id, pre)` prefix that determines key order.
pub const INTERVAL_KEY_PREFIX: usize = 12;

/// Total length of a serialized interval entry key.
pub const INTERVAL_KEY_LEN: usize = INTERVAL_KEY_PREFIX + 13;

/// The `(tree_id, pre)` key prefix: the lower bound of a node's subtree
/// range, and the probe key for point lookups.
pub fn interval_key_prefix(tree_id: u64, pre: u32) -> [u8; INTERVAL_KEY_PREFIX] {
    let mut key = [0u8; INTERVAL_KEY_PREFIX];
    key[..8].copy_from_slice(&tree_id.to_be_bytes());
    key[8..].copy_from_slice(&pre.to_be_bytes());
    key
}

/// Exclusive upper bound of the key range covering ranks `..= end` of
/// `tree_id` — i.e. the first key past `(tree_id, end)`. Handles the
/// `end == u32::MAX` edge by rolling over to the next tree id.
pub fn interval_range_end(tree_id: u64, end: u32) -> [u8; INTERVAL_KEY_PREFIX] {
    match end.checked_add(1) {
        Some(next) => interval_key_prefix(tree_id, next),
        None => interval_key_prefix(tree_id + 1, 0),
    }
}

/// One node's stored interval entry — everything the structure-query engine
/// needs, packed into a covering index key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalEntry {
    /// Pre-order rank of the node (0 = root).
    pub pre: u32,
    /// Largest pre-order rank in the node's subtree.
    pub end: u32,
    /// Pre-order rank of the parent; equals `pre` for the root.
    pub parent_pre: u32,
    /// Arena id of the labelled node within its tree.
    pub node: u32,
    /// `true` when the node has no children.
    pub is_leaf: bool,
}

impl IntervalEntry {
    /// `true` when this entry's interval covers pre-order rank `pre` (i.e.
    /// the entry's node is an ancestor-or-self of the node ranked `pre`).
    #[inline]
    pub fn covers(&self, pre: u32) -> bool {
        self.pre <= pre && pre <= self.end
    }

    /// Serialize as a covering B+tree key (see the module docs for layout).
    pub fn encode_key(&self, tree_id: u64) -> [u8; INTERVAL_KEY_LEN] {
        let mut key = [0u8; INTERVAL_KEY_LEN];
        key[..8].copy_from_slice(&tree_id.to_be_bytes());
        key[8..12].copy_from_slice(&self.pre.to_be_bytes());
        key[12..16].copy_from_slice(&self.end.to_be_bytes());
        key[16..20].copy_from_slice(&self.parent_pre.to_be_bytes());
        key[20..24].copy_from_slice(&self.node.to_be_bytes());
        key[24] = self.is_leaf as u8;
        key
    }

    /// Inverse of [`IntervalEntry::encode_key`]; returns the tree id and the
    /// entry, or `None` for malformed bytes.
    pub fn decode_key(key: &[u8]) -> Option<(u64, IntervalEntry)> {
        if key.len() != INTERVAL_KEY_LEN {
            return None;
        }
        let u32_at =
            |i: usize| u32::from_be_bytes(key[i..i + 4].try_into().expect("length checked"));
        Some((
            u64::from_be_bytes(key[..8].try_into().expect("length checked")),
            IntervalEntry {
                pre: u32_at(8),
                end: u32_at(12),
                parent_pre: u32_at(16),
                node: u32_at(20),
                is_leaf: key[24] != 0,
            },
        ))
    }
}

/// Pre/post-order interval labels for every node.
#[derive(Debug, Clone)]
pub struct IntervalLabels {
    start: Vec<u32>,
    end: Vec<u32>,
    parents: Vec<Option<NodeId>>,
}

impl IntervalLabels {
    /// Assign `[start, end]` intervals to every node of `tree`.
    pub fn build(tree: &Tree) -> Self {
        let n = tree.node_count();
        let mut start = vec![0u32; n];
        let mut end = vec![0u32; n];
        let mut parents = vec![None; n];
        for (rank, node) in tree.preorder().enumerate() {
            start[node.index()] = rank as u32;
            parents[node.index()] = tree.parent(node);
        }
        // end = max start in subtree; compute in post-order.
        for node in tree.postorder() {
            let mut e = start[node.index()];
            for &c in tree.children(node) {
                e = e.max(end[c.index()]);
            }
            end[node.index()] = e;
        }
        IntervalLabels {
            start,
            end,
            parents,
        }
    }

    /// The `[start, end]` interval of a node.
    pub fn interval(&self, node: NodeId) -> (u32, u32) {
        (self.start[node.index()], self.end[node.index()])
    }

    /// The stored entries for every node of `tree`, in pre-order — the rows
    /// the repository persists into its interval index at load time.
    pub fn entries(&self, tree: &Tree) -> Vec<IntervalEntry> {
        tree.preorder()
            .map(|node| {
                let i = node.index();
                IntervalEntry {
                    pre: self.start[i],
                    end: self.end[i],
                    parent_pre: match self.parents[i] {
                        Some(p) => self.start[p.index()],
                        None => self.start[i],
                    },
                    node: node.0,
                    is_leaf: tree.is_leaf(node),
                }
            })
            .collect()
    }
}

impl LcaScheme for IntervalLabels {
    fn scheme_name(&self) -> &'static str {
        "interval"
    }

    fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        // Intervals give a constant-time ancestor test but no direct LCA;
        // walk up from `a` until the interval contains `b` (or vice versa).
        if self.is_ancestor(a, b) {
            return a;
        }
        if self.is_ancestor(b, a) {
            return b;
        }
        let mut cur = a;
        loop {
            cur = self.parents[cur.index()].expect("two nodes of one tree always share the root");
            if self.is_ancestor(cur, b) {
                return cur;
            }
        }
    }

    fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        self.start[ancestor.index()] <= self.start[node.index()]
            && self.start[node.index()] <= self.end[ancestor.index()]
    }

    fn label_bytes(&self, _node: NodeId) -> usize {
        8 // start + end, 4 bytes each
    }

    fn stats(&self) -> LabelStats {
        LabelStats::from_sizes(self.start.iter().map(|_| 8usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::validate_against_reference;
    use phylo::builder::{balanced_binary, caterpillar, figure1_tree};

    #[test]
    fn intervals_nest_properly() {
        let tree = figure1_tree();
        let iv = IntervalLabels::build(&tree);
        let root = tree.root_unchecked();
        let (rs, re) = iv.interval(root);
        assert_eq!(rs, 0);
        assert_eq!(re as usize, tree.node_count() - 1);
        for node in tree.node_ids() {
            let (s, e) = iv.interval(node);
            assert!(s <= e);
            if let Some(p) = tree.parent(node) {
                let (ps, pe) = iv.interval(p);
                assert!(
                    ps < s && e <= pe,
                    "child interval must nest inside the parent's"
                );
            }
        }
    }

    #[test]
    fn ancestor_test_is_exact() {
        let tree = balanced_binary(5, 1.0);
        let iv = IntervalLabels::build(&tree);
        for a in tree.node_ids() {
            for b in tree.node_ids() {
                assert_eq!(iv.is_ancestor(a, b), tree.is_ancestor(a, b));
            }
        }
    }

    #[test]
    fn lca_matches_reference() {
        let tree = figure1_tree();
        let iv = IntervalLabels::build(&tree);
        let ids: Vec<NodeId> = tree.node_ids().collect();
        let mut pairs = Vec::new();
        for &a in &ids {
            for &b in &ids {
                pairs.push((a, b));
            }
        }
        validate_against_reference(&iv, &tree, &pairs).unwrap();
    }

    #[test]
    fn constant_label_size() {
        let tree = caterpillar(200, 1.0);
        let iv = IntervalLabels::build(&tree);
        let stats = iv.stats();
        assert_eq!(stats.max_bytes, 8);
        assert_eq!(stats.total_bytes, tree.node_count() * 8);
    }

    #[test]
    fn leaves_have_point_intervals() {
        let tree = figure1_tree();
        let iv = IntervalLabels::build(&tree);
        for leaf in tree.leaf_ids() {
            let (s, e) = iv.interval(leaf);
            assert_eq!(s, e);
        }
    }

    #[test]
    fn stored_entries_match_labels() {
        let tree = balanced_binary(4, 1.0);
        let iv = IntervalLabels::build(&tree);
        let entries = iv.entries(&tree);
        assert_eq!(entries.len(), tree.node_count());
        // Pre-order, contiguous ranks from 0.
        for (rank, entry) in entries.iter().enumerate() {
            assert_eq!(entry.pre as usize, rank);
            let node = NodeId(entry.node);
            assert_eq!((entry.pre, entry.end), iv.interval(node));
            assert_eq!(entry.is_leaf, tree.is_leaf(node));
            match tree.parent(node) {
                Some(p) => assert_eq!(entry.parent_pre, iv.interval(p).0),
                None => assert_eq!(entry.parent_pre, entry.pre),
            }
        }
    }

    #[test]
    fn key_encoding_roundtrips_and_sorts_by_pre() {
        let tree = caterpillar(30, 1.0);
        let iv = IntervalLabels::build(&tree);
        let entries = iv.entries(&tree);
        let mut keys: Vec<Vec<u8>> = entries.iter().map(|e| e.encode_key(7).to_vec()).collect();
        for (entry, key) in entries.iter().zip(&keys) {
            let (tree_id, back) = IntervalEntry::decode_key(key).unwrap();
            assert_eq!(tree_id, 7);
            assert_eq!(&back, entry);
            assert_eq!(
                &key[..INTERVAL_KEY_PREFIX],
                &interval_key_prefix(7, entry.pre)
            );
        }
        // Byte order == (tree, pre) order.
        let sorted = keys.clone();
        keys.sort();
        assert_eq!(keys, sorted);
        // A different tree id sorts entirely after.
        let other = entries[0].encode_key(8);
        assert!(other.as_slice() > keys.last().unwrap().as_slice());
        // Malformed input is rejected.
        assert!(IntervalEntry::decode_key(&keys[0][..10]).is_none());
    }

    #[test]
    fn covers_is_ancestor_test() {
        let tree = figure1_tree();
        let iv = IntervalLabels::build(&tree);
        let entries = iv.entries(&tree);
        let by_node: std::collections::HashMap<u32, &IntervalEntry> =
            entries.iter().map(|e| (e.node, e)).collect();
        for a in tree.node_ids() {
            for b in tree.node_ids() {
                let ea = by_node[&a.0];
                let eb = by_node[&b.0];
                assert_eq!(ea.covers(eb.pre), tree.is_ancestor(a, b), "{a} covers {b}");
            }
        }
    }
}
