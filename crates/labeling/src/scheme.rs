//! The common interface implemented by every labeling scheme.

use phylo::{NodeId, Tree};

/// Aggregate statistics about the labels a scheme assigned to a tree.
/// These are the numbers experiment E3 reports (label size vs depth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelStats {
    /// Number of labelled nodes.
    pub nodes: usize,
    /// Total bytes across all labels (per-node auxiliary data included).
    pub total_bytes: usize,
    /// Largest single label in bytes.
    pub max_bytes: usize,
    /// Mean label size in bytes.
    pub mean_bytes: f64,
}

impl LabelStats {
    /// Compute stats from a per-node byte-size iterator.
    pub fn from_sizes(sizes: impl Iterator<Item = usize>) -> LabelStats {
        let mut nodes = 0usize;
        let mut total = 0usize;
        let mut max = 0usize;
        for s in sizes {
            nodes += 1;
            total += s;
            max = max.max(s);
        }
        LabelStats {
            nodes,
            total_bytes: total,
            max_bytes: max,
            mean_bytes: if nodes == 0 {
                0.0
            } else {
                total as f64 / nodes as f64
            },
        }
    }
}

/// A structure-query index over a fixed tree.
///
/// Schemes are built once from a [`Tree`] and then answer ancestor and LCA
/// queries; they never mutate the tree. The `NodeId`s used in queries are the
/// ids of the tree the scheme was built from.
pub trait LcaScheme {
    /// Human-readable name used in benchmark output.
    fn scheme_name(&self) -> &'static str;

    /// Least common ancestor of `a` and `b`.
    fn lca(&self, a: NodeId, b: NodeId) -> NodeId;

    /// `true` when `ancestor` is an ancestor-or-self of `node`.
    fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool;

    /// Size in bytes of the label material needed to answer queries about
    /// `node` (what would be stored in the node's database row).
    fn label_bytes(&self, node: NodeId) -> usize;

    /// Aggregate label statistics over the whole tree.
    fn stats(&self) -> LabelStats;
}

/// Check a scheme against the reference parent-walking implementation on a
/// sample of node pairs; used by tests for cross-validation.
pub fn validate_against_reference<S: LcaScheme>(
    scheme: &S,
    tree: &Tree,
    pairs: &[(NodeId, NodeId)],
) -> Result<(), String> {
    for &(a, b) in pairs {
        let expected = tree.lca(a, b);
        let got = scheme.lca(a, b);
        if expected != got {
            return Err(format!(
                "{}: lca({a}, {b}) = {got}, reference says {expected}",
                scheme.scheme_name()
            ));
        }
        let exp_anc = tree.is_ancestor(a, b);
        let got_anc = scheme.is_ancestor(a, b);
        if exp_anc != got_anc {
            return Err(format!(
                "{}: is_ancestor({a}, {b}) = {got_anc}, reference says {exp_anc}",
                scheme.scheme_name()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_sizes() {
        let s = LabelStats::from_sizes([4usize, 8, 12].into_iter());
        assert_eq!(s.nodes, 3);
        assert_eq!(s.total_bytes, 24);
        assert_eq!(s.max_bytes, 12);
        assert!((s.mean_bytes - 8.0).abs() < 1e-12);
    }

    #[test]
    fn stats_empty() {
        let s = LabelStats::from_sizes(std::iter::empty());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.total_bytes, 0);
        assert_eq!(s.mean_bytes, 0.0);
    }
}
