//! Flat Dewey labeling (ref. \[11\] in the paper).
//!
//! Every node's label is the sequence of child ordinals along the path from
//! the root: in Figure 1 the leaf `Lla` gets `(2.1.1)` and `Spy` gets
//! `(2.1.2)` (1-based ordinals as in the paper). The least common ancestor of
//! two nodes is the node whose label is the longest common prefix of their
//! labels. The scheme is simple and exact, but the label of a node at depth
//! *d* has *d* components — on the million-level simulation trees the paper
//! targets, labels become enormous, which is precisely the problem the
//! hierarchical scheme solves.

use crate::scheme::{LabelStats, LcaScheme};
use phylo::traverse::Traverse;
use phylo::{NodeId, Tree};

/// Flat Dewey labels for every node of a tree.
#[derive(Debug, Clone)]
pub struct FlatDewey {
    /// Label of each node, indexed by `NodeId::index()`. Component values are
    /// 1-based child ordinals, matching the paper's notation.
    labels: Vec<Vec<u32>>,
    /// Parent pointers, kept to map an LCA *label* back to the node id
    /// without a label→node hash map.
    parents: Vec<Option<NodeId>>,
}

impl FlatDewey {
    /// Assign labels to every node of `tree`.
    ///
    /// The paper randomly orders outgoing edges before labeling; the order
    /// has no effect on correctness, so we use the tree's child order (which
    /// generators randomize when desired).
    pub fn build(tree: &Tree) -> Self {
        let n = tree.node_count();
        let mut labels: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut parents: Vec<Option<NodeId>> = vec![None; n];
        for node in tree.preorder() {
            parents[node.index()] = tree.parent(node);
            for (i, &child) in tree.children(node).iter().enumerate() {
                let mut label = labels[node.index()].clone();
                label.push(i as u32 + 1);
                labels[child.index()] = label;
            }
        }
        FlatDewey { labels, parents }
    }

    /// The label of `node` (empty for the root).
    pub fn label(&self, node: NodeId) -> &[u32] {
        &self.labels[node.index()]
    }

    /// Render a label the way the paper writes them, e.g. `(2.1.1)`.
    pub fn label_string(&self, node: NodeId) -> String {
        let parts: Vec<String> = self.labels[node.index()]
            .iter()
            .map(|c| c.to_string())
            .collect();
        format!("({})", parts.join("."))
    }

    /// Length (number of components) of the longest common prefix of the two
    /// labels — the *depth* of the LCA.
    pub fn common_prefix_len(&self, a: NodeId, b: NodeId) -> usize {
        let la = &self.labels[a.index()];
        let lb = &self.labels[b.index()];
        la.iter().zip(lb.iter()).take_while(|(x, y)| x == y).count()
    }
}

impl LcaScheme for FlatDewey {
    fn scheme_name(&self) -> &'static str {
        "flat-dewey"
    }

    fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let prefix = self.common_prefix_len(a, b);
        // The LCA's label is the first `prefix` components of either label;
        // walk up from the shallower-or-equal node until its depth matches.
        let (mut node, depth) = if self.labels[a.index()].len() <= self.labels[b.index()].len() {
            (a, self.labels[a.index()].len())
        } else {
            (b, self.labels[b.index()].len())
        };
        for _ in prefix..depth {
            node = self.parents[node.index()].expect("label length says an ancestor exists");
        }
        node
    }

    fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        let la = &self.labels[ancestor.index()];
        let lb = &self.labels[node.index()];
        la.len() <= lb.len() && la[..] == lb[..la.len()]
    }

    fn label_bytes(&self, node: NodeId) -> usize {
        self.labels[node.index()].len() * std::mem::size_of::<u32>()
    }

    fn stats(&self) -> LabelStats {
        LabelStats::from_sizes(self.labels.iter().map(|l| l.len() * 4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::validate_against_reference;
    use phylo::builder::{balanced_binary, caterpillar, figure1_tree};

    #[test]
    fn figure1_labels_match_paper() {
        // With insertion order, the left clade is child 1, Syn is child 2,
        // Bsu child 3 — the paper's example used a random order where the
        // clade was child 2; the structure of the labels is what matters.
        let tree = figure1_tree();
        let d = FlatDewey::build(&tree);
        let lla = tree.find_leaf_by_name("Lla").unwrap();
        let spy = tree.find_leaf_by_name("Spy").unwrap();
        assert_eq!(d.label(lla), &[1, 2, 1]);
        assert_eq!(d.label(spy), &[1, 2, 2]);
        assert_eq!(d.label_string(lla), "(1.2.1)");
        assert_eq!(d.label(tree.root_unchecked()), &[] as &[u32]);
        // LCA of Lla and Spy is their shared parent, whose label is the
        // common prefix (1.2).
        let lca = d.lca(lla, spy);
        assert_eq!(d.label(lca), &[1, 2]);
        assert_eq!(lca, tree.parent(lla).unwrap());
    }

    #[test]
    fn lca_matches_reference_on_figure1() {
        let tree = figure1_tree();
        let d = FlatDewey::build(&tree);
        let ids: Vec<NodeId> = tree.node_ids().collect();
        let mut pairs = Vec::new();
        for &a in &ids {
            for &b in &ids {
                pairs.push((a, b));
            }
        }
        validate_against_reference(&d, &tree, &pairs).unwrap();
    }

    #[test]
    fn lca_matches_reference_on_balanced_tree() {
        let tree = balanced_binary(6, 1.0);
        let d = FlatDewey::build(&tree);
        let leaves: Vec<NodeId> = tree.leaf_ids().collect();
        let mut pairs = Vec::new();
        for (i, &a) in leaves.iter().enumerate() {
            for &b in leaves.iter().skip(i) {
                pairs.push((a, b));
            }
        }
        validate_against_reference(&d, &tree, &pairs).unwrap();
    }

    #[test]
    fn ancestor_checks() {
        let tree = figure1_tree();
        let d = FlatDewey::build(&tree);
        let root = tree.root_unchecked();
        let lla = tree.find_leaf_by_name("Lla").unwrap();
        let syn = tree.find_leaf_by_name("Syn").unwrap();
        assert!(d.is_ancestor(root, lla));
        assert!(d.is_ancestor(lla, lla));
        assert!(!d.is_ancestor(lla, root));
        assert!(!d.is_ancestor(syn, lla));
    }

    #[test]
    fn label_size_grows_linearly_with_depth() {
        let tree = caterpillar(500, 1.0);
        let d = FlatDewey::build(&tree);
        let stats = d.stats();
        // The deepest leaf has 500+ components of 4 bytes each.
        assert!(stats.max_bytes >= 500 * 4);
        // Mean grows with depth too (roughly half the max for a caterpillar).
        assert!(stats.mean_bytes > 250.0);
    }

    #[test]
    fn self_lca_is_identity() {
        let tree = balanced_binary(4, 1.0);
        let d = FlatDewey::build(&tree);
        for node in tree.node_ids() {
            assert_eq!(d.lca(node, node), node);
        }
    }
}
