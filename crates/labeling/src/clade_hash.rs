//! Canonical per-clade Merkle hashing — the content address of a subtree.
//!
//! Every node of a stored tree gets a 128-bit [`CladeHash`] computed
//! bottom-up: a leaf's hash is derived from its taxon name, an internal
//! node's hash combines its children's hashes **after sorting them**, so two
//! clades that differ only in child order (or in the insertion order that
//! produced the arena) hash identically by construction. Equal hashes mean
//! "same unordered topology with the same leaf-name multiset" (up to the
//! negligible 2⁻¹²⁸ collision odds), which is exactly the equivalence the
//! comparison metrics (RF distance, rooted RF, triplet) are defined over —
//! branch lengths and internal-node names deliberately do not participate.
//!
//! The repository persists these hashes in two raw B+tree indexes whose key
//! layouts live here, next to the hash itself:
//!
//! ```text
//! hash_by_pre:  tree_id: u64 | pre: u32 | hash: 16B          → span(pre, end)
//! hash_idx:     hash: 16B | tree_id: u64 | pre: u32          → span(pre, end)
//! ```
//!
//! `hash_by_pre` sorts by `(tree_id, pre)` — its first 12 bytes are exactly
//! the [`crate::interval::interval_key_prefix`] layout, so the interval
//! range helpers work on it unchanged. `hash_idx` sorts by hash first: a
//! 16-byte prefix scan answers "which stored subtrees equal this one"
//! without touching a single node row.
//!
//! Structurally-shared ("cold") trees additionally persist reference rows
//! bridging to subtrees stored under another tree:
//!
//! ```text
//! clade_refs:   tree_id: u64 | pre: u32 | end: u32 | parent_pre: u32
//!               | src_tree: u64 | src_pre: u32               → span(src_pre, src_end)
//! ```

use phylo::traverse::Traverse;
use phylo::Tree;

/// Byte length of a serialized [`CladeHash`].
pub const CLADE_HASH_LEN: usize = 16;

/// Total length of a `hash_by_pre` key: `tree_id | pre | hash`.
pub const HASH_BY_PRE_KEY_LEN: usize = 12 + CLADE_HASH_LEN;

/// Total length of a `hash_idx` key: `hash | tree_id | pre`.
pub const HASH_IDX_KEY_LEN: usize = CLADE_HASH_LEN + 12;

/// Total length of a `clade_refs` key (see the module docs for layout).
pub const CLADE_REF_KEY_LEN: usize = 8 + 4 + 4 + 4 + 8 + 4;

const SEED_A: u64 = 0x9e37_79b9_7f4a_7c15;
const SEED_B: u64 = 0xc2b2_ae3d_27d4_eb4f;
const MULT_A: u64 = 0xff51_afd7_ed55_8ccd;
const MULT_B: u64 = 0xc4ce_b9fe_1a85_ec53;
const LEAF_TAG: u64 = 0x6c65_6166; // "leaf"
const UNNAMED_TAG: u64 = 0x616e_6f6e; // "anon"
const NODE_TAG: u64 = 0x6e6f_6465; // "node"

/// The splitmix64 finalizer — a full-avalanche 64-bit permutation.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Two independent 64-bit mixing lanes absorbing a word stream.
struct Mixer {
    a: u64,
    b: u64,
}

impl Mixer {
    fn new(tag: u64) -> Self {
        Mixer {
            a: mix64(tag ^ SEED_A),
            b: mix64(tag ^ SEED_B),
        }
    }

    #[inline]
    fn absorb(&mut self, word: u64) {
        self.a = mix64(self.a ^ word.wrapping_mul(MULT_A));
        self.b = mix64(self.b.rotate_left(23) ^ word.wrapping_mul(MULT_B));
    }

    fn finish(self) -> CladeHash {
        let mut bytes = [0u8; CLADE_HASH_LEN];
        bytes[..8].copy_from_slice(&mix64(self.a ^ self.b.rotate_left(32)).to_be_bytes());
        bytes[8..].copy_from_slice(&mix64(self.b ^ self.a.rotate_left(17)).to_be_bytes());
        CladeHash(bytes)
    }
}

/// A 128-bit canonical clade hash. Byte order is the sort order (the bytes
/// are a big-endian u128), so sorted hashes and sorted serialized keys
/// agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CladeHash(pub [u8; CLADE_HASH_LEN]);

impl CladeHash {
    /// The hash of a leaf carrying `name`. All unnamed leaves share one
    /// sentinel hash — callers that need hash equality to imply tree
    /// equality must separately require distinct leaf names (exactly the
    /// precondition the comparison metrics already impose).
    pub fn leaf(name: Option<&str>) -> CladeHash {
        let Some(name) = name else {
            return Mixer::new(UNNAMED_TAG).finish();
        };
        let bytes = name.as_bytes();
        let mut m = Mixer::new(LEAF_TAG);
        m.absorb(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            m.absorb(u64::from_le_bytes(word));
        }
        m.finish()
    }

    /// The hash of an internal node over its children's hashes. Sorts
    /// `children` in place (the canonicalization step: child order never
    /// influences the result) and folds in the arity, so a unary wrapper
    /// hashes differently from its single child.
    pub fn internal(children: &mut [CladeHash]) -> CladeHash {
        children.sort_unstable();
        let mut m = Mixer::new(NODE_TAG);
        m.absorb(children.len() as u64);
        for child in children.iter() {
            m.absorb(u64::from_be_bytes(child.0[..8].try_into().expect("16B")));
            m.absorb(u64::from_be_bytes(child.0[8..].try_into().expect("16B")));
        }
        m.finish()
    }

    /// The raw bytes, big-endian.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; CLADE_HASH_LEN] {
        &self.0
    }

    /// Deserialize from a 16-byte slice; `None` on any other length.
    pub fn from_slice(bytes: &[u8]) -> Option<CladeHash> {
        Some(CladeHash(bytes.try_into().ok()?))
    }

    /// The hash as a u128 (big-endian interpretation of the bytes).
    pub fn to_u128(self) -> u128 {
        u128::from_be_bytes(self.0)
    }
}

/// Per-node canonical hashes for every node of `tree`, indexed by arena
/// index. One post-order pass; children are final before their parent.
pub fn tree_hashes(tree: &Tree) -> Vec<CladeHash> {
    let mut hashes = vec![CladeHash([0u8; CLADE_HASH_LEN]); tree.node_count()];
    let mut scratch: Vec<CladeHash> = Vec::new();
    for node in tree.postorder() {
        let children = tree.children(node);
        hashes[node.index()] = if children.is_empty() {
            CladeHash::leaf(tree.name(node))
        } else {
            scratch.clear();
            scratch.extend(children.iter().map(|c| hashes[c.index()]));
            CladeHash::internal(&mut scratch)
        };
    }
    hashes
}

/// The canonical hash of `tree`'s root clade — the whole-tree content
/// address. Empty trees have no root; returns `None`.
pub fn root_hash(tree: &Tree) -> Option<CladeHash> {
    let root = tree.root()?;
    Some(tree_hashes(tree)[root.index()])
}

/// `true` when every leaf is named and no two leaves share a name — the
/// precondition under which hash equality implies metric equality.
pub fn distinct_named_leaves(tree: &Tree) -> bool {
    let mut seen = std::collections::HashSet::new();
    for leaf in tree.leaf_ids() {
        match tree.name(leaf) {
            Some(name) => {
                if !seen.insert(name) {
                    return false;
                }
            }
            None => return false,
        }
    }
    true
}

/// Pack a `(pre, end)` span into the u64 value slot of a raw index.
#[inline]
pub fn pack_span(pre: u32, end: u32) -> u64 {
    ((pre as u64) << 32) | end as u64
}

/// Inverse of [`pack_span`].
#[inline]
pub fn unpack_span(value: u64) -> (u32, u32) {
    ((value >> 32) as u32, value as u32)
}

/// Serialize a `hash_by_pre` key: `tree_id | pre | hash`. The 12-byte
/// prefix matches [`crate::interval::interval_key_prefix`], so the interval
/// range helpers bound scans over this index too.
pub fn hash_by_pre_key(tree_id: u64, pre: u32, hash: CladeHash) -> [u8; HASH_BY_PRE_KEY_LEN] {
    let mut key = [0u8; HASH_BY_PRE_KEY_LEN];
    key[..8].copy_from_slice(&tree_id.to_be_bytes());
    key[8..12].copy_from_slice(&pre.to_be_bytes());
    key[12..].copy_from_slice(&hash.0);
    key
}

/// Inverse of [`hash_by_pre_key`]; `None` for malformed bytes.
pub fn decode_hash_by_pre_key(key: &[u8]) -> Option<(u64, u32, CladeHash)> {
    if key.len() != HASH_BY_PRE_KEY_LEN {
        return None;
    }
    Some((
        u64::from_be_bytes(key[..8].try_into().expect("length checked")),
        u32::from_be_bytes(key[8..12].try_into().expect("length checked")),
        CladeHash::from_slice(&key[12..])?,
    ))
}

/// Serialize a `hash_idx` key: `hash | tree_id | pre`. Sorts by hash first,
/// so all stored occurrences of one clade are a contiguous key range.
pub fn hash_idx_key(hash: CladeHash, tree_id: u64, pre: u32) -> [u8; HASH_IDX_KEY_LEN] {
    let mut key = [0u8; HASH_IDX_KEY_LEN];
    key[..16].copy_from_slice(&hash.0);
    key[16..24].copy_from_slice(&tree_id.to_be_bytes());
    key[24..].copy_from_slice(&pre.to_be_bytes());
    key
}

/// Inverse of [`hash_idx_key`]; `None` for malformed bytes.
pub fn decode_hash_idx_key(key: &[u8]) -> Option<(CladeHash, u64, u32)> {
    if key.len() != HASH_IDX_KEY_LEN {
        return None;
    }
    Some((
        CladeHash::from_slice(&key[..16])?,
        u64::from_be_bytes(key[16..24].try_into().expect("length checked")),
        u32::from_be_bytes(key[24..].try_into().expect("length checked")),
    ))
}

/// Inclusive lower bound of the `hash_idx` key range holding `hash`.
pub fn hash_idx_prefix(hash: CladeHash) -> [u8; CLADE_HASH_LEN] {
    hash.0
}

/// Exclusive upper bound of the `hash_idx` key range holding `hash` — the
/// numerically next hash. `None` when `hash` is all-ones (scan to the end).
pub fn hash_idx_range_end(hash: CladeHash) -> Option<[u8; CLADE_HASH_LEN]> {
    hash.to_u128().checked_add(1).map(|next| next.to_be_bytes())
}

/// One structural-sharing reference row of a cold tree: the bridged span
/// `[pre, end]` of `tree_id` is not materialized locally; its nodes live as
/// the span `[src_pre, src_end]` of `src_tree`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CladeRef {
    /// Logical pre-order rank of the bridged subtree's root in the cold tree.
    pub pre: u32,
    /// Logical end rank of the bridged subtree in the cold tree.
    pub end: u32,
    /// Pre-order rank of the bridge node's parent in the cold tree.
    pub parent_pre: u32,
    /// The tree physically holding the shared subtree.
    pub src_tree: u64,
    /// Pre-order rank of the shared subtree's root inside `src_tree`.
    pub src_pre: u32,
    /// End rank of the shared subtree inside `src_tree`.
    pub src_end: u32,
}

impl CladeRef {
    /// Serialize as a `clade_refs` key; the value slot carries
    /// `pack_span(src_pre, src_end)`.
    pub fn encode_key(&self, tree_id: u64) -> [u8; CLADE_REF_KEY_LEN] {
        let mut key = [0u8; CLADE_REF_KEY_LEN];
        key[..8].copy_from_slice(&tree_id.to_be_bytes());
        key[8..12].copy_from_slice(&self.pre.to_be_bytes());
        key[12..16].copy_from_slice(&self.end.to_be_bytes());
        key[16..20].copy_from_slice(&self.parent_pre.to_be_bytes());
        key[20..28].copy_from_slice(&self.src_tree.to_be_bytes());
        key[28..].copy_from_slice(&self.src_pre.to_be_bytes());
        key
    }

    /// Inverse of [`CladeRef::encode_key`] given the key and the packed
    /// value; `None` for malformed bytes.
    pub fn decode(key: &[u8], value: u64) -> Option<(u64, CladeRef)> {
        if key.len() != CLADE_REF_KEY_LEN {
            return None;
        }
        let u32_at =
            |i: usize| u32::from_be_bytes(key[i..i + 4].try_into().expect("length checked"));
        let (src_pre, src_end) = unpack_span(value);
        if src_pre != u32_at(28) {
            return None;
        }
        Some((
            u64::from_be_bytes(key[..8].try_into().expect("length checked")),
            CladeRef {
                pre: u32_at(8),
                end: u32_at(12),
                parent_pre: u32_at(16),
                src_tree: u64::from_be_bytes(key[20..28].try_into().expect("length checked")),
                src_pre,
                src_end,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::builder::{balanced_binary, caterpillar, figure1_tree};
    use phylo::Tree;

    #[test]
    fn leaf_hashes_depend_on_name_only() {
        assert_eq!(CladeHash::leaf(Some("Lla")), CladeHash::leaf(Some("Lla")));
        assert_ne!(CladeHash::leaf(Some("Lla")), CladeHash::leaf(Some("Llb")));
        assert_ne!(CladeHash::leaf(Some("Lla")), CladeHash::leaf(None));
        assert_eq!(CladeHash::leaf(None), CladeHash::leaf(None));
        // Length participates: a name is not confused with its zero-padded
        // extension.
        assert_ne!(CladeHash::leaf(Some("ab")), CladeHash::leaf(Some("ab\0")));
    }

    #[test]
    fn internal_hash_is_child_order_invariant() {
        let a = CladeHash::leaf(Some("a"));
        let b = CladeHash::leaf(Some("b"));
        let c = CladeHash::leaf(Some("c"));
        let mut fwd = [a, b, c];
        let mut rev = [c, b, a];
        let mut mid = [b, c, a];
        let h = CladeHash::internal(&mut fwd);
        assert_eq!(h, CladeHash::internal(&mut rev));
        assert_eq!(h, CladeHash::internal(&mut mid));
    }

    #[test]
    fn arity_participates() {
        let a = CladeHash::leaf(Some("a"));
        let b = CladeHash::leaf(Some("b"));
        // A unary wrapper differs from its child …
        let wrapped = CladeHash::internal(&mut [a]);
        assert_ne!(wrapped, a);
        // … and stacking wrappers keeps differing.
        assert_ne!(CladeHash::internal(&mut [wrapped]), wrapped);
        // Duplicated children (a multiset, not a set) are distinguished.
        assert_ne!(
            CladeHash::internal(&mut [a, b]),
            CladeHash::internal(&mut [a, a, b])
        );
    }

    #[test]
    fn tree_hashes_cover_every_node_and_root_is_stable() {
        let tree = figure1_tree();
        let hashes = tree_hashes(&tree);
        assert_eq!(hashes.len(), tree.node_count());
        let again = tree_hashes(&tree);
        assert_eq!(hashes, again, "hashing must be deterministic");
        assert_eq!(
            root_hash(&tree).unwrap(),
            hashes[tree.root_unchecked().index()]
        );
    }

    #[test]
    fn sibling_subtree_reorder_preserves_root_hash() {
        // Build (r (x a b) (y c d)) and its sibling-swapped twin
        // (r (y d c) (x b a)); same unordered topology, same hash.
        fn build(spec: &[(&str, &[&str])]) -> Tree {
            let mut tree = Tree::new();
            let root = tree.add_named_node("r");
            for (inner, leaves) in spec {
                let v = tree
                    .add_child(root, Some((*inner).into()), Some(1.0))
                    .unwrap();
                for leaf in *leaves {
                    tree.add_child(v, Some((*leaf).into()), Some(1.0)).unwrap();
                }
            }
            tree
        }
        let t1 = build(&[("x", &["a", "b"]), ("y", &["c", "d"])]);
        let t2 = build(&[("y", &["d", "c"]), ("x", &["b", "a"])]);
        assert_eq!(root_hash(&t1).unwrap(), root_hash(&t2).unwrap());
        // A leaf moved across the split is a different clade set.
        let t3 = build(&[("x", &["a", "c"]), ("y", &["b", "d"])]);
        assert_ne!(root_hash(&t1).unwrap(), root_hash(&t3).unwrap());
    }

    #[test]
    fn distinct_named_leaves_detects_problems() {
        let tree = balanced_binary(4, 1.0);
        assert!(distinct_named_leaves(&tree));
        let mut dup = Tree::new();
        let root = dup.add_node();
        dup.add_child(root, Some("same".into()), None).unwrap();
        dup.add_child(root, Some("same".into()), None).unwrap();
        assert!(!distinct_named_leaves(&dup));
        let mut anon = Tree::new();
        let root = anon.add_node();
        anon.add_child(root, None, None).unwrap();
        anon.add_child(root, Some("ok".into()), None).unwrap();
        assert!(!distinct_named_leaves(&anon));
    }

    #[test]
    fn span_packing_roundtrips() {
        for (pre, end) in [(0, 0), (1, 9), (u32::MAX - 1, u32::MAX)] {
            assert_eq!(unpack_span(pack_span(pre, end)), (pre, end));
        }
    }

    #[test]
    fn hash_by_pre_keys_roundtrip_and_sort_by_tree_then_pre() {
        let tree = caterpillar(20, 1.0);
        let hashes = tree_hashes(&tree);
        let mut keys: Vec<Vec<u8>> = hashes
            .iter()
            .enumerate()
            .map(|(pre, &h)| hash_by_pre_key(7, pre as u32, h).to_vec())
            .collect();
        for (pre, key) in keys.iter().enumerate() {
            let (tree_id, back_pre, hash) = decode_hash_by_pre_key(key).unwrap();
            assert_eq!((tree_id, back_pre as usize), (7, pre));
            assert_eq!(hash, hashes[pre]);
        }
        let sorted = keys.clone();
        keys.sort();
        assert_eq!(keys, sorted);
        assert!(decode_hash_by_pre_key(&keys[0][..20]).is_none());
    }

    #[test]
    fn hash_idx_keys_roundtrip_and_group_by_hash() {
        let h1 = CladeHash::leaf(Some("a"));
        let (tree_id, pre) = (3u64, 5u32);
        let key = hash_idx_key(h1, tree_id, pre);
        assert_eq!(decode_hash_idx_key(&key), Some((h1, tree_id, pre)));
        assert!(decode_hash_idx_key(&key[..20]).is_none());
        // The [prefix, range_end) window captures exactly this hash.
        let low = hash_idx_prefix(h1);
        let high = hash_idx_range_end(h1).unwrap();
        assert!(key.as_slice() >= low.as_slice());
        assert!(&key[..16] < high.as_slice());
        let other = hash_idx_key(CladeHash::leaf(Some("b")), tree_id, pre);
        let inside = (&other[..16] >= low.as_slice()) && (&other[..16] < high.as_slice());
        assert!(!inside, "a different hash must fall outside the window");
        // The all-ones hash has no successor: scan to the end instead.
        assert!(hash_idx_range_end(CladeHash([0xFF; 16])).is_none());
    }

    #[test]
    fn clade_ref_roundtrips() {
        let r = CladeRef {
            pre: 4,
            end: 12,
            parent_pre: 1,
            src_tree: 2,
            src_pre: 7,
            src_end: 15,
        };
        let key = r.encode_key(9);
        let value = pack_span(r.src_pre, r.src_end);
        assert_eq!(CladeRef::decode(&key, value), Some((9, r)));
        assert!(CladeRef::decode(&key[..16], value).is_none());
        // A value whose src_pre disagrees with the key is rejected.
        assert!(CladeRef::decode(&key, pack_span(8, 15)).is_none());
    }
}
