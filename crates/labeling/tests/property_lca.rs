//! Property-based cross-validation of every labeling scheme against the
//! reference parent-walking LCA on randomly generated trees.

use labeling::prelude::*;
use phylo::{NodeId, Tree};
use proptest::prelude::*;

/// Build a random tree from a shape vector: element `i` attaches node `i+1`
/// to parent `shape[i] % (i+1)`, which yields every possible rooted tree
/// topology over `n` nodes with positive probability.
fn tree_from_shape(shape: &[usize]) -> Tree {
    let mut tree = Tree::new();
    let mut ids = vec![tree.add_node()];
    for (i, &s) in shape.iter().enumerate() {
        let parent = ids[s % (i + 1)];
        let child = tree
            .add_child(parent, Some(format!("n{}", i + 1)), Some((s % 7) as f64 * 0.5 + 0.1))
            .expect("parent id is valid");
        ids.push(child);
    }
    tree
}

fn sample_pairs(tree: &Tree, count: usize, seed: usize) -> Vec<(NodeId, NodeId)> {
    let n = tree.node_count();
    (0..count)
        .map(|i| {
            let a = NodeId(((seed + i * 7919) % n) as u32);
            let b = NodeId(((seed / 3 + i * 104729) % n) as u32);
            (a, b)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_schemes_agree_with_reference(
        shape in prop::collection::vec(0usize..1000, 1..120),
        f in 2usize..10,
        seed in 0usize..10_000,
    ) {
        let tree = tree_from_shape(&shape);
        let pairs = sample_pairs(&tree, 40, seed);

        let flat = FlatDewey::build(&tree);
        let hier = HierarchicalDewey::build(&tree, f);
        let interval = IntervalLabels::build(&tree);
        let parent = ParentPointers::build(&tree);

        for &(a, b) in &pairs {
            let expected = tree.lca(a, b);
            prop_assert_eq!(flat.lca(a, b), expected, "flat-dewey lca({}, {})", a, b);
            prop_assert_eq!(hier.lca(a, b), expected, "hierarchical lca({}, {}) f={}", a, b, f);
            prop_assert_eq!(interval.lca(a, b), expected, "interval lca({}, {})", a, b);
            prop_assert_eq!(parent.lca(a, b), expected, "parent lca({}, {})", a, b);

            let expected_anc = tree.is_ancestor(a, b);
            prop_assert_eq!(flat.is_ancestor(a, b), expected_anc);
            prop_assert_eq!(hier.is_ancestor(a, b), expected_anc);
            prop_assert_eq!(interval.is_ancestor(a, b), expected_anc);
            prop_assert_eq!(parent.is_ancestor(a, b), expected_anc);
        }
    }

    #[test]
    fn hierarchical_labels_always_bounded(
        shape in prop::collection::vec(0usize..1000, 1..200),
        f in 2usize..12,
    ) {
        let tree = tree_from_shape(&shape);
        let hier = HierarchicalDewey::build(&tree, f);
        for node in tree.node_ids() {
            prop_assert!(hier.label(node).path.len() < f);
        }
        prop_assert!(hier.stats().max_bytes <= 4 + (f - 1) * 4);
    }

    #[test]
    fn frame_sources_are_parents_of_frame_roots(
        shape in prop::collection::vec(0usize..1000, 1..150),
        f in 2usize..8,
    ) {
        let tree = tree_from_shape(&shape);
        let hier = HierarchicalDewey::build(&tree, f);
        let layer0 = hier.layer(0);
        for fid in 0..layer0.frame_count() as u32 {
            let frame = layer0.frame(fid);
            match frame.source {
                Some(src) => {
                    prop_assert_eq!(tree.parent(NodeId(frame.root)), Some(NodeId(src)));
                }
                None => {
                    prop_assert_eq!(NodeId(frame.root), tree.root_unchecked());
                }
            }
        }
    }
}
