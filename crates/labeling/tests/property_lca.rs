//! Property-based cross-validation of every labeling scheme against the
//! reference parent-walking LCA on randomly generated trees.
//!
//! The harness draws many (tree shape, frame depth, query seed) cases from a
//! seeded generator — the offline stand-in for proptest — so failures are
//! reproducible from the printed case number.

use labeling::prelude::*;
use phylo::{NodeId, Tree};
use rand::prelude::*;

/// Build a random tree from a shape vector: element `i` attaches node `i+1`
/// to parent `shape[i] % (i+1)`, which yields every possible rooted tree
/// topology over `n` nodes with positive probability.
pub fn tree_from_shape(shape: &[usize]) -> Tree {
    let mut tree = Tree::new();
    let mut ids = vec![tree.add_node()];
    for (i, &s) in shape.iter().enumerate() {
        let parent = ids[s % (i + 1)];
        let child = tree
            .add_child(
                parent,
                Some(format!("n{}", i + 1)),
                Some((s % 7) as f64 * 0.5 + 0.1),
            )
            .expect("parent id is valid");
        ids.push(child);
    }
    tree
}

/// A random shape vector of `1..max_len` elements in `0..1000`.
pub fn random_shape(rng: &mut StdRng, max_len: usize) -> Vec<usize> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| rng.gen_range(0usize..1000)).collect()
}

fn sample_pairs(tree: &Tree, count: usize, seed: usize) -> Vec<(NodeId, NodeId)> {
    let n = tree.node_count();
    (0..count)
        .map(|i| {
            let a = NodeId(((seed + i * 7919) % n) as u32);
            let b = NodeId(((seed / 3 + i * 104729) % n) as u32);
            (a, b)
        })
        .collect()
}

#[test]
fn all_schemes_agree_with_reference() {
    let mut rng = StdRng::seed_from_u64(0xC1A0);
    for case in 0..64 {
        let shape = random_shape(&mut rng, 120);
        let f = rng.gen_range(2usize..10);
        let seed = rng.gen_range(0usize..10_000);
        let tree = tree_from_shape(&shape);
        let pairs = sample_pairs(&tree, 40, seed);

        let flat = FlatDewey::build(&tree);
        let hier = HierarchicalDewey::build(&tree, f);
        let interval = IntervalLabels::build(&tree);
        let parent = ParentPointers::build(&tree);

        for &(a, b) in &pairs {
            let expected = tree.lca(a, b);
            assert_eq!(
                flat.lca(a, b),
                expected,
                "case {case}: flat-dewey lca({a}, {b})"
            );
            assert_eq!(
                hier.lca(a, b),
                expected,
                "case {case}: hierarchical lca({a}, {b}) f={f}"
            );
            assert_eq!(
                interval.lca(a, b),
                expected,
                "case {case}: interval lca({a}, {b})"
            );
            assert_eq!(
                parent.lca(a, b),
                expected,
                "case {case}: parent lca({a}, {b})"
            );

            let expected_anc = tree.is_ancestor(a, b);
            assert_eq!(flat.is_ancestor(a, b), expected_anc, "case {case}");
            assert_eq!(hier.is_ancestor(a, b), expected_anc, "case {case}");
            assert_eq!(interval.is_ancestor(a, b), expected_anc, "case {case}");
            assert_eq!(parent.is_ancestor(a, b), expected_anc, "case {case}");
        }
    }
}

#[test]
fn hierarchical_labels_always_bounded() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for case in 0..64 {
        let shape = random_shape(&mut rng, 200);
        let f = rng.gen_range(2usize..12);
        let tree = tree_from_shape(&shape);
        let hier = HierarchicalDewey::build(&tree, f);
        for node in tree.node_ids() {
            assert!(
                hier.label(node).path.len() < f,
                "case {case}: label exceeds frame depth"
            );
        }
        assert!(hier.stats().max_bytes <= 4 + (f - 1) * 4, "case {case}");
    }
}

#[test]
fn frame_sources_are_parents_of_frame_roots() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for case in 0..64 {
        let shape = random_shape(&mut rng, 150);
        let f = rng.gen_range(2usize..8);
        let tree = tree_from_shape(&shape);
        let hier = HierarchicalDewey::build(&tree, f);
        let layer0 = hier.layer(0);
        for fid in 0..layer0.frame_count() as u32 {
            let frame = layer0.frame(fid);
            match frame.source {
                Some(src) => {
                    assert_eq!(
                        tree.parent(NodeId(frame.root)),
                        Some(NodeId(src)),
                        "case {case}: frame {fid}"
                    );
                }
                None => {
                    assert_eq!(NodeId(frame.root), tree.root_unchecked(), "case {case}");
                }
            }
        }
    }
}
