//! Nucleotide substitution models and sequence evolution along a tree.
//!
//! "The evolution of a bio-molecular sequence is simulated using the tree as
//! a guide" (§1). A root sequence is drawn from the model's equilibrium base
//! frequencies and mutated along every branch according to the model's
//! transition-probability matrix `P(t) = exp(Q·t)`, where `t` is the branch
//! length times the overall substitution rate.
//!
//! Models:
//!
//! * **JC69** — Jukes–Cantor: equal base frequencies, single rate (closed
//!   form).
//! * **K2P** — Kimura two-parameter: transitions vs transversions via κ
//!   (closed form).
//! * **F81** — Felsenstein 1981: arbitrary base frequencies (closed form).
//! * **HKY85** — Hasegawa–Kishino–Yano: κ *and* arbitrary base frequencies
//!   (computed by numerically exponentiating the rate matrix).
//!
//! Bases are indexed A=0, C=1, G=2, T=3 throughout.

// Index loops over small fixed matrices mirror the textbook formulas;
// iterator adaptors would obscure them.
#![allow(clippy::needless_range_loop)]

use phylo::traverse::Traverse;
use phylo::{NodeId, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Nucleotide alphabet used by the simulator.
pub const BASES: [char; 4] = ['A', 'C', 'G', 'T'];

/// A 4×4 matrix of probabilities or rates.
pub type Matrix4 = [[f64; 4]; 4];

/// Substitution model selection.
#[derive(Debug, Clone, PartialEq)]
pub enum Model {
    /// Jukes–Cantor 1969 with overall substitution rate `rate`.
    Jc69 {
        /// Expected substitutions per site per unit branch length.
        rate: f64,
    },
    /// Kimura 1980 two-parameter model.
    K2p {
        /// Expected substitutions per site per unit branch length.
        rate: f64,
        /// Transition/transversion rate ratio κ (κ = 1 reduces to JC69).
        kappa: f64,
    },
    /// Felsenstein 1981: unequal base frequencies, one exchange rate.
    F81 {
        /// Expected substitutions per site per unit branch length.
        rate: f64,
        /// Equilibrium frequencies for A, C, G, T (must sum to 1).
        freqs: [f64; 4],
    },
    /// Hasegawa–Kishino–Yano 1985: κ plus unequal base frequencies.
    Hky85 {
        /// Expected substitutions per site per unit branch length.
        rate: f64,
        /// Transition/transversion rate ratio κ.
        kappa: f64,
        /// Equilibrium frequencies for A, C, G, T (must sum to 1).
        freqs: [f64; 4],
    },
}

impl Default for Model {
    fn default() -> Self {
        Model::Jc69 { rate: 1.0 }
    }
}

impl Model {
    /// Short identifier used in logs and experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Model::Jc69 { .. } => "JC69",
            Model::K2p { .. } => "K2P",
            Model::F81 { .. } => "F81",
            Model::Hky85 { .. } => "HKY85",
        }
    }

    /// Equilibrium base frequencies.
    pub fn equilibrium(&self) -> [f64; 4] {
        match self {
            Model::Jc69 { .. } | Model::K2p { .. } => [0.25; 4],
            Model::F81 { freqs, .. } | Model::Hky85 { freqs, .. } => *freqs,
        }
    }

    /// Transition probability matrix for a branch of length `t`.
    pub fn transition_probs(&self, t: f64) -> Matrix4 {
        let t = t.max(0.0);
        match self {
            Model::Jc69 { rate } => {
                let d = rate * t;
                let e = (-4.0 / 3.0 * d).exp();
                let same = 0.25 + 0.75 * e;
                let diff = 0.25 - 0.25 * e;
                let mut p = [[diff; 4]; 4];
                for (i, row) in p.iter_mut().enumerate() {
                    row[i] = same;
                }
                p
            }
            Model::K2p { rate, kappa } => {
                // Rates: transitions α, transversions β with α = κβ and total
                // rate α + 2β = rate  ⇒  β = rate / (κ + 2).
                let beta = rate / (kappa + 2.0);
                let alpha = kappa * beta;
                let e1 = (-4.0 * beta * t).exp();
                let e2 = (-2.0 * (alpha + beta) * t).exp();
                let p_same = 0.25 + 0.25 * e1 + 0.5 * e2;
                let p_transition = 0.25 + 0.25 * e1 - 0.5 * e2;
                let p_transversion = 0.25 - 0.25 * e1;
                let mut p = [[0.0; 4]; 4];
                for i in 0..4 {
                    for j in 0..4 {
                        p[i][j] = if i == j {
                            p_same
                        } else if is_transition(i, j) {
                            p_transition
                        } else {
                            p_transversion
                        };
                    }
                }
                p
            }
            Model::F81 { rate, freqs } => {
                // Closed form: P_ij(t) = e^{-βt} δ_ij + (1 - e^{-βt}) π_j,
                // with β chosen so the expected rate is `rate`.
                let sum_sq: f64 = freqs.iter().map(|f| f * f).sum();
                let beta = rate / (1.0 - sum_sq);
                let e = (-beta * t).exp();
                let mut p = [[0.0; 4]; 4];
                for i in 0..4 {
                    for j in 0..4 {
                        p[i][j] = (1.0 - e) * freqs[j] + if i == j { e } else { 0.0 };
                    }
                }
                p
            }
            Model::Hky85 { rate, kappa, freqs } => {
                let q = hky_rate_matrix(*rate, *kappa, freqs);
                matrix_exp(&q, t)
            }
        }
    }
}

fn is_transition(i: usize, j: usize) -> bool {
    // A<->G (0,2) and C<->T (1,3) are transitions.
    matches!((i, j), (0, 2) | (2, 0) | (1, 3) | (3, 1))
}

/// Build the HKY85 rate matrix, scaled so the expected substitution rate at
/// equilibrium equals `rate`.
fn hky_rate_matrix(rate: f64, kappa: f64, freqs: &[f64; 4]) -> Matrix4 {
    let mut q = [[0.0f64; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            if i == j {
                continue;
            }
            let factor = if is_transition(i, j) { kappa } else { 1.0 };
            q[i][j] = factor * freqs[j];
        }
    }
    // Diagonal = -(row sum); compute expected rate and normalize.
    let mut expected = 0.0;
    for i in 0..4 {
        let row_sum: f64 = (0..4).filter(|&j| j != i).map(|j| q[i][j]).sum();
        q[i][i] = -row_sum;
        expected += freqs[i] * row_sum;
    }
    let scale = rate / expected;
    for row in q.iter_mut() {
        for cell in row.iter_mut() {
            *cell *= scale;
        }
    }
    q
}

/// Numerically compute `exp(Q·t)` by scaling and squaring with a Taylor
/// expansion of the scaled matrix. Accurate to well below simulation noise
/// for the branch lengths used here.
fn matrix_exp(q: &Matrix4, t: f64) -> Matrix4 {
    // Scale so the largest |entry·t| is small, then square back.
    let max_entry = q.iter().flatten().fold(0.0f64, |m, &v| m.max(v.abs()));
    let scaled_norm = max_entry * t;
    let squarings = if scaled_norm > 0.25 {
        (scaled_norm / 0.25).log2().ceil() as u32
    } else {
        0
    };
    let factor = t / f64::from(1u32 << squarings.min(31));
    // Taylor series exp(A) ≈ Σ A^k / k! for the scaled matrix A = Q·factor.
    let a = scale(q, factor);
    let mut result = identity();
    let mut term = identity();
    for k in 1..=12 {
        term = mat_mul(&term, &a);
        term = scale(&term, 1.0 / k as f64);
        result = mat_add(&result, &term);
    }
    for _ in 0..squarings.min(31) {
        result = mat_mul(&result, &result);
    }
    // Clamp tiny negative values introduced by floating error and renormalize
    // each row to sum to 1.
    for row in result.iter_mut() {
        let mut sum = 0.0;
        for cell in row.iter_mut() {
            if *cell < 0.0 {
                *cell = 0.0;
            }
            sum += *cell;
        }
        if sum > 0.0 {
            for cell in row.iter_mut() {
                *cell /= sum;
            }
        }
    }
    result
}

fn identity() -> Matrix4 {
    let mut m = [[0.0; 4]; 4];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    m
}

fn mat_mul(a: &Matrix4, b: &Matrix4) -> Matrix4 {
    let mut out = [[0.0; 4]; 4];
    for i in 0..4 {
        for k in 0..4 {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..4 {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

fn mat_add(a: &Matrix4, b: &Matrix4) -> Matrix4 {
    let mut out = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            out[i][j] = a[i][j] + b[i][j];
        }
    }
    out
}

fn scale(a: &Matrix4, s: f64) -> Matrix4 {
    let mut out = *a;
    for row in out.iter_mut() {
        for cell in row.iter_mut() {
            *cell *= s;
        }
    }
    out
}

/// Evolve sequences of `length` sites along `tree` under `model`.
///
/// Returns a map from **named leaf** to its sequence. Interior sequences are
/// generated but discarded (Crimson's Species Repository only stores species
/// data for taxa).
pub fn evolve_sequences(
    tree: &Tree,
    model: &Model,
    length: usize,
    seed: u64,
) -> HashMap<String, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = HashMap::new();
    let Some(root) = tree.root() else { return out };

    let equilibrium = model.equilibrium();
    let root_seq: Vec<u8> = (0..length)
        .map(|_| sample_categorical(&mut rng, &equilibrium))
        .collect();

    // Iterative DFS carrying each node's sequence; sequences for finished
    // subtrees are dropped as soon as possible to bound memory.
    let mut sequences: HashMap<NodeId, Vec<u8>> = HashMap::new();
    sequences.insert(root, root_seq);
    for node in tree.preorder() {
        let seq = sequences
            .get(&node)
            .expect("parent sequence present in pre-order")
            .clone();
        if tree.is_leaf(node) {
            if let Some(name) = tree.name(node) {
                out.insert(name.to_string(), bases_to_string(&seq));
            }
            sequences.remove(&node);
            continue;
        }
        for &child in tree.children(node) {
            let t = tree.branch_length(child).unwrap_or(0.0);
            let p = model.transition_probs(t);
            let child_seq: Vec<u8> = seq
                .iter()
                .map(|&b| sample_row(&mut rng, &p[b as usize]))
                .collect();
            sequences.insert(child, child_seq);
        }
        sequences.remove(&node);
    }
    out
}

fn sample_categorical(rng: &mut StdRng, probs: &[f64; 4]) -> u8 {
    sample_row(rng, probs)
}

fn sample_row(rng: &mut StdRng, probs: &[f64; 4]) -> u8 {
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, p) in probs.iter().enumerate() {
        acc += p;
        if x < acc {
            return i as u8;
        }
    }
    3
}

fn bases_to_string(seq: &[u8]) -> String {
    seq.iter().map(|&b| BASES[b as usize]).collect()
}

/// Proportion of differing sites between two equal-length sequences — the
/// raw p-distance used by the reconstruction crate's distance estimators.
pub fn p_distance(a: &str, b: &str) -> f64 {
    assert_eq!(a.len(), b.len(), "sequences must be aligned (equal length)");
    if a.is_empty() {
        return 0.0;
    }
    let diffs = a.bytes().zip(b.bytes()).filter(|(x, y)| x != y).count();
    diffs as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::birth_death::yule_tree;
    use phylo::builder::figure1_tree;

    fn rows_sum_to_one(p: &Matrix4) {
        for row in p {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row sums to {sum}");
            for &cell in row {
                assert!((-1e-12..=1.0 + 1e-12).contains(&cell));
            }
        }
    }

    #[test]
    fn jc69_matrix_properties() {
        let m = Model::Jc69 { rate: 1.0 };
        for t in [0.0, 0.01, 0.5, 5.0] {
            let p = m.transition_probs(t);
            rows_sum_to_one(&p);
        }
        // t = 0 is the identity.
        let p0 = m.transition_probs(0.0);
        for i in 0..4 {
            assert!((p0[i][i] - 1.0).abs() < 1e-12);
        }
        // t → ∞ approaches uniform 0.25.
        let pinf = m.transition_probs(1e6);
        for row in pinf {
            for cell in row {
                assert!((cell - 0.25).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn k2p_reduces_to_jc69_when_kappa_is_one() {
        let jc = Model::Jc69 { rate: 1.0 };
        let k2p = Model::K2p {
            rate: 1.0,
            kappa: 1.0,
        };
        for t in [0.05, 0.3, 2.0] {
            let a = jc.transition_probs(t);
            let b = k2p.transition_probs(t);
            for i in 0..4 {
                for j in 0..4 {
                    assert!((a[i][j] - b[i][j]).abs() < 1e-9, "t={t} i={i} j={j}");
                }
            }
        }
    }

    #[test]
    fn k2p_transitions_more_likely_than_transversions() {
        let m = Model::K2p {
            rate: 1.0,
            kappa: 4.0,
        };
        let p = m.transition_probs(0.2);
        // A -> G (transition) vs A -> C (transversion)
        assert!(p[0][2] > p[0][1]);
        rows_sum_to_one(&p);
    }

    #[test]
    fn f81_stationary_distribution_preserved() {
        let freqs = [0.4, 0.3, 0.2, 0.1];
        let m = Model::F81 { rate: 1.0, freqs };
        let p = m.transition_probs(0.7);
        rows_sum_to_one(&p);
        // π P = π
        for j in 0..4 {
            let out: f64 = (0..4).map(|i| freqs[i] * p[i][j]).sum();
            assert!((out - freqs[j]).abs() < 1e-9);
        }
        // Long branches converge to the equilibrium regardless of start.
        let pinf = m.transition_probs(1e6);
        for i in 0..4 {
            for j in 0..4 {
                assert!((pinf[i][j] - freqs[j]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn hky85_matrix_properties() {
        let freqs = [0.35, 0.15, 0.25, 0.25];
        let m = Model::Hky85 {
            rate: 1.0,
            kappa: 3.0,
            freqs,
        };
        for t in [0.0, 0.1, 1.0, 10.0] {
            let p = m.transition_probs(t);
            rows_sum_to_one(&p);
        }
        // Stationarity: π P(t) = π.
        let p = m.transition_probs(0.9);
        for j in 0..4 {
            let out: f64 = (0..4).map(|i| freqs[i] * p[i][j]).sum();
            assert!(
                (out - freqs[j]).abs() < 1e-6,
                "column {j}: {out} vs {}",
                freqs[j]
            );
        }
        // κ > 1 favours transitions.
        assert!(p[0][2] > p[0][1]);
    }

    #[test]
    fn hky85_reduces_to_f81_when_kappa_is_one() {
        let freqs = [0.4, 0.3, 0.2, 0.1];
        let f81 = Model::F81 { rate: 1.0, freqs };
        let hky = Model::Hky85 {
            rate: 1.0,
            kappa: 1.0,
            freqs,
        };
        for t in [0.1, 0.6] {
            let a = f81.transition_probs(t);
            let b = hky.transition_probs(t);
            for i in 0..4 {
                for j in 0..4 {
                    assert!(
                        (a[i][j] - b[i][j]).abs() < 1e-4,
                        "t={t} i={i} j={j}: {} vs {}",
                        a[i][j],
                        b[i][j]
                    );
                }
            }
        }
    }

    #[test]
    fn evolve_produces_sequences_for_every_named_leaf() {
        let tree = figure1_tree();
        let seqs = evolve_sequences(&tree, &Model::default(), 100, 42);
        assert_eq!(seqs.len(), 5);
        for name in ["Bha", "Lla", "Spy", "Syn", "Bsu"] {
            assert_eq!(seqs[name].len(), 100);
            assert!(seqs[name].chars().all(|c| "ACGT".contains(c)));
        }
    }

    #[test]
    fn evolution_is_deterministic_per_seed() {
        let tree = yule_tree(16, 1.0, 1);
        let a = evolve_sequences(&tree, &Model::default(), 50, 7);
        let b = evolve_sequences(&tree, &Model::default(), 50, 7);
        let c = evolve_sequences(&tree, &Model::default(), 50, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn closely_related_taxa_have_more_similar_sequences() {
        // On the Figure 1 tree, Lla and Spy (patristic distance 2) should on
        // average be more similar than Lla and Syn (patristic distance 6.5)
        // for a moderate rate. Use a long sequence to tame variance.
        let tree = figure1_tree();
        let seqs = evolve_sequences(&tree, &Model::Jc69 { rate: 0.15 }, 4000, 99);
        let close = p_distance(&seqs["Lla"], &seqs["Spy"]);
        let far = p_distance(&seqs["Lla"], &seqs["Syn"]);
        assert!(close < far, "close={close} far={far}");
    }

    #[test]
    fn zero_length_sequences() {
        let tree = figure1_tree();
        let seqs = evolve_sequences(&tree, &Model::default(), 0, 1);
        assert_eq!(seqs.len(), 5);
        assert!(seqs.values().all(|s| s.is_empty()));
        assert_eq!(p_distance("", ""), 0.0);
    }

    #[test]
    fn p_distance_basics() {
        assert_eq!(p_distance("ACGT", "ACGT"), 0.0);
        assert_eq!(p_distance("AAAA", "TTTT"), 1.0);
        assert!((p_distance("AAAA", "AATT") - 0.5).abs() < 1e-12);
    }
}
