//! # crimson-simulation — gold-standard simulation trees and sequence data
//!
//! The CIPRes modeling effort the paper supports generates "very large tree
//! models and very complex sequence evolution models" that act as a *gold
//! standard* against which reconstruction algorithms are benchmarked. The
//! curated CIPRes trees themselves are not available, so this crate is the
//! substitution (see DESIGN.md): stochastic tree generators and standard
//! molecular-evolution models producing trees and alignments with the same
//! structural properties (depth, size, branch-length distribution, species
//! data volume) the real gold standards have.
//!
//! Components:
//!
//! * [`birth_death`] — Yule (pure-birth) and birth–death tree generators with
//!   exponential waiting times, plus extinct-lineage pruning;
//! * [`seqevo`] — nucleotide substitution models (JC69, K2P, F81, HKY85) and
//!   simulation of sequence evolution along a tree;
//! * [`gold`] — the [`gold::GoldStandard`] builder tying both together and
//!   exporting NEXUS documents that the Crimson loader ingests.
//!
//! ```
//! use simulation::gold::GoldStandardBuilder;
//!
//! let gold = GoldStandardBuilder::new()
//!     .leaves(32)
//!     .sequence_length(200)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! assert_eq!(gold.tree.leaf_count(), 32);
//! assert_eq!(gold.sequences.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod birth_death;
pub mod gold;
pub mod seqevo;

pub use birth_death::{birth_death_tree, yule_tree, BirthDeathConfig};
pub use gold::{GoldStandard, GoldStandardBuilder};
pub use seqevo::{evolve_sequences, Model};
