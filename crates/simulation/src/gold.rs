//! Gold-standard construction: a simulated tree plus evolved species data.
//!
//! A [`GoldStandard`] is the synthetic stand-in for the curated CIPRes
//! simulation trees: a (possibly very large) phylogeny whose true topology
//! and branch lengths are known, together with sequences evolved along it.
//! The Crimson loader ingests it (directly or via NEXUS) and the Benchmark
//! Manager samples it to evaluate reconstruction algorithms.

use crate::birth_death::{birth_death_tree, BirthDeathConfig};
use crate::seqevo::{evolve_sequences, Model};
use phylo::nexus::NexusDocument;
use phylo::Tree;
use std::collections::HashMap;

/// A simulated "gold standard": the true tree and the species data evolved
/// along it.
#[derive(Debug, Clone)]
pub struct GoldStandard {
    /// The true phylogeny.
    pub tree: Tree,
    /// Aligned sequences per (leaf) taxon.
    pub sequences: HashMap<String, String>,
    /// The substitution model used.
    pub model: Model,
    /// The seed everything was generated from.
    pub seed: u64,
}

impl GoldStandard {
    /// Export as a NEXUS document (TAXA + DATA + TREES blocks) — the format
    /// Crimson's GUI loads and emits.
    pub fn to_nexus(&self) -> NexusDocument {
        let mut doc = NexusDocument::new();
        // Keep the taxa in tree pre-order so the document is deterministic.
        for name in self.tree.leaf_names() {
            if let Some(seq) = self.sequences.get(&name) {
                doc.push_sequence(name, seq.clone());
            } else {
                doc.taxa.push(name);
            }
        }
        doc.datatype = Some("DNA".to_string());
        doc.push_tree("gold_standard", self.tree.clone());
        doc
    }

    /// Number of taxa.
    pub fn taxon_count(&self) -> usize {
        self.tree.leaf_count()
    }

    /// Alignment length (0 when no sequences were generated).
    pub fn sequence_length(&self) -> usize {
        self.sequences.values().next().map_or(0, |s| s.len())
    }
}

/// Errors from gold-standard construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldError {
    /// Fewer than two leaves requested.
    TooFewLeaves(usize),
    /// A model parameter was invalid (message explains which).
    InvalidModel(String),
}

impl std::fmt::Display for GoldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GoldError::TooFewLeaves(n) => write!(f, "need at least 2 leaves, got {n}"),
            GoldError::InvalidModel(m) => write!(f, "invalid model: {m}"),
        }
    }
}

impl std::error::Error for GoldError {}

/// Builder for [`GoldStandard`]s.
#[derive(Debug, Clone)]
pub struct GoldStandardBuilder {
    leaves: usize,
    birth_rate: f64,
    death_rate: f64,
    sequence_length: usize,
    model: Model,
    seed: u64,
    taxon_prefix: String,
}

impl Default for GoldStandardBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GoldStandardBuilder {
    /// Start with the defaults: 128 taxa, pure-birth tree, JC69, 500 sites.
    pub fn new() -> Self {
        GoldStandardBuilder {
            leaves: 128,
            birth_rate: 1.0,
            death_rate: 0.0,
            sequence_length: 500,
            model: Model::default(),
            seed: 0,
            taxon_prefix: "S".to_string(),
        }
    }

    /// Number of extant taxa in the tree.
    pub fn leaves(mut self, n: usize) -> Self {
        self.leaves = n;
        self
    }

    /// Speciation rate λ.
    pub fn birth_rate(mut self, rate: f64) -> Self {
        self.birth_rate = rate;
        self
    }

    /// Extinction rate μ (0 for a pure-birth tree).
    pub fn death_rate(mut self, rate: f64) -> Self {
        self.death_rate = rate;
        self
    }

    /// Alignment length in sites (0 disables sequence simulation).
    pub fn sequence_length(mut self, sites: usize) -> Self {
        self.sequence_length = sites;
        self
    }

    /// Substitution model.
    pub fn model(mut self, model: Model) -> Self {
        self.model = model;
        self
    }

    /// RNG seed (tree and sequences both derive from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Prefix for generated taxon names.
    pub fn taxon_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.taxon_prefix = prefix.into();
        self
    }

    /// Generate the gold standard.
    pub fn build(self) -> Result<GoldStandard, GoldError> {
        if self.leaves < 2 {
            return Err(GoldError::TooFewLeaves(self.leaves));
        }
        validate_model(&self.model)?;
        let config = BirthDeathConfig {
            leaves: self.leaves,
            birth_rate: self.birth_rate,
            death_rate: self.death_rate,
            prune_extinct: true,
            taxon_prefix: self.taxon_prefix.clone(),
            seed: self.seed,
        };
        let tree = birth_death_tree(&config);
        let sequences = if self.sequence_length > 0 {
            evolve_sequences(
                &tree,
                &self.model,
                self.sequence_length,
                self.seed ^ 0xA5A5_5A5A,
            )
        } else {
            HashMap::new()
        };
        Ok(GoldStandard {
            tree,
            sequences,
            model: self.model,
            seed: self.seed,
        })
    }
}

fn validate_model(model: &Model) -> Result<(), GoldError> {
    let check_rate = |rate: f64| {
        if rate <= 0.0 {
            Err(GoldError::InvalidModel(format!(
                "rate must be positive, got {rate}"
            )))
        } else {
            Ok(())
        }
    };
    let check_freqs = |freqs: &[f64; 4]| {
        let sum: f64 = freqs.iter().sum();
        if freqs.iter().any(|&f| f <= 0.0) || (sum - 1.0).abs() > 1e-6 {
            Err(GoldError::InvalidModel(format!(
                "base frequencies must be positive and sum to 1, got {freqs:?}"
            )))
        } else {
            Ok(())
        }
    };
    match model {
        Model::Jc69 { rate } => check_rate(*rate),
        Model::K2p { rate, kappa } => {
            check_rate(*rate)?;
            if *kappa <= 0.0 {
                return Err(GoldError::InvalidModel(
                    "kappa must be positive".to_string(),
                ));
            }
            Ok(())
        }
        Model::F81 { rate, freqs } => {
            check_rate(*rate)?;
            check_freqs(freqs)
        }
        Model::Hky85 { rate, kappa, freqs } => {
            check_rate(*rate)?;
            if *kappa <= 0.0 {
                return Err(GoldError::InvalidModel(
                    "kappa must be positive".to_string(),
                ));
            }
            check_freqs(freqs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build() {
        let gold = GoldStandardBuilder::new()
            .leaves(32)
            .sequence_length(100)
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(gold.taxon_count(), 32);
        assert_eq!(gold.sequences.len(), 32);
        assert_eq!(gold.sequence_length(), 100);
        assert_eq!(gold.model.name(), "JC69");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GoldStandardBuilder::new()
            .leaves(16)
            .sequence_length(64)
            .seed(5)
            .build()
            .unwrap();
        let b = GoldStandardBuilder::new()
            .leaves(16)
            .sequence_length(64)
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(phylo::newick::write(&a.tree), phylo::newick::write(&b.tree));
        assert_eq!(a.sequences, b.sequences);
    }

    #[test]
    fn no_sequences_when_length_zero() {
        let gold = GoldStandardBuilder::new()
            .leaves(8)
            .sequence_length(0)
            .build()
            .unwrap();
        assert!(gold.sequences.is_empty());
        assert_eq!(gold.sequence_length(), 0);
    }

    #[test]
    fn birth_death_gold_standard() {
        let gold = GoldStandardBuilder::new()
            .leaves(64)
            .birth_rate(1.0)
            .death_rate(0.3)
            .sequence_length(50)
            .model(Model::K2p {
                rate: 0.5,
                kappa: 2.0,
            })
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(gold.taxon_count(), 64);
        assert_eq!(gold.model.name(), "K2P");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(matches!(
            GoldStandardBuilder::new().leaves(1).build(),
            Err(GoldError::TooFewLeaves(1))
        ));
        assert!(GoldStandardBuilder::new()
            .leaves(8)
            .model(Model::Jc69 { rate: 0.0 })
            .build()
            .is_err());
        assert!(GoldStandardBuilder::new()
            .leaves(8)
            .model(Model::Hky85 {
                rate: 1.0,
                kappa: 2.0,
                freqs: [0.5, 0.5, 0.2, 0.2]
            })
            .build()
            .is_err());
        assert!(GoldStandardBuilder::new()
            .leaves(8)
            .model(Model::K2p {
                rate: 1.0,
                kappa: -1.0
            })
            .build()
            .is_err());
    }

    #[test]
    fn nexus_export_roundtrips_through_parser() {
        let gold = GoldStandardBuilder::new()
            .leaves(12)
            .sequence_length(40)
            .seed(3)
            .build()
            .unwrap();
        let doc = gold.to_nexus();
        let text = phylo::nexus::write(&doc);
        let parsed = phylo::nexus::parse(&text).unwrap();
        assert_eq!(parsed.trees.len(), 1);
        assert_eq!(parsed.trees[0].name, "gold_standard");
        assert_eq!(parsed.sequences.len(), 12);
        assert_eq!(parsed.trees[0].tree.leaf_count(), 12);
    }

    #[test]
    fn custom_taxon_prefix_propagates() {
        let gold = GoldStandardBuilder::new()
            .leaves(6)
            .sequence_length(10)
            .taxon_prefix("cipres_")
            .build()
            .unwrap();
        for name in gold.sequences.keys() {
            assert!(name.starts_with("cipres_"));
        }
    }
}
