//! Experiment E3 — label size and LCA latency of the labeling schemes on
//! deep trees, including the frame-depth (`f`) ablation.
//!
//! Paper claim: flat Dewey labels grow with depth and "may become large
//! enough to hurt query performance"; the hierarchical scheme bounds every
//! label by the constant `f`. This bench prints the label-size table and
//! measures LCA latency per scheme as the tree gets deeper.

use crimson_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use labeling::prelude::*;
use phylo::{NodeId, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Depths at which every scheme (including flat Dewey) is materialized. Flat
/// Dewey labels need Θ(depth) space per node, so the deepest setting is kept
/// at 10 000; the 100 000-level point is reported for the bounded schemes
/// only and flat Dewey's size is extrapolated analytically (that blow-up *is*
/// the paper's motivation).
const DEPTHS: [usize; 3] = [100, 1_000, 10_000];
const DEEP_ONLY: usize = 100_000;
const FRAME_DEPTHS: [usize; 5] = [2, 4, 8, 16, 32];

fn query_pairs(tree: &Tree, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = tree.node_count() as u32;
    (0..count)
        .map(|_| (NodeId(rng.gen_range(0..n)), NodeId(rng.gen_range(0..n))))
        .collect()
}

/// Print the E3 label-size table (bytes per label vs depth, per scheme).
fn print_label_size_table() {
    workloads::print_table(
        "E3a: label size vs tree depth (caterpillar trees)",
        "depth      scheme               max_label_B   mean_label_B   total_MB",
    );
    for &depth in &DEPTHS {
        let tree = workloads::deep_tree(depth);
        let schemes: Vec<(String, LabelStats)> = vec![
            ("flat-dewey".to_string(), FlatDewey::build(&tree).stats()),
            (
                "hierarchical(f=16)".to_string(),
                HierarchicalDewey::build(&tree, 16).stats(),
            ),
            ("interval".to_string(), IntervalLabels::build(&tree).stats()),
            (
                "parent-pointer".to_string(),
                ParentPointers::build(&tree).stats(),
            ),
        ];
        for (name, stats) in schemes {
            println!(
                "{:<10} {:<20} {:>11} {:>14.1} {:>10.3}",
                depth,
                name,
                stats.max_bytes,
                stats.mean_bytes,
                stats.total_bytes as f64 / (1024.0 * 1024.0)
            );
        }
    }
    // The 100 000-level point: bounded schemes measured, flat Dewey
    // extrapolated (a label per node of Θ(depth) components would need tens
    // of gigabytes — the blow-up the hierarchical scheme exists to avoid).
    {
        let tree = workloads::deep_tree(DEEP_ONLY);
        let nodes = tree.node_count() as f64;
        let analytic_total = nodes * (DEEP_ONLY as f64 / 2.0) * 4.0;
        println!(
            "{:<10} {:<20} {:>11} {:>14.1} {:>10.3}  (analytic, not built)",
            DEEP_ONLY,
            "flat-dewey",
            DEEP_ONLY * 4,
            DEEP_ONLY as f64 / 2.0 * 4.0,
            analytic_total / (1024.0 * 1024.0)
        );
        for (name, stats) in [
            (
                "hierarchical(f=16)",
                HierarchicalDewey::build(&tree, 16).stats(),
            ),
            ("interval", IntervalLabels::build(&tree).stats()),
            ("parent-pointer", ParentPointers::build(&tree).stats()),
        ] {
            println!(
                "{:<10} {:<20} {:>11} {:>14.1} {:>10.3}",
                DEEP_ONLY,
                name,
                stats.max_bytes,
                stats.mean_bytes,
                stats.total_bytes as f64 / (1024.0 * 1024.0)
            );
        }
    }

    workloads::print_table(
        "E3b: frame-depth ablation (depth 10 000 caterpillar)",
        "f        max_label_B   layers   frames",
    );
    let tree = workloads::deep_tree(10_000);
    for &f in &FRAME_DEPTHS {
        let hier = HierarchicalDewey::build(&tree, f);
        println!(
            "{:<8} {:>11} {:>8} {:>8}",
            f,
            hier.stats().max_bytes,
            hier.layer_count(),
            hier.total_frames()
        );
    }
}

fn bench_lca_by_scheme(c: &mut Criterion) {
    print_label_size_table();

    let mut group = c.benchmark_group("E3_lca_latency");
    for &depth in &[1_000usize, 10_000, DEEP_ONLY] {
        let tree = workloads::deep_tree(depth);
        let pairs = query_pairs(&tree, 256, 7);
        // Flat Dewey is only materialized up to depth 10 000 (see above).
        let flat = (depth <= 10_000).then(|| FlatDewey::build(&tree));
        let hier = HierarchicalDewey::build(&tree, 16);
        let interval = IntervalLabels::build(&tree);
        let parent = ParentPointers::build(&tree);

        if let Some(flat) = &flat {
            group.bench_with_input(BenchmarkId::new("flat-dewey", depth), &pairs, |b, pairs| {
                b.iter(|| {
                    for &(x, y) in pairs {
                        black_box(flat.lca(x, y));
                    }
                })
            });
        }
        group.bench_with_input(
            BenchmarkId::new("hierarchical-f16", depth),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    for &(x, y) in pairs {
                        black_box(hier.lca(x, y));
                    }
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("interval", depth), &pairs, |b, pairs| {
            b.iter(|| {
                for &(x, y) in pairs {
                    black_box(interval.lca(x, y));
                }
            })
        });
        group.bench_with_input(
            BenchmarkId::new("parent-pointer", depth),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    for &(x, y) in pairs {
                        black_box(parent.lca(x, y));
                    }
                })
            },
        );
    }
    group.finish();

    // Frame-depth ablation on query latency.
    let mut group = c.benchmark_group("E3_frame_depth_ablation");
    let tree = workloads::deep_tree(10_000);
    let pairs = query_pairs(&tree, 256, 11);
    for &f in &FRAME_DEPTHS {
        let hier = HierarchicalDewey::build(&tree, f);
        group.bench_with_input(BenchmarkId::from_parameter(f), &pairs, |b, pairs| {
            b.iter(|| {
                for &(x, y) in pairs {
                    black_box(hier.lca(x, y));
                }
            })
        });
    }
    group.finish();
}

fn bench_build_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_index_build");
    let tree = workloads::deep_tree(10_000);
    group.bench_function("flat-dewey", |b| {
        b.iter(|| black_box(FlatDewey::build(&tree)))
    });
    group.bench_function("hierarchical-f16", |b| {
        b.iter(|| black_box(HierarchicalDewey::build(&tree, 16)))
    });
    group.bench_function("interval", |b| {
        b.iter(|| black_box(IntervalLabels::build(&tree)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = workloads::criterion_config();
    targets = bench_lca_by_scheme, bench_build_cost
}
criterion_main!(benches);
