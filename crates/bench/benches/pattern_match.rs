//! Experiment E7 — tree pattern match (§2.2): matching positive and perturbed
//! patterns of growing size against stored trees.

use crimson_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phylo::Tree;
use std::collections::HashMap;
use std::hint::black_box;

/// Build a positive pattern (a projection of the stored tree) and a perturbed
/// negative pattern (two leaf names swapped across clades).
fn patterns(tree: &Tree, size: usize) -> (Tree, Tree) {
    let names = workloads::leaf_subset(tree, size);
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let positive = phylo::ops::project_by_names(tree, &refs).expect("projection");
    let mut negative = positive.clone();
    // Swap the first and last leaf names: for a non-trivial pattern this
    // moves the names across clades and breaks the match.
    let leaves: Vec<_> = negative.leaf_ids().collect();
    let first = leaves[0];
    let last = leaves[leaves.len() - 1];
    let a = negative.name(first).unwrap_or_default().to_string();
    let b = negative.name(last).unwrap_or_default().to_string();
    let mut renames = HashMap::new();
    renames.insert(a.clone(), b.clone());
    renames.insert(b, a);
    phylo::ops::rename_leaves(&mut negative, &renames);
    (positive, negative)
}

fn bench_pattern_match(c: &mut Criterion) {
    workloads::print_table(
        "E7: tree pattern match",
        "tree_leaves   pattern_leaves   positive_exact   negative_exact   negative_nRF",
    );

    let mut group = c.benchmark_group("E7_pattern_match");
    for &tree_leaves in &[10_000usize, 100_000] {
        let tree = workloads::simulated_tree(tree_leaves, 33);
        let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, 8192);
        for &pattern_size in &[4usize, 16, 64, 256] {
            let (positive, negative) = patterns(&tree, pattern_size);
            let pos = repo.pattern_match(handle, &positive).expect("match");
            let neg = repo.pattern_match(handle, &negative).expect("match");
            println!(
                "{tree_leaves:<13} {pattern_size:<16} {:<16} {:<16} {:.3}",
                pos.exact_topology, neg.exact_topology, neg.rf.normalized
            );
            group.bench_with_input(
                BenchmarkId::new(format!("tree{tree_leaves}-positive"), pattern_size),
                &positive,
                |b, pattern| {
                    b.iter(|| black_box(repo.pattern_match(handle, pattern).expect("match")))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("tree{tree_leaves}-perturbed"), pattern_size),
                &negative,
                |b, pattern| {
                    b.iter(|| black_box(repo.pattern_match(handle, pattern).expect("match")))
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = workloads::criterion_config();
    targets = bench_pattern_match
}
criterion_main!(benches);
