//! Experiment E5 — sampling queries: uniform random sampling and sampling
//! with respect to an evolutionary time (§2.2), including the worked Figure 1
//! example printed as a correctness table.

use crimson_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phylo::builder::figure1_tree;
use std::hint::black_box;

fn print_figure1_example() {
    workloads::print_table(
        "E5a: time-respecting sampling, Figure 1 worked example (t = 1, k = 4)",
        "seed   sample",
    );
    let tree = figure1_tree();
    let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 2, 256);
    for seed in 0..4u64 {
        let sample = repo.sample_by_time(handle, 1.0, 4, seed).expect("sample");
        let mut names = repo.names_of(&sample).expect("names");
        names.sort();
        println!("{seed:<6} {{{}}}", names.join(", "));
    }
}

fn bench_sampling(c: &mut Criterion) {
    print_figure1_example();

    let tree = workloads::simulated_tree(20_000, 9);
    let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, 8192);
    let height = {
        let leaves = repo.leaves(handle).expect("leaves");
        repo.node_record(leaves[0]).expect("record").root_distance
    };

    let mut group = c.benchmark_group("E5_sampling");
    for &k in &[10usize, 100, 1_000] {
        group.bench_with_input(BenchmarkId::new("uniform", k), &k, |b, &k| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(repo.sample_uniform(handle, k, seed).expect("sample"))
            })
        });
        group.bench_with_input(BenchmarkId::new("time-respecting", k), &k, |b, &k| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(
                    repo.sample_by_time(handle, height * 0.5, k, seed)
                        .expect("sample"),
                )
            })
        });
    }
    group.finish();

    // Frontier computation alone, as the time threshold varies.
    let mut group = c.benchmark_group("E5_time_frontier");
    for &fraction in &[0.1f64, 0.5, 0.9] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("t={fraction}H")),
            &fraction,
            |b, &fraction| {
                b.iter(|| {
                    black_box(
                        repo.time_frontier(handle, height * fraction)
                            .expect("frontier"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = workloads::criterion_config();
    targets = bench_sampling
}
criterion_main!(benches);
