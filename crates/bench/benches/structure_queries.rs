//! Experiment E4 — structure queries (LCA, ancestor test, minimal spanning
//! clade) against the disk-resident repository.
//!
//! Paper claim: structure-based queries are efficient on huge trees because
//! only the rows a query touches are read (labels + a bounded number of
//! frame hops), not the whole tree.

use crimson::prelude::*;
use crimson_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;

const TREE_SIZES: [usize; 3] = [1_000, 10_000, 100_000];

fn bench_repository_lca(c: &mut Criterion) {
    workloads::print_table(
        "E4: stored-tree structure queries",
        "leaves     query             note",
    );

    let mut group = c.benchmark_group("E4_repository_lca");
    for &leaves in &TREE_SIZES {
        let tree = workloads::simulated_tree(leaves, 42);
        let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, 4096);
        let stored_leaves = repo.leaves(handle).expect("leaves");
        let mut rng = StdRng::seed_from_u64(3);
        let pairs: Vec<(StoredNodeId, StoredNodeId)> = (0..64)
            .map(|_| {
                (
                    *stored_leaves.choose(&mut rng).expect("non-empty"),
                    *stored_leaves.choose(&mut rng).expect("non-empty"),
                )
            })
            .collect();
        println!("{leaves:<10} lca               64 random leaf pairs");
        group.bench_with_input(BenchmarkId::new("lca", leaves), &pairs, |b, pairs| {
            b.iter(|| {
                for &(x, y) in pairs {
                    black_box(repo.lca(x, y).expect("lca"));
                }
            })
        });
        group.bench_with_input(
            BenchmarkId::new("is_ancestor", leaves),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    for &(x, y) in pairs {
                        black_box(repo.is_ancestor(x, y).expect("ancestor test"));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_spanning_clade(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_minimal_spanning_clade");
    let tree = workloads::simulated_tree(10_000, 42);
    let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, 4096);
    let stored_leaves = repo.leaves(handle).expect("leaves");
    for &set_size in &[2usize, 8, 32] {
        let mut rng = StdRng::seed_from_u64(set_size as u64);
        let sets: Vec<Vec<StoredNodeId>> = (0..8)
            .map(|_| {
                stored_leaves
                    .choose_multiple(&mut rng, set_size)
                    .copied()
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(set_size), &sets, |b, sets| {
            b.iter(|| {
                for set in sets {
                    black_box(repo.minimal_spanning_clade(set).expect("clade"));
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = workloads::criterion_config();
    targets = bench_repository_lca, bench_spanning_clade
}
criterion_main!(benches);
