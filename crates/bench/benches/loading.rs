//! Experiment E10 — data loading (§3): Newick/NEXUS parsing and the three
//! load modes (tree only, tree + species, append species).

use crimson::prelude::*;
use crimson_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_parsing(c: &mut Criterion) {
    workloads::print_table(
        "E10: format parsing and repository loading",
        "taxa       artifact             size_KB",
    );

    let mut group = c.benchmark_group("E10_parse");
    for &taxa in &[100usize, 1_000, 10_000] {
        let tree = workloads::simulated_tree(taxa, 51);
        let newick_text = phylo::newick::write(&tree);
        let gold = workloads::gold_standard(taxa.min(2_000), 200, 51);
        let nexus_text = phylo::nexus::write(&gold.to_nexus());
        println!(
            "{:<10} {:<20} {:.1}",
            taxa,
            "newick",
            newick_text.len() as f64 / 1024.0
        );
        println!(
            "{:<10} {:<20} {:.1}",
            gold.taxon_count(),
            "nexus(tree+seq)",
            nexus_text.len() as f64 / 1024.0
        );
        group.bench_with_input(BenchmarkId::new("newick", taxa), &newick_text, |b, text| {
            b.iter(|| black_box(phylo::newick::parse(text).expect("parse")))
        });
        group.bench_with_input(
            BenchmarkId::new("nexus", gold.taxon_count()),
            &nexus_text,
            |b, text| b.iter(|| black_box(phylo::nexus::parse(text).expect("parse"))),
        );
    }
    group.finish();

    // Repository load modes.
    let mut group = c.benchmark_group("E10_repository_load");
    for &taxa in &[500usize, 2_000] {
        let gold = workloads::gold_standard(taxa, 200, 7);
        let doc = gold.to_nexus();
        group.bench_with_input(BenchmarkId::new("tree_only", taxa), &doc, |b, doc| {
            b.iter(|| {
                let dir = tempfile::tempdir().expect("tempdir");
                let mut repo = Repository::create(
                    dir.path().join("load.crimson"),
                    RepositoryOptions {
                        frame_depth: 16,
                        buffer_pool_pages: 4096,
                        ..Default::default()
                    },
                )
                .expect("create");
                black_box(
                    repo.load_nexus("gold", doc, LoadMode::TreeOnly)
                        .expect("load"),
                )
            })
        });
        group.bench_with_input(
            BenchmarkId::new("tree_with_species", taxa),
            &doc,
            |b, doc| {
                b.iter(|| {
                    let dir = tempfile::tempdir().expect("tempdir");
                    let mut repo = Repository::create(
                        dir.path().join("load.crimson"),
                        RepositoryOptions {
                            frame_depth: 16,
                            buffer_pool_pages: 4096,
                            ..Default::default()
                        },
                    )
                    .expect("create");
                    black_box(
                        repo.load_nexus("gold", doc, LoadMode::TreeWithSpecies)
                            .expect("load"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = workloads::criterion_config();
    targets = bench_parsing
}
criterion_main!(benches);
