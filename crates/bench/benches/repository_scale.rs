//! Experiment E9 — disk-backed repository vs in-memory tree: load cost,
//! point-query latency (cold and warm buffer pool) and buffer-pool sweep.
//!
//! Paper claim: "simulation trees are huge, yet the portions retrieved by a
//! single query are relatively small", so a disk-backed design with random
//! access by name/time beats loading the whole tree into memory — provided
//! point queries stay cheap.

use crimson::prelude::*;
use crimson_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;

fn print_load_table() {
    workloads::print_table(
        "E9a: repository load cost and on-disk size",
        "leaves     nodes      load_ms     pages     bytes_per_node",
    );
    for &leaves in &[1_000usize, 10_000, 100_000] {
        let tree = workloads::simulated_tree(leaves, 3);
        let start = std::time::Instant::now();
        let (_dir, repo, _handle) = workloads::repository_with_tree(&tree, 16, 4096);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let pages = repo.buffer_stats(); // touch stats to keep repo alive
        let _ = pages;
        let page_count = {
            // page_count isn't exposed on Repository; approximate via node
            // count * row size is not meaningful here, so report pages from
            // the storage layer through the flush-size proxy: bytes on disk.
            std::fs::metadata(_dir.path().join("bench.crimson"))
                .map(|m| m.len())
                .unwrap_or(0)
        };
        println!(
            "{:<10} {:<10} {:<11.1} {:<9} {:<8.1}",
            leaves,
            tree.node_count(),
            elapsed,
            page_count / 8192,
            page_count as f64 / tree.node_count() as f64
        );
    }
}

fn bench_point_queries(c: &mut Criterion) {
    print_load_table();

    let tree = workloads::simulated_tree(100_000, 3);
    let names = workloads::leaf_subset(&tree, 512);

    // Warm (large buffer pool) vs cold-ish (tiny buffer pool) repositories.
    let mut group = c.benchmark_group("E9_point_query_by_name");
    for (label, pages) in [("warm-16k-pages", 16_384usize), ("cold-64-pages", 64)] {
        let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, pages);
        let mut rng = StdRng::seed_from_u64(1);
        let mut probe_names = names.clone();
        probe_names.shuffle(&mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &probe_names,
            |b, probes| {
                b.iter(|| {
                    for name in probes.iter().take(64) {
                        black_box(repo.species_node(handle, name).expect("lookup"));
                    }
                })
            },
        );
    }
    group.finish();

    // In-memory baseline: the whole tree resident, name lookup by linear scan
    // of the leaf set (what a naive main-memory tool does) and by a prebuilt
    // name index (the best case).
    let mut group = c.benchmark_group("E9_in_memory_baseline");
    group.bench_function("linear-scan-name-lookup", |b| {
        b.iter(|| {
            for name in names.iter().take(64) {
                black_box(tree.find_leaf_by_name(name));
            }
        })
    });
    let index = tree.name_index().expect("unique names");
    group.bench_function("hash-index-name-lookup", |b| {
        b.iter(|| {
            for name in names.iter().take(64) {
                black_box(index.get(name.as_str()));
            }
        })
    });
    group.finish();

    // Buffer-pool size sweep: LCA queries under increasing memory pressure.
    let mut group = c.benchmark_group("E9_buffer_pool_sweep");
    for &pages in &[64usize, 512, 4_096] {
        let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, pages);
        let leaves = repo.leaves(handle).expect("leaves");
        let mut rng = StdRng::seed_from_u64(11);
        let pairs: Vec<(StoredNodeId, StoredNodeId)> = (0..64)
            .map(|_| {
                (
                    *leaves.choose(&mut rng).expect("leaf"),
                    *leaves.choose(&mut rng).expect("leaf"),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(pages), &pairs, |b, pairs| {
            b.iter(|| {
                for &(x, y) in pairs {
                    black_box(repo.lca(x, y).expect("lca"));
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = workloads::criterion_config();
    targets = bench_point_queries
}
criterion_main!(benches);
