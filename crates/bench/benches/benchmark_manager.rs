//! Experiment E8 — the Benchmark Manager end to end: sample → project →
//! reconstruct → compare, for UPGMA and Neighbor-Joining on sequence-derived
//! and true distances.
//!
//! This regenerates the head-to-head table the demo shows: reconstruction
//! quality (Robinson–Foulds) per algorithm, sample size and sequence length.

use crimson::experiment::{DistanceSource, EvalSpec, ExperimentRunner, Method};
use crimson::prelude::*;
use crimson_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn print_quality_table() {
    workloads::print_table(
        "E8a: reconstruction quality vs gold standard (normalized RF, lower is better)",
        "taxa   sites   method   distances        nRF      RF",
    );
    let gold = workloads::gold_standard(2_000, 600, 77);
    let (_dir, mut repo, handle) = workloads::repository_with_gold(&gold, 16, 8192);
    let mut manager = ExperimentRunner::new(&mut repo, handle);
    for &sample_size in &[16usize, 64, 256] {
        for (method, source) in [
            (Method::Upgma, DistanceSource::SequencesJc),
            (Method::NeighborJoining, DistanceSource::SequencesJc),
            (Method::NeighborJoining, DistanceSource::TruePatristic),
        ] {
            let report = manager
                .evaluate(&EvalSpec {
                    strategy: SamplingStrategy::Uniform { k: sample_size },
                    method,
                    distance_source: source,
                    compute_triplets: false,
                    seed: 13,
                })
                .expect("benchmark run");
            println!(
                "{:<6} {:<7} {:<8} {:<16} {:<8.3} {}",
                sample_size,
                600,
                method.name(),
                source.name(),
                report.rf.normalized,
                report.rf.distance
            );
        }
    }
}

fn bench_pipeline(c: &mut Criterion) {
    print_quality_table();

    let gold = workloads::gold_standard(2_000, 300, 5);
    let (_dir, mut repo, handle) = workloads::repository_with_gold(&gold, 16, 8192);

    let mut group = c.benchmark_group("E8_benchmark_pipeline");
    for &sample_size in &[16usize, 64, 128] {
        for method in [Method::Upgma, Method::NeighborJoining] {
            group.bench_with_input(
                BenchmarkId::new(method.name(), sample_size),
                &sample_size,
                |b, &k| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let mut manager = ExperimentRunner::new(&mut repo, handle);
                        black_box(
                            manager
                                .evaluate(&EvalSpec {
                                    strategy: SamplingStrategy::Uniform { k },
                                    method,
                                    distance_source: DistanceSource::SequencesJc,
                                    compute_triplets: false,
                                    seed,
                                })
                                .expect("benchmark run"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = workloads::criterion_config();
    targets = bench_pipeline
}
criterion_main!(benches);
