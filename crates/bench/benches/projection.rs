//! Experiment E6 — tree projection (§2.2): projecting the stored tree onto
//! sampled leaf sets of increasing size, from trees of increasing size.
//!
//! Paper claim: projection via pre-order insertion and LCA-based ancestor
//! checks touches only the sampled root paths, so its cost scales with the
//! sample, not with the stored tree.

use crimson_bench::workloads;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_projection(c: &mut Criterion) {
    workloads::print_table(
        "E6: tree projection over sampled leaf sets",
        "tree_leaves   sample   projected_nodes",
    );

    let mut group = c.benchmark_group("E6_projection");
    for &tree_leaves in &[10_000usize, 100_000] {
        let tree = workloads::simulated_tree(tree_leaves, 21);
        let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, 8192);
        for &sample_size in &[10usize, 100, 1_000] {
            let sample = repo.sample_uniform(handle, sample_size, 5).expect("sample");
            let projected = repo.project(handle, &sample).expect("projection");
            println!(
                "{tree_leaves:<13} {sample_size:<8} {}",
                projected.node_count()
            );
            group.bench_with_input(
                BenchmarkId::new(format!("tree{tree_leaves}"), sample_size),
                &sample,
                |b, sample| b.iter(|| black_box(repo.project(handle, sample).expect("projection"))),
            );
        }
    }
    group.finish();

    // In-memory projection baseline (the whole tree resident), for the same
    // sample sizes — quantifies the cost of going through the repository.
    let mut group = c.benchmark_group("E6_projection_in_memory_baseline");
    let tree = workloads::simulated_tree(100_000, 21);
    for &sample_size in &[10usize, 100, 1_000] {
        let names = workloads::leaf_subset(&tree, sample_size);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(sample_size),
            &refs,
            |b, refs| {
                b.iter(|| black_box(phylo::ops::project_by_names(&tree, refs).expect("projection")))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = workloads::criterion_config();
    targets = bench_projection
}
criterion_main!(benches);
