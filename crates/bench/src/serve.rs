//! Served-engine workload: drive a live `crimson-server` over loopback and
//! measure aggregate read throughput, tail latency, and the effect of
//! batched (coalesced) dispatch at 1/8/64 connections.
//!
//! The serving claim under test: adjacent reads from many connections
//! coalesce into pinned-epoch batch executions on the dispatch pool, so
//! aggregate read q/s scales with connections instead of re-paying the
//! epoch pin and snapshot lookup per request — while a concurrent writer
//! rides the group-commit queue without stalling readers.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crimson_server::dispatch::DispatchConfig;
use crimson_server::msg::{Request, Response, WireDurability};
use crimson_server::server::{Server, ServerConfig};
use crimson_server::Client;

use crate::workloads::simulated_tree;

/// Shape of one serve measurement.
#[derive(Debug, Clone, Copy)]
pub struct ServeProfile {
    /// Leaves in the served gold tree.
    pub leaves: usize,
    /// Read requests each connection issues.
    pub ops_per_conn: usize,
    /// Requests each connection keeps in flight (pipelining depth).
    pub pipeline: usize,
    /// Dispatch worker threads.
    pub workers: usize,
}

impl ServeProfile {
    /// A profile sized for the smoke test: big enough for stable ratios,
    /// small enough for debug-build CI.
    pub fn smoke() -> ServeProfile {
        ServeProfile {
            leaves: 256,
            ops_per_conn: if cfg!(debug_assertions) { 300 } else { 1500 },
            pipeline: 16,
            workers: 4,
        }
    }
}

/// One measured level: `connections` clients hammering reads.
#[derive(Debug, Clone, Copy)]
pub struct ServeLevel {
    /// Concurrent connections.
    pub connections: usize,
    /// Aggregate read throughput over the level's wall clock.
    pub qps: f64,
    /// Median per-request latency (send to matching response), ms.
    pub p50_ms: f64,
    /// 99th-percentile per-request latency, ms.
    pub p99_ms: f64,
    /// Fraction of reads that shared a coalesced batch with another read.
    pub coalesced_fraction: f64,
    /// Pinned-epoch batch executions the level cost.
    pub read_batches: u64,
}

/// Mixed read/write level: readers as in [`ServeLevel`] plus one writer
/// connection streaming async tree loads with periodic durability
/// barriers.
#[derive(Debug, Clone, Copy)]
pub struct MixedLevel {
    /// The read side, measured under write pressure.
    pub reads: ServeLevel,
    /// Trees the writer landed during the window.
    pub writes: u64,
    /// Write acknowledgement latency p99, ms.
    pub write_p99_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct ServeHarness {
    server: Server,
    addr: SocketAddr,
    gold: u64,
    leaves: Vec<u64>,
    _dir: tempfile::TempDir,
}

fn start_harness(profile: &ServeProfile, coalesce: bool) -> ServeHarness {
    let dir = tempfile::tempdir().expect("tempdir");
    let config = ServerConfig {
        dispatch: DispatchConfig {
            workers: profile.workers,
            coalesce,
            max_queue: 4096,
            ..DispatchConfig::default()
        },
        conn_window: profile.pipeline * 2,
        ..ServerConfig::default()
    };
    let server = Server::start(config, dir.path()).expect("start server");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    client.attach("bench").expect("attach");
    let newick = phylo::newick::write(&simulated_tree(profile.leaves, 42));
    let gold = match client
        .load_tree("gold", &newick, WireDurability::Sync)
        .expect("load gold")
    {
        Response::TreeLoaded { tree, .. } => tree,
        other => panic!("gold load failed: {other:?}"),
    };
    let leaves = match client
        .call(&Request::Leaves { tree: gold })
        .expect("leaves")
    {
        Response::Nodes(ids) => ids,
        other => panic!("leaves failed: {other:?}"),
    };
    ServeHarness {
        server,
        addr,
        gold,
        leaves,
        _dir: dir,
    }
}

/// The rotating read mix: structure queries of different footprints, all
/// answerable from a pinned snapshot.
fn read_request(gold: u64, leaves: &[u64], i: usize) -> Request {
    let n = leaves.len();
    match i % 4 {
        0 => Request::Lca {
            a: leaves[(i * 7) % n],
            b: leaves[(i * 13 + 5) % n],
        },
        1 => Request::IsAncestor {
            ancestor: leaves[(i * 3) % n],
            node: leaves[(i * 11 + 1) % n],
        },
        2 => Request::SpanningClade {
            nodes: vec![
                leaves[i % n],
                leaves[(i * 5 + 2) % n],
                leaves[(i * 9 + 4) % n],
            ],
        },
        _ => Request::SampleUniform {
            tree: gold,
            k: 8,
            seed: i as u64,
        },
    }
}

/// Run `ops` pipelined reads on one connection; returns per-request
/// latencies in ms. Panics on any error response — the bench demands zero
/// errors.
fn run_reader(
    addr: SocketAddr,
    gold: u64,
    leaves: &[u64],
    ops: usize,
    pipeline: usize,
) -> Vec<f64> {
    let mut client = Client::connect(addr).expect("connect reader");
    client.attach("bench").expect("attach reader");
    let mut latencies = Vec::with_capacity(ops);
    let mut inflight: std::collections::HashMap<u64, Instant> = std::collections::HashMap::new();
    let mut sent = 0usize;
    let mut done = 0usize;
    while done < ops {
        while sent < ops && inflight.len() < pipeline {
            let req = read_request(gold, leaves, sent);
            let corr = client.send(&req).expect("send");
            inflight.insert(corr, Instant::now());
            sent += 1;
        }
        let (corr, resp) = client.recv().expect("recv");
        let started = inflight.remove(&corr).expect("unknown correlation");
        if let Response::Error(e) = resp {
            panic!("read failed mid-bench: {e}");
        }
        latencies.push(started.elapsed().as_secs_f64() * 1e3);
        done += 1;
    }
    latencies
}

/// Measure one read-only level.
pub fn serve_reads(profile: &ServeProfile, connections: usize, coalesce: bool) -> ServeLevel {
    let harness = start_harness(profile, coalesce);
    let stats = harness.server.stats();
    let reads_before = stats.reads.load(Ordering::Relaxed);
    let batches_before = stats.read_batches.load(Ordering::Relaxed);
    let coalesced_before = stats.coalesced_reads.load(Ordering::Relaxed);

    let started = Instant::now();
    let mut joins = Vec::new();
    for _ in 0..connections {
        let addr = harness.addr;
        let leaves = harness.leaves.clone();
        let gold = harness.gold;
        let ops = profile.ops_per_conn;
        let pipeline = profile.pipeline;
        joins.push(std::thread::spawn(move || {
            run_reader(addr, gold, &leaves, ops, pipeline)
        }));
    }
    let mut latencies: Vec<f64> = Vec::new();
    for j in joins {
        latencies.extend(j.join().expect("reader thread"));
    }
    let wall = started.elapsed().as_secs_f64();

    let reads = stats.reads.load(Ordering::Relaxed) - reads_before;
    let batches = stats.read_batches.load(Ordering::Relaxed) - batches_before;
    let coalesced = stats.coalesced_reads.load(Ordering::Relaxed) - coalesced_before;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let level = ServeLevel {
        connections,
        qps: latencies.len() as f64 / wall,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        coalesced_fraction: if reads == 0 {
            0.0
        } else {
            coalesced as f64 / reads as f64
        },
        read_batches: batches,
    };
    harness.server.shutdown();
    level
}

/// Measure a mixed level: `connections` readers plus one writer streaming
/// `Durability::Async` loads with a `WaitDurable` barrier every 8 trees.
pub fn serve_mixed(profile: &ServeProfile, connections: usize) -> MixedLevel {
    let harness = start_harness(profile, true);
    let stats = harness.server.stats();
    let reads_before = stats.reads.load(Ordering::Relaxed);
    let batches_before = stats.read_batches.load(Ordering::Relaxed);
    let coalesced_before = stats.coalesced_reads.load(Ordering::Relaxed);

    let stop = Arc::new(AtomicBool::new(false));
    let writer_stop = Arc::clone(&stop);
    let writer_addr = harness.addr;
    let writer = std::thread::spawn(move || {
        let mut client = Client::connect(writer_addr).expect("connect writer");
        client.attach("bench").expect("attach writer");
        let mut write_lat = Vec::new();
        let mut n = 0u64;
        while !writer_stop.load(Ordering::Acquire) {
            let name = format!("w{n}");
            let newick = format!("((wa{n}:1,wb{n}:1):1,(wc{n}:1,wd{n}:1):1);");
            let t = Instant::now();
            match client
                .load_tree(&name, &newick, WireDurability::Async)
                .expect("write")
            {
                Response::TreeLoaded { .. } => {}
                Response::Error(e) => panic!("write failed mid-bench: {e}"),
                other => panic!("unexpected write response: {other:?}"),
            }
            write_lat.push(t.elapsed().as_secs_f64() * 1e3);
            n += 1;
            if n.is_multiple_of(8) {
                match client.wait_durable().expect("barrier") {
                    Response::Durable { .. } => {}
                    other => panic!("barrier failed: {other:?}"),
                }
            }
        }
        // Final barrier so everything acknowledged is durable.
        match client.wait_durable().expect("final barrier") {
            Response::Durable { .. } => {}
            other => panic!("final barrier failed: {other:?}"),
        }
        (n, write_lat)
    });

    let started = Instant::now();
    let mut joins = Vec::new();
    for _ in 0..connections {
        let addr = harness.addr;
        let leaves = harness.leaves.clone();
        let gold = harness.gold;
        let ops = profile.ops_per_conn;
        let pipeline = profile.pipeline;
        joins.push(std::thread::spawn(move || {
            run_reader(addr, gold, &leaves, ops, pipeline)
        }));
    }
    let mut latencies: Vec<f64> = Vec::new();
    for j in joins {
        latencies.extend(j.join().expect("reader thread"));
    }
    let wall = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Release);
    let (writes, mut write_lat) = writer.join().expect("writer thread");

    let reads = stats.reads.load(Ordering::Relaxed) - reads_before;
    let batches = stats.read_batches.load(Ordering::Relaxed) - batches_before;
    let coalesced = stats.coalesced_reads.load(Ordering::Relaxed) - coalesced_before;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    write_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let level = MixedLevel {
        reads: ServeLevel {
            connections,
            qps: latencies.len() as f64 / wall,
            p50_ms: percentile(&latencies, 0.50),
            p99_ms: percentile(&latencies, 0.99),
            coalesced_fraction: if reads == 0 {
                0.0
            } else {
                coalesced as f64 / reads as f64
            },
            read_batches: batches,
        },
        writes,
        write_p99_ms: percentile(&write_lat, 0.99),
    };
    harness.server.shutdown();
    level
}
