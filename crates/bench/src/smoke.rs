//! Criterion-free smoke profile for the benchmark workloads.
//!
//! `cargo bench` pays Criterion's warm-up and measurement windows on every
//! target — minutes of wall clock. This module runs scaled-down versions of
//! the scoreboard experiments (E4 structure queries, E6 projection, E7
//! pattern match) as plain functions returning their page-read counters, and
//! the `#[cfg(test)]` block below pins the interval-index cost advantage in
//! the ordinary test suite: `cargo test -p bench` (or `--release` for truer
//! numbers) exercises every bench code path in seconds.

use crate::workloads;
use crimson::prelude::*;
use rand::prelude::*;

/// Page-read counters for one workload run on the interval-index path and
/// the pre-index reference path.
#[derive(Debug, Clone, Copy)]
pub struct SmokeCost {
    /// Buffer-pool page reads (hits + misses) on the interval-index path.
    pub interval_reads: u64,
    /// Buffer-pool page reads on the label-walk / BFS reference path.
    pub reference_reads: u64,
}

impl SmokeCost {
    /// `reference_reads / interval_reads`, the scoreboard ratio.
    pub fn speedup(&self) -> f64 {
        self.reference_reads as f64 / self.interval_reads.max(1) as f64
    }
}

/// E4 smoke: LCA + ancestor tests over random leaf pairs of a simulated
/// tree. Returns the interval-vs-reference page-read costs of the LCA batch.
pub fn structure_queries(leaves: usize, pairs: usize, seed: u64) -> SmokeCost {
    let tree = workloads::simulated_tree(leaves, seed);
    let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, 4096);
    let stored = repo.leaves(handle).expect("leaves");
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs: Vec<(StoredNodeId, StoredNodeId)> = (0..pairs)
        .map(|_| {
            (
                *stored.choose(&mut rng).expect("non-empty"),
                *stored.choose(&mut rng).expect("non-empty"),
            )
        })
        .collect();

    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    for &(a, b) in &pairs {
        let lca = repo.lca(a, b).expect("lca");
        assert!(repo.is_ancestor(lca, a).expect("ancestor test"));
    }
    let interval_reads = repo.buffer_stats().page_reads();

    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    for &(a, b) in &pairs {
        let _ = repo.lca_label_walk(a, b).expect("reference lca");
    }
    let reference_reads = repo.buffer_stats().page_reads();
    SmokeCost {
        interval_reads,
        reference_reads,
    }
}

/// E4 smoke: minimal spanning clade of random leaf sets.
pub fn spanning_clade(leaves: usize, set_size: usize, seed: u64) -> SmokeCost {
    let tree = workloads::simulated_tree(leaves, seed);
    let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, 4096);
    let stored = repo.leaves(handle).expect("leaves");
    let mut rng = StdRng::seed_from_u64(seed);
    let set: Vec<StoredNodeId> = stored
        .choose_multiple(&mut rng, set_size)
        .copied()
        .collect();

    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    let fast = repo.minimal_spanning_clade(&set).expect("clade");
    let interval_reads = repo.buffer_stats().page_reads();

    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    let reference = repo
        .minimal_spanning_clade_reference(&set)
        .expect("reference clade");
    let reference_reads = repo.buffer_stats().page_reads();
    assert_eq!(
        fast.len(),
        reference.len(),
        "clade implementations disagree"
    );
    SmokeCost {
        interval_reads,
        reference_reads,
    }
}

/// E6 smoke: projection of an evenly spread leaf sample.
pub fn projection(leaves: usize, sample: usize, seed: u64) -> SmokeCost {
    let tree = workloads::simulated_tree(leaves, seed);
    let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, 8192);
    let stored = repo.leaves(handle).expect("leaves");
    let step = (stored.len() / sample).max(1);
    let sample: Vec<StoredNodeId> = stored.iter().step_by(step).copied().collect();

    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    let fast = repo.project(handle, &sample).expect("projection");
    let interval_reads = repo.buffer_stats().page_reads();

    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    let reference = repo
        .project_reference(handle, &sample)
        .expect("reference projection");
    let reference_reads = repo.buffer_stats().page_reads();
    assert!(
        phylo::ops::isomorphic_with_lengths(&fast, &reference, 1e-9),
        "projection implementations disagree"
    );
    SmokeCost {
        interval_reads,
        reference_reads,
    }
}

/// E7 smoke: pattern match of a positive (projected) pattern, which rides on
/// the projection path end to end.
pub fn pattern_match(leaves: usize, pattern_size: usize, seed: u64) -> SmokeCost {
    let tree = workloads::simulated_tree(leaves, seed);
    let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, 8192);
    let names = workloads::leaf_subset(&tree, pattern_size);
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let pattern = phylo::ops::project_by_names(&tree, &refs).expect("pattern");

    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    let result = repo.pattern_match(handle, &pattern).expect("match");
    assert!(result.exact_topology, "positive pattern must match exactly");
    let interval_reads = repo.buffer_stats().page_reads();

    // Reference cost: the same projection through the pre-index path (the
    // comparison half of pattern match is identical either way).
    let sample: Vec<StoredNodeId> = names
        .iter()
        .map(|n| repo.require_species_node(handle, n).expect("species"))
        .collect();
    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    let _ = repo
        .project_reference(handle, &sample)
        .expect("reference projection");
    let reference_reads = repo.buffer_stats().page_reads();
    SmokeCost {
        interval_reads,
        reference_reads,
    }
}

/// Aggregate throughput of one mixed read batch at a given worker count —
/// the concurrent-reads workload behind the scaling smoke.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrencyCost {
    /// Worker threads the batch ran with.
    pub threads: usize,
    /// Queries in the batch.
    pub queries: usize,
    /// Wall-clock seconds for the measured run.
    pub seconds: f64,
}

impl ConcurrencyCost {
    /// Aggregate queries per second.
    pub fn qps(&self) -> f64 {
        self.queries as f64 / self.seconds.max(1e-9)
    }
}

/// Concurrent-reads smoke: build an in-file repository from a simulated
/// tree, fan a deterministic mixed batch (LCA / ancestor / clade /
/// projection) across `threads` snapshot-reader workers via [`QueryBatch`],
/// and measure aggregate throughput. One warm-up pass puts the reader's
/// record/interval caches and the buffer pool in the same steady state for
/// every thread count, so the numbers isolate scaling, not cache luck.
pub fn concurrent_reads(
    leaves: usize,
    queries: usize,
    threads: usize,
    seed: u64,
) -> ConcurrencyCost {
    let tree = workloads::simulated_tree(leaves, seed);
    let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, 8192);
    let batch = workloads::mixed_read_batch(&repo, handle, queries, seed);
    let reader = repo.reader().expect("snapshot reader");
    // Warm-up: fills the reader caches; results are checked for errors once.
    for result in batch.execute_on(&reader, threads) {
        result.expect("warm-up query");
    }
    // Best of three runs: a single ~10 ms window is at the mercy of whatever
    // else the machine (or a parallel test binary) is doing; the fastest run
    // is the one that measures the engine rather than the scheduler.
    let mut seconds = f64::MAX;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        let results = batch.execute_on(&reader, threads);
        let elapsed = start.elapsed().as_secs_f64();
        assert!(
            results.iter().all(|r| r.is_ok()),
            "measured batch must succeed"
        );
        assert_eq!(results.len(), batch.len());
        seconds = seconds.min(elapsed);
    }
    ConcurrencyCost {
        threads,
        queries: batch.len(),
        seconds,
    }
}

/// Page-write and WAL cost of the E4 load workload, with logging on and off.
/// The WAL goes to its own file, so the data-file page writes of a logged
/// load should stay close to the unlogged baseline — the smoke test pins the
/// regression below 2×.
#[derive(Debug, Clone, Copy)]
pub struct LoadCost {
    /// Data-file page writes (checkpoint flushes + eviction write-backs)
    /// for the logged load.
    pub logged_page_writes: u64,
    /// Data-file page writes for the unlogged baseline load.
    pub unlogged_page_writes: u64,
    /// WAL bytes appended by the logged load.
    pub wal_bytes: u64,
    /// WAL records appended by the logged load.
    pub wal_appends: u64,
}

impl LoadCost {
    /// `logged / unlogged` data-page-write ratio — the WAL overhead factor.
    pub fn write_overhead(&self) -> f64 {
        self.logged_page_writes as f64 / self.unlogged_page_writes.max(1) as f64
    }
}

/// E4 load smoke: load the same simulated tree into a logged and an unlogged
/// repository (including a final checkpoint each) and compare data-file page
/// writes.
pub fn load_workload(leaves: usize, seed: u64) -> LoadCost {
    let tree = workloads::simulated_tree(leaves, seed);
    let run = |logging: bool| {
        let dir = tempfile::tempdir().expect("temp dir");
        let mut repo = crimson::repository::Repository::create(
            dir.path().join("load.crimson"),
            crimson::repository::RepositoryOptions {
                frame_depth: 16,
                buffer_pool_pages: 4096,
                ..Default::default()
            },
        )
        .expect("create repository");
        repo.set_logging(logging).expect("toggle logging");
        repo.reset_buffer_stats();
        repo.load_tree("bench", &tree).expect("load tree");
        repo.flush().expect("checkpoint");
        repo.buffer_stats()
    };
    let logged = run(true);
    let unlogged = run(false);
    LoadCost {
        logged_page_writes: logged.page_writes(),
        unlogged_page_writes: unlogged.page_writes(),
        wal_bytes: logged.wal_bytes,
        wal_appends: logged.wal_appends,
    }
}

/// Wall-clock and WAL cost of loading one simulated tree through the bulk
/// fast path versus the row-at-a-time reference path (same tree, fresh
/// repository each, followed by a checkpoint).
#[derive(Debug, Clone, Copy)]
pub struct BulkLoadCost {
    /// Node rows loaded (tree nodes).
    pub rows: usize,
    /// Wall-clock seconds of the bulk `load_tree` (excluding checkpoint).
    pub bulk_seconds: f64,
    /// Wall-clock seconds of `load_tree_reference`.
    pub reference_seconds: f64,
    /// WAL bytes appended by the bulk load (including its checkpoint).
    pub wal_bytes: u64,
    /// Data-file page writes of the bulk load (checkpoint + evictions).
    pub data_page_writes: u64,
}

impl BulkLoadCost {
    /// `reference_seconds / bulk_seconds` — the load fast-path speedup.
    pub fn speedup(&self) -> f64 {
        self.reference_seconds / self.bulk_seconds.max(1e-9)
    }

    /// Bulk-path load throughput in rows per second.
    pub fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.bulk_seconds.max(1e-9)
    }

    /// WAL bytes per data byte written — the log-overhead ratio the bulk
    /// path budgets at ≤ 1.1× (one after-image per loaded page).
    pub fn wal_ratio(&self) -> f64 {
        let data = (self.data_page_writes as f64) * storage::PAGE_SIZE as f64;
        self.wal_bytes as f64 / data.max(1.0)
    }
}

/// Load smoke for the bulk fast path: time `load_tree` (bulk) and
/// `load_tree_reference` (row-at-a-time) on the same simulated tree in fresh
/// repositories, cross-validating that both answer a sample of LCA queries
/// identically and pass their integrity checks. Best-of-`runs` timing keeps
/// the ratio honest on noisy runners.
pub fn bulk_load_workload(leaves: usize, seed: u64, runs: usize) -> BulkLoadCost {
    let tree = workloads::simulated_tree(leaves, seed);
    let rows = tree.node_count();
    let time_load = |reference: bool| -> (f64, u64, u64) {
        let mut best = f64::MAX;
        let mut wal_bytes = 0;
        let mut page_writes = 0;
        for _ in 0..runs.max(1) {
            let dir = tempfile::tempdir().expect("temp dir");
            let mut repo = crimson::repository::Repository::create(
                dir.path().join("load.crimson"),
                crimson::repository::RepositoryOptions {
                    frame_depth: 16,
                    buffer_pool_pages: 4096,
                    ..Default::default()
                },
            )
            .expect("create repository");
            repo.reset_buffer_stats();
            let start = std::time::Instant::now();
            if reference {
                repo.load_tree_reference("bench", &tree).expect("load");
            } else {
                repo.load_tree("bench", &tree).expect("load");
            }
            let elapsed = start.elapsed().as_secs_f64();
            repo.flush().expect("checkpoint");
            let stats = repo.buffer_stats();
            if elapsed < best {
                best = elapsed;
                wal_bytes = stats.wal_bytes;
                page_writes = stats.page_writes();
            }
        }
        (best, wal_bytes, page_writes)
    };
    // Cross-validate once: both paths must answer the same queries
    // identically and pass integrity.
    {
        let dir = tempfile::tempdir().expect("temp dir");
        let opts = crimson::repository::RepositoryOptions {
            frame_depth: 16,
            buffer_pool_pages: 4096,
            ..Default::default()
        };
        let mut bulk =
            crimson::repository::Repository::create(dir.path().join("bulk.crimson"), opts.clone())
                .expect("create");
        let mut reference =
            crimson::repository::Repository::create(dir.path().join("ref.crimson"), opts)
                .expect("create");
        let hb = bulk.load_tree("bench", &tree).expect("bulk load");
        let hr = reference
            .load_tree_reference("bench", &tree)
            .expect("reference load");
        let leaves_b = bulk.leaves(hb).expect("leaves");
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let a = *leaves_b.choose(&mut rng).expect("non-empty");
            let b = *leaves_b.choose(&mut rng).expect("non-empty");
            assert_eq!(
                bulk.lca(a, b).expect("lca"),
                reference.lca(a, b).expect("lca"),
                "bulk and reference repositories disagree on lca({a}, {b})"
            );
        }
        bulk.integrity_check().expect("bulk integrity");
        reference.integrity_check().expect("reference integrity");
        let _ = hr;
    }
    let (bulk_seconds, wal_bytes, data_page_writes) = time_load(false);
    let (reference_seconds, _, _) = time_load(true);
    BulkLoadCost {
        rows,
        bulk_seconds,
        reference_seconds,
        wal_bytes,
        data_page_writes,
    }
}

/// Cost of one persisted experiment sweep — the evaluation workload.
#[derive(Debug, Clone, Copy)]
pub struct EvalSweepCost {
    /// Grid cells executed and persisted (method × sampling × replicate).
    pub runs: usize,
    /// Worker threads the sweep was asked to fan across.
    pub workers: usize,
    /// Worker threads the runner actually used after clamping the request
    /// to the grid size and the machine's available cores. On a one-core
    /// container a 4-worker request runs serially — recording this keeps
    /// BENCH_eval.json numbers interpretable across runners.
    pub effective_workers: usize,
    /// Wall-clock seconds of the whole persisted sweep.
    pub seconds: f64,
}

impl EvalSweepCost {
    /// Aggregate persisted evaluation runs per second.
    pub fn sweeps_per_sec(&self) -> f64 {
        self.runs as f64 / self.seconds.max(1e-9)
    }
}

/// Evaluation smoke: load a gold standard, run a full persisted experiment
/// sweep (2 methods × 3 samplings × 3 replicates) at the given worker
/// count, and measure aggregate throughput. The sweep is verified to have
/// persisted every cell and to pass `integrity_check`.
pub fn eval_sweep(leaves: usize, sites: usize, workers: usize, seed: u64) -> EvalSweepCost {
    let gold = workloads::gold_standard(leaves, sites, seed);
    let (_dir, mut repo, handle) = workloads::repository_with_gold(&gold, 16, 4096);
    let spec = ExperimentSpec {
        name: format!("bench-sweep-w{workers}"),
        methods: vec![Method::Upgma, Method::NeighborJoining],
        strategies: vec![
            SamplingStrategy::Uniform { k: 12 },
            SamplingStrategy::Uniform { k: 16 },
            SamplingStrategy::TimeRespecting { time: 1e6, k: 12 },
        ],
        replicates: 3,
        distance_source: DistanceSource::SequencesJc,
        compute_triplets: false,
        seed,
        workers,
        cell_commits: false,
    };
    let start = std::time::Instant::now();
    let record = ExperimentRunner::new(&mut repo, handle)
        .run(&spec)
        .expect("experiment sweep");
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(record.runs, 18, "full grid must persist");
    repo.integrity_check().expect("integrity after sweep");
    // Mirror of the runner's own clamp: never more threads than grid cells
    // or hardware cores.
    let cores = std::thread::available_parallelism().map_or(usize::MAX, |n| n.get());
    EvalSweepCost {
        runs: record.runs as usize,
        workers,
        effective_workers: workers.clamp(1, record.runs as usize).min(cores),
        seconds,
    }
}

/// Wall-clock cost of comparing two large stored trees: index-native
/// (streaming the interval index) versus materialize-then-compare (two full
/// projections plus the bitset comparison).
#[derive(Debug, Clone, Copy)]
pub struct CompareCost {
    /// Leaves per tree.
    pub leaves: usize,
    /// Seconds for the index-native comparison (best of runs).
    pub native_seconds: f64,
    /// Seconds for materialize-then-compare (best of runs).
    pub materialized_seconds: f64,
}

impl CompareCost {
    /// `materialized / native` — how much the index-native path saves.
    pub fn speedup(&self) -> f64 {
        self.materialized_seconds / self.native_seconds.max(1e-9)
    }
}

/// Comparison smoke: store two simulated trees over the same leaf-name set
/// and time RF (unrooted + rooted) through both paths, cross-validating
/// that they produce identical distances. Caches are dropped before every
/// timed run so both paths pay their page reads.
pub fn compare_workload(leaves: usize, seed: u64, runs: usize) -> CompareCost {
    let a = workloads::simulated_tree(leaves, seed);
    let b = workloads::simulated_tree(leaves, seed + 1);
    let dir = tempfile::tempdir().expect("temp dir");
    let mut repo = crimson::repository::Repository::create(
        dir.path().join("compare.crimson"),
        crimson::repository::RepositoryOptions {
            frame_depth: 16,
            buffer_pool_pages: 8192,
            ..Default::default()
        },
    )
    .expect("create repository");
    let ha = repo.load_tree("a", &a).expect("load a");
    let hb = repo.load_tree("b", &b).expect("load b");
    let leaves_a = repo.leaves(ha).expect("leaves a");
    let leaves_b = repo.leaves(hb).expect("leaves b");

    // Cross-validate once: both paths must agree exactly.
    let native = repo.compare_stored(ha, hb, false).expect("native compare");
    let ta = repo.project(ha, &leaves_a).expect("materialize a");
    let tb = repo.project(hb, &leaves_b).expect("materialize b");
    let rf = reconstruction::compare::robinson_foulds(&ta, &tb).expect("materialized rf");
    let rrf =
        reconstruction::compare::rooted_robinson_foulds(&ta, &tb).expect("materialized rooted rf");
    assert_eq!(native.rf, rf, "comparison paths disagree");
    assert_eq!(native.rooted_rf, rrf, "rooted comparison paths disagree");

    let mut native_seconds = f64::MAX;
    let mut materialized_seconds = f64::MAX;
    for _ in 0..runs.max(1) {
        repo.clear_cache().expect("clear cache");
        let start = std::time::Instant::now();
        let cmp = repo.compare_stored(ha, hb, false).expect("native compare");
        native_seconds = native_seconds.min(start.elapsed().as_secs_f64());
        assert_eq!(cmp.rf, rf);

        repo.clear_cache().expect("clear cache");
        let start = std::time::Instant::now();
        let ta = repo.project(ha, &leaves_a).expect("materialize a");
        let tb = repo.project(hb, &leaves_b).expect("materialize b");
        let m_rf = reconstruction::compare::robinson_foulds(&ta, &tb).expect("rf");
        let _ = reconstruction::compare::rooted_robinson_foulds(&ta, &tb).expect("rrf");
        materialized_seconds = materialized_seconds.min(start.elapsed().as_secs_f64());
        assert_eq!(m_rf, rf);
    }
    CompareCost {
        leaves,
        native_seconds,
        materialized_seconds,
    }
}

/// Recovery smoke: commit one load, crash partway through a second, reopen
/// and return the recovery report (the caller asserts on it). Panics if the
/// recovered repository fails its integrity check or loses the committed
/// tree.
pub fn recovery_workload(leaves: usize, seed: u64) -> storage::RecoveryReport {
    let tree = workloads::simulated_tree(leaves, seed);
    let victim = workloads::simulated_tree(leaves, seed + 1);
    let dir = tempfile::tempdir().expect("temp dir");
    let path = dir.path().join("recovery.crimson");
    {
        let mut repo = crimson::repository::Repository::create(
            &path,
            crimson::repository::RepositoryOptions {
                frame_depth: 16,
                buffer_pool_pages: 256,
                ..Default::default()
            },
        )
        .expect("create repository");
        repo.load_tree("committed", &tree)
            .expect("load committed tree");
        repo.inject_crash(storage::CrashPoint::WalAppend(3));
        assert!(
            repo.load_tree("victim", &victim).is_err(),
            "injected crash must interrupt"
        );
        // Crash: drop without flush.
    }
    let repo = crimson::repository::Repository::open(
        &path,
        crimson::repository::RepositoryOptions::default(),
    )
    .expect("reopen");
    let report = repo.recovery_report().expect("recovery report");
    repo.integrity_check().expect("integrity after recovery");
    let rec = repo
        .tree_by_name("committed")
        .expect("committed tree survives");
    assert_eq!(rec.leaf_count as usize, tree.leaf_count());
    assert!(
        repo.find_tree("victim").expect("lookup").is_none(),
        "loser load must vanish"
    );
    report
}

/// Throughput and fsync cost of `threads` concurrent committers pushing a
/// fixed number of small transactions through the group-commit path.
#[derive(Debug, Clone, Copy)]
pub struct CommitCost {
    /// Committer threads.
    pub threads: usize,
    /// Transactions committed (each dirties one page, each fsynced
    /// synchronously — by leading or riding a group round).
    pub commits: u64,
    /// Wall-clock seconds for the whole storm.
    pub seconds: f64,
    /// WAL fsync calls actually issued.
    pub wal_syncs: u64,
    /// Fsyncs avoided by riding a shared group round.
    pub fsyncs_saved: u64,
    /// WAL bytes appended.
    pub wal_bytes: u64,
}

impl CommitCost {
    /// Aggregate durable commits per second.
    pub fn commits_per_sec(&self) -> f64 {
        self.commits as f64 / self.seconds.max(1e-9)
    }

    /// Fsyncs issued per committed transaction — below 1.0 whenever group
    /// commit batches, and well below under contention.
    pub fn fsyncs_per_commit(&self) -> f64 {
        self.wal_syncs as f64 / self.commits.max(1) as f64
    }

    /// WAL bytes per dirtied data byte (one page per transaction) — the
    /// log amplification of the commit path.
    pub fn wal_amplification(&self) -> f64 {
        self.wal_bytes as f64 / (self.commits as f64 * storage::PAGE_SIZE as f64).max(1.0)
    }
}

/// Writer-scalability smoke: `threads` committers split `total_txns` small
/// synchronous transactions (one dirtied page each) over a shared buffer
/// pool. Every commit blocks until durable, so the measured throughput is
/// the group-commit pipeline's, not an async queue's.
pub fn commit_workload(threads: usize, total_txns: usize) -> CommitCost {
    use storage::buffer::BufferPool;
    use storage::pager::Pager;
    let dir = tempfile::tempdir().expect("temp dir");
    let pager = Pager::create(dir.path().join("commit.crdb")).expect("create db");
    let pool = std::sync::Arc::new(BufferPool::with_capacity(pager, 8192).expect("buffer pool"));
    pool.reset_stats();
    let per_thread = total_txns / threads;
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let pool = &pool;
            scope.spawn(move || {
                for k in 0..per_thread {
                    pool.begin_txn_blocking().expect("begin");
                    let pid = pool.allocate_page().expect("allocate");
                    pool.with_page_mut(pid, |p| p.write_u64(0, (t * per_thread + k) as u64))
                        .expect("write");
                    pool.commit_txn(true).expect("commit");
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let stats = pool.stats();
    assert_eq!(stats.commits, (per_thread * threads) as u64);
    CommitCost {
        threads,
        commits: stats.commits,
        seconds,
        wal_syncs: stats.wal_syncs,
        fsyncs_saved: stats.fsyncs_saved,
        wal_bytes: stats.wal_bytes,
    }
}

/// Read tail latency with and without a concurrent writer + background
/// checkpointer, and the checkpoint activity observed during the busy phase.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointTail {
    /// p99 of single-query read latency with the repository quiescent.
    pub quiescent_p99_us: f64,
    /// p99 while a writer bulk-loads trees and the background checkpointer
    /// flushes behind it.
    pub busy_p99_us: f64,
    /// Queries measured in each phase.
    pub queries: usize,
    /// Data-page flushes during the busy phase (evidence the background
    /// checkpointer actually ran).
    pub busy_flushes: u64,
    /// Snapshot-read retries during the busy phase. Under versioned reads
    /// this counts cold snapshot-retired re-pins and must stay flat.
    pub busy_reader_retries: u64,
    /// Queries that failed `Busy` during the busy phase. The versioned-read
    /// contract makes this invariantly zero; tracked in BENCH_commit.json
    /// so a regression is visible across PRs.
    pub busy_errors: u64,
}

fn p99_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    let idx = ((samples.len() as f64) * 0.99).ceil() as usize;
    samples[idx.saturating_sub(1).min(samples.len() - 1)] * 1e6
}

/// Checkpoint-tail smoke: load a base tree into a repository with an
/// aggressive background [`CheckpointPolicy`], measure per-query LCA read
/// latency on a snapshot reader while the repository is quiescent, then
/// again while the main thread keeps bulk-loading trees (group commits +
/// background checkpoints running behind the reads).
pub fn checkpoint_read_tail(leaves: usize, queries: usize, seed: u64) -> CheckpointTail {
    use std::sync::atomic::{AtomicBool, Ordering};
    let tree = workloads::simulated_tree(leaves, seed);
    let dir = tempfile::tempdir().expect("temp dir");
    let mut repo = crimson::repository::Repository::create(
        dir.path().join("tail.crimson"),
        crimson::repository::RepositoryOptions {
            frame_depth: 16,
            buffer_pool_pages: 8192,
            checkpoint: Some(crimson::CheckpointPolicy {
                wal_bytes: Some(128 * 1024),
                interval: Some(std::time::Duration::from_millis(25)),
            }),
            ..Default::default()
        },
    )
    .expect("create repository");
    assert!(repo.has_checkpointer());
    let handle = repo.load_tree("base", &tree).expect("load base");
    let stored = repo.leaves(handle).expect("leaves");
    let reader = repo.reader().expect("snapshot reader");
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs: Vec<(StoredNodeId, StoredNodeId)> = (0..queries)
        .map(|_| {
            (
                *stored.choose(&mut rng).expect("non-empty"),
                *stored.choose(&mut rng).expect("non-empty"),
            )
        })
        .collect();
    let measure = |reader: &crimson::reader::RepositoryReader| -> Vec<f64> {
        pairs
            .iter()
            .map(|&(a, b)| {
                let start = std::time::Instant::now();
                let _ = reader.lca(a, b).expect("lca");
                start.elapsed().as_secs_f64()
            })
            .collect()
    };
    // Warm-up, then the quiescent baseline.
    let _ = measure(&reader);
    let quiescent = measure(&reader);

    // Busy phase: the writer keeps committing bulk loads (each a group
    // commit) so the checkpointer's wal_bytes trigger keeps firing, while
    // the reader re-measures the same query stream.
    let baseline_stats = repo.buffer_stats();
    let stop = AtomicBool::new(false);
    let mut busy = Vec::new();
    let mut busy_errors = 0u64;
    std::thread::scope(|scope| {
        let reader_ref = &reader;
        let stop_ref = &stop;
        let pairs_ref = &pairs;
        let h = scope.spawn(move || {
            let mut samples = Vec::new();
            let mut errors = 0u64;
            'outer: loop {
                for &(a, b) in pairs_ref {
                    if stop_ref.load(Ordering::Relaxed) && samples.len() >= pairs_ref.len() {
                        break 'outer;
                    }
                    let start = std::time::Instant::now();
                    match reader_ref.lca(a, b) {
                        Ok(_) => samples.push(start.elapsed().as_secs_f64()),
                        Err(crimson::CrimsonError::Busy(_)) => errors += 1,
                        Err(e) => panic!("lca under load: {e}"),
                    }
                }
            }
            (samples, errors)
        });
        for i in 0..6u64 {
            let w = workloads::simulated_tree(leaves / 2, seed + 10 + i);
            repo.load_tree(&format!("busy{i}"), &w).expect("busy load");
        }
        stop.store(true, Ordering::Relaxed);
        (busy, busy_errors) = h.join().expect("reader thread");
    });
    let stats = repo.buffer_stats();
    // Stat deltas saturate: a stats reset mid-run (or any counter the pool
    // rebuilds) must read as zero, not underflow-panic in debug.
    CheckpointTail {
        quiescent_p99_us: p99_us(quiescent),
        busy_p99_us: p99_us(busy),
        queries,
        busy_flushes: stats.flushes.saturating_sub(baseline_stats.flushes),
        busy_reader_retries: stats
            .reader_retries
            .saturating_sub(baseline_stats.reader_retries),
        busy_errors,
    }
}

/// Scrub profile: full-file verification throughput on a large repository,
/// the overhead of the throttled incremental mode, and a detection/repair
/// pass over deliberately corrupted on-disk pages.
#[derive(Debug, Clone)]
pub struct ScrubProfile {
    /// Leaves in the scrubbed repository's tree.
    pub leaves: usize,
    /// Pages in the database file.
    pub pages: u64,
    /// Wall-clock seconds for one clean full scrub pass.
    pub clean_seconds: f64,
    /// Wall-clock seconds for a throttled pass (64-page chunks, 200 µs
    /// pauses) — the "background" profile.
    pub throttled_seconds: f64,
    /// Pages corrupted on disk before the detection pass.
    pub corrupted: u64,
    /// Wall-clock seconds for the detection/repair pass.
    pub detect_seconds: f64,
    /// Pages the detection pass healed in place.
    pub pages_repaired: u64,
    /// Pages the detection pass quarantined (no repair source).
    pub pages_quarantined: u64,
}

impl ScrubProfile {
    /// Clean-pass verification throughput.
    pub fn pages_per_sec(&self) -> f64 {
        self.pages as f64 / self.clean_seconds.max(1e-9)
    }
}

/// Scrub smoke: load one large simulated tree, checkpoint, then time a
/// clean scrub, a throttled scrub, and a pass over a file with eight
/// corrupted pages (which the scrub must detect — and, with the pages
/// still buffer-resident, repair from memory).
pub fn scrub_workload(leaves: usize, seed: u64) -> ScrubProfile {
    use std::io::{Read, Seek, SeekFrom, Write};
    let tree = workloads::simulated_tree(leaves, seed);
    let dir = tempfile::tempdir().expect("temp dir");
    let path = dir.path().join("scrub.crimson");
    let mut repo = crimson::repository::Repository::create(
        &path,
        crimson::repository::RepositoryOptions {
            frame_depth: 16,
            // Large enough to keep the whole file resident: the repair
            // phase below heals from the in-memory copies.
            buffer_pool_pages: 32_768,
            ..Default::default()
        },
    )
    .expect("create repository");
    repo.load_tree("scrub", &tree).expect("load tree");
    repo.flush().expect("checkpoint");
    let pages = std::fs::metadata(&path).expect("file metadata").len() / storage::PAGE_SIZE as u64;

    let start = std::time::Instant::now();
    let clean = repo
        .scrub(storage::ScrubOptions::default())
        .expect("clean scrub");
    let clean_seconds = start.elapsed().as_secs_f64();
    assert_eq!(clean.pages.pages_quarantined, 0, "clean file: {clean:?}");
    assert!(clean.integrity.is_some(), "clean scrub runs integrity");

    let start = std::time::Instant::now();
    repo.scrub(storage::ScrubOptions {
        chunk_pages: 64,
        throttle: Some(std::time::Duration::from_micros(200)),
    })
    .expect("throttled scrub");
    let throttled_seconds = start.elapsed().as_secs_f64();

    // Corrupt eight pages behind the pool's back, then let the scrub find
    // them. The frames are still resident, so the damage is healable.
    let corrupted = 8u64.min(pages.saturating_sub(2));
    {
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .expect("open db file");
        for i in 0..corrupted {
            let offset = (2 + i) * storage::PAGE_SIZE as u64 + 1024;
            f.seek(SeekFrom::Start(offset)).expect("seek");
            let mut b = [0u8; 1];
            f.read_exact(&mut b).expect("read");
            b[0] ^= 0xFF;
            f.seek(SeekFrom::Start(offset)).expect("seek");
            f.write_all(&b).expect("write");
        }
        f.sync_all().expect("sync");
    }
    let start = std::time::Instant::now();
    let repair = repo
        .scrub(storage::ScrubOptions::default())
        .expect("repair scrub");
    let detect_seconds = start.elapsed().as_secs_f64();
    let detected = repair.pages.pages_repaired + repair.pages.pages_quarantined;
    assert_eq!(
        detected, corrupted,
        "every corrupted page must be detected: {repair:?}"
    );

    ScrubProfile {
        leaves,
        pages,
        clean_seconds,
        throttled_seconds,
        corrupted,
        detect_seconds,
        pages_repaired: repair.pages.pages_repaired,
        pages_quarantined: repair.pages.pages_quarantined,
    }
}

/// Storage and lookup profile of the content-addressed tree store: on-disk
/// bytes of a duplicate-heavy sweep with and without dedup, the equal-tree
/// comparison short-circuit, and the hashing share of a bulk load.
#[derive(Debug, Clone, Copy)]
pub struct DedupCost {
    /// Reconstructions stored in the sweep.
    pub replicates: usize,
    /// Distinct topologies among them (the rest are duplicates).
    pub distinct: usize,
    /// Data-file bytes after storing every replicate as its own tree.
    pub naive_bytes: u64,
    /// Data-file bytes after storing the sweep through `store_tree_dedup`.
    pub dedup_bytes: u64,
    /// Dedup hits the content-addressed store reported.
    pub dedup_hits: usize,
    /// Leaves per tree in the comparison pair.
    pub compare_leaves: usize,
    /// Best-of-runs seconds for `compare_stored` on a hash-equal pair (the
    /// root-hash short-circuit path).
    pub equal_compare_seconds: f64,
    /// Best-of-runs seconds for `compare_stored` on a same-size unequal
    /// pair (the full streamed comparison — what every equal pair paid
    /// before content addressing).
    pub streamed_compare_seconds: f64,
    /// Leaves in the hash-overhead bulk load.
    pub load_leaves: usize,
    /// Best-of-runs seconds for the bulk `load_tree` (hashing included).
    pub bulk_seconds: f64,
    /// Best-of-runs seconds for computing the canonical clade hashes of the
    /// same tree alone — the incremental CPU cost content addressing added
    /// to the loader.
    pub hash_seconds: f64,
}

impl DedupCost {
    /// `dedup_bytes / naive_bytes` — the storage ratio of the sweep.
    pub fn bytes_ratio(&self) -> f64 {
        self.dedup_bytes as f64 / self.naive_bytes.max(1) as f64
    }

    /// `streamed / equal` — how much the root-hash short-circuit saves on
    /// an equal pair.
    pub fn equal_compare_speedup(&self) -> f64 {
        self.streamed_compare_seconds / self.equal_compare_seconds.max(1e-9)
    }

    /// Hash time as a fraction of the whole bulk load.
    pub fn hash_fraction(&self) -> f64 {
        self.hash_seconds / self.bulk_seconds.max(1e-9)
    }
}

/// Content-addressing smoke: store a duplicate-heavy replicate sweep naively
/// and through `store_tree_dedup` and compare data-file bytes; time the
/// equal-pair comparison short-circuit against the streamed path; measure
/// the hashing share of a large bulk load.
pub fn dedup_workload(
    replicates: usize,
    distinct: usize,
    leaves: usize,
    compare_leaves: usize,
    load_leaves: usize,
    seed: u64,
) -> DedupCost {
    assert!(distinct >= 1 && distinct <= replicates);
    let topologies: Vec<phylo::Tree> = (0..distinct)
        .map(|i| workloads::simulated_tree(leaves, seed + i as u64))
        .collect();
    let opts = || crimson::repository::RepositoryOptions {
        frame_depth: 16,
        buffer_pool_pages: 8192,
        ..Default::default()
    };

    // Naive: every replicate becomes its own fully materialized tree.
    let naive_bytes = {
        let dir = tempfile::tempdir().expect("temp dir");
        let path = dir.path().join("naive.crimson");
        let mut repo =
            crimson::repository::Repository::create(&path, opts()).expect("create repository");
        for i in 0..replicates {
            repo.load_tree(&format!("r{i}"), &topologies[i % distinct])
                .expect("naive store");
        }
        repo.flush().expect("checkpoint");
        std::fs::metadata(&path).expect("file metadata").len()
    };

    // Dedup: duplicates collapse to a reference to the canonical tree.
    let (dedup_bytes, dedup_hits) = {
        let dir = tempfile::tempdir().expect("temp dir");
        let path = dir.path().join("dedup.crimson");
        let mut repo =
            crimson::repository::Repository::create(&path, opts()).expect("create repository");
        let mut hits = 0usize;
        for i in 0..replicates {
            let (_, hit) = repo
                .store_tree_dedup(&format!("r{i}"), &topologies[i % distinct])
                .expect("dedup store");
            hits += hit as usize;
        }
        repo.flush().expect("checkpoint");
        repo.integrity_check().expect("integrity after dedup sweep");
        (std::fs::metadata(&path).expect("file metadata").len(), hits)
    };

    // Equal-pair comparison: two stored copies of the same tree short-circuit
    // on their root hashes; an unequal same-size pair pays the streamed
    // comparison both paid before content addressing.
    let (equal_compare_seconds, streamed_compare_seconds) = {
        let tree = workloads::simulated_tree(compare_leaves, seed + 1000);
        let other = workloads::simulated_tree(compare_leaves, seed + 1001);
        let dir = tempfile::tempdir().expect("temp dir");
        let mut repo =
            crimson::repository::Repository::create(dir.path().join("compare.crimson"), opts())
                .expect("create repository");
        let ha = repo.load_tree("a", &tree).expect("load a");
        let hb = repo.load_tree("b", &tree).expect("load b");
        let hc = repo.load_tree("c", &other).expect("load c");
        assert!(repo.trees_equal(ha, hb).expect("equality"));
        let mut equal = f64::MAX;
        let mut streamed = f64::MAX;
        for _ in 0..3 {
            let start = std::time::Instant::now();
            let cmp = repo.compare_stored(ha, hb, false).expect("equal compare");
            equal = equal.min(start.elapsed().as_secs_f64());
            assert_eq!(cmp.rf.distance, 0);
            let start = std::time::Instant::now();
            let cmp = repo
                .compare_stored(ha, hc, false)
                .expect("streamed compare");
            streamed = streamed.min(start.elapsed().as_secs_f64());
            assert!(cmp.rf.distance > 0);
        }
        (equal, streamed)
    };

    // Hashing share of a large bulk load: the canonical hash pass is the
    // only CPU the content-addressed loader added, so timing it alone
    // bounds the overhead.
    let (bulk_seconds, hash_seconds) = {
        let tree = workloads::simulated_tree(load_leaves, seed + 2000);
        let mut bulk = f64::MAX;
        for _ in 0..2 {
            let dir = tempfile::tempdir().expect("temp dir");
            let mut repo =
                crimson::repository::Repository::create(dir.path().join("load.crimson"), opts())
                    .expect("create repository");
            let start = std::time::Instant::now();
            repo.load_tree("bench", &tree).expect("load tree");
            bulk = bulk.min(start.elapsed().as_secs_f64());
        }
        let mut hash = f64::MAX;
        for _ in 0..2 {
            let start = std::time::Instant::now();
            let hashes = labeling::tree_hashes(&tree);
            hash = hash.min(start.elapsed().as_secs_f64());
            assert_eq!(hashes.len(), tree.node_count());
        }
        (bulk, hash)
    };

    DedupCost {
        replicates,
        distinct,
        naive_bytes,
        dedup_bytes,
        dedup_hits,
        compare_leaves,
        equal_compare_seconds,
        streamed_compare_seconds,
        load_leaves,
        bulk_seconds,
        hash_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_structure_queries() {
        let cost = structure_queries(800, 32, 42);
        eprintln!("smoke E4 lca: {cost:?} ({:.1}x)", cost.speedup());
        assert!(cost.interval_reads > 0);
        assert!(
            cost.reference_reads > cost.interval_reads,
            "interval LCA must not read more pages than the label walk"
        );
    }

    #[test]
    fn smoke_spanning_clade() {
        let cost = spanning_clade(800, 16, 42);
        eprintln!("smoke E4 clade: {cost:?} ({:.1}x)", cost.speedup());
        assert!(
            cost.speedup() >= 5.0,
            "clade must be ≥5× cheaper, got {cost:?}"
        );
    }

    #[test]
    fn smoke_projection() {
        let cost = projection(800, 100, 21);
        eprintln!("smoke E6 projection: {cost:?} ({:.1}x)", cost.speedup());
        assert!(
            cost.speedup() >= 5.0,
            "projection must be ≥5× cheaper, got {cost:?}"
        );
    }

    #[test]
    fn smoke_pattern_match() {
        let cost = pattern_match(800, 32, 33);
        eprintln!("smoke E7 pattern match: {cost:?} ({:.1}x)", cost.speedup());
        assert!(cost.interval_reads > 0);
        assert!(cost.reference_reads > cost.interval_reads);
    }

    #[test]
    fn smoke_concurrent_reads() {
        // The 800-leaf profile at 1/2/4/8 worker threads. The scaling
        // assertion only binds where the hardware can express it.
        let mut costs = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let cost = concurrent_reads(800, 2000, threads, 7);
            eprintln!(
                "smoke concurrent reads: {} threads → {:.0} q/s ({} queries in {:.3}s)",
                cost.threads,
                cost.qps(),
                cost.queries,
                cost.seconds
            );
            costs.push(cost);
        }
        let single = costs[0].qps();
        assert!(single > 0.0);
        // The ≥2.5x assertion only binds when the measurement can be fair:
        // at least 4 hardware threads AND the test binary running serially
        // (RUST_TEST_THREADS=1, as CI's dedicated smoke step sets) — under
        // default libtest parallelism the sibling smoke tests occupy the
        // other cores for the whole window and the number measures the
        // scheduler, not the engine.
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let serial = std::env::var("RUST_TEST_THREADS").as_deref() == Ok("1");
        if hw >= 4 && serial {
            let four = costs[2].qps();
            assert!(
                four >= 2.5 * single,
                "4-thread QueryBatch must reach ≥2.5x single-thread throughput, \
                 got {four:.0} vs {single:.0} q/s on {hw} hardware threads"
            );
        } else {
            eprintln!(
                "skipping the ≥2.5x scaling assertion: {hw} hardware thread(s), \
                 serial run = {serial}"
            );
        }
    }

    #[test]
    fn smoke_load_wal_overhead() {
        let cost = load_workload(800, 42);
        eprintln!(
            "smoke E4 load: {cost:?} ({:.2}x page writes)",
            cost.write_overhead()
        );
        assert!(cost.wal_appends > 0, "a logged load must append to the WAL");
        assert!(cost.wal_bytes > 0);
        assert!(
            cost.write_overhead() < 2.0,
            "WAL must not double the load's data-file page writes, got {cost:?}"
        );
    }

    /// Repo-root path of a machine-readable bench report. Debug builds are
    /// labelled `BENCH_<name>.debug.json` (gitignored): only release-mode
    /// numbers may land under the committed `BENCH_<name>.json` names.
    fn report_path(name: &str) -> std::path::PathBuf {
        let file = if cfg!(debug_assertions) {
            format!("BENCH_{name}.debug.json")
        } else {
            format!("BENCH_{name}.json")
        };
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(file)
    }

    #[test]
    fn smoke_bulk_load() {
        let leaves = 800;
        let cost = bulk_load_workload(leaves, 42, 2);
        eprintln!(
            "smoke bulk load: {} rows, bulk {:.3}s ({:.0} rows/s) vs reference {:.3}s → {:.1}x, \
             WAL ratio {:.3}",
            cost.rows,
            cost.bulk_seconds,
            cost.rows_per_sec(),
            cost.reference_seconds,
            cost.speedup(),
            cost.wal_ratio()
        );
        assert!(
            cost.wal_ratio() <= 1.1,
            "bulk load must log at most 1.1 bytes per data byte, got {:.3}",
            cost.wal_ratio()
        );
        // The load-throughput assertion binds under the same conditions as
        // the concurrency scaling one: enough hardware threads and a serial
        // test run (CI's dedicated release smoke step); under default
        // libtest parallelism the sibling smokes pollute the timing.
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let serial = std::env::var("RUST_TEST_THREADS").as_deref() == Ok("1");
        if hw >= 4 && serial {
            let floor = if cfg!(debug_assertions) { 2.0 } else { 5.0 };
            assert!(
                cost.speedup() >= floor,
                "bulk load must be ≥{floor}x faster than the row-at-a-time path, \
                 got {:.2}x ({cost:?})",
                cost.speedup()
            );
        } else {
            eprintln!(
                "skipping the bulk speedup assertion: {hw} hardware thread(s), serial = {serial}"
            );
        }
        // Machine-readable perf trajectory: the read-path ratios from the
        // sibling smoke profiles plus the load numbers, written at the repo
        // root so successive PRs can be compared.
        let clade = spanning_clade(leaves, 16, 42);
        let proj = projection(leaves, 100, 21);
        let pattern = pattern_match(leaves, 32, 33);
        let report = serde_json::json!({
            "profile": serde_json::json!({
                "leaves": leaves,
                "seed": 42,
                "release": !cfg!(debug_assertions)
            }),
            "load": serde_json::json!({
                "rows": cost.rows,
                "bulk_seconds": cost.bulk_seconds,
                "reference_seconds": cost.reference_seconds,
                "speedup": cost.speedup(),
                "bulk_rows_per_sec": cost.rows_per_sec(),
                "wal_bytes": cost.wal_bytes,
                "wal_bytes_per_data_byte": cost.wal_ratio()
            }),
            "read_path_page_read_ratios": serde_json::json!({
                "spanning_clade": clade.speedup(),
                "projection": proj.speedup(),
                "pattern_match": pattern.speedup()
            })
        });
        let path = report_path("load");
        std::fs::write(
            &path,
            serde_json::to_string(&report).expect("serialize report"),
        )
        .expect("write BENCH_load.json");
        eprintln!("wrote {}", path.display());
    }

    #[test]
    fn smoke_eval_sweep() {
        // The evaluation workload: a full persisted sweep at 1 and 4
        // workers, plus the index-native vs materialize-then-compare
        // ratio on a large stored pair. Writes BENCH_eval.json at the
        // repo root (the release CI step asserts on and uploads it).
        let leaves = 200;
        let sites = 150;
        let single = eval_sweep(leaves, sites, 1, 42);
        let multi = eval_sweep(leaves, sites, 4, 42);
        eprintln!(
            "smoke eval sweep: {} runs in {:.3}s @1 worker ({:.1} runs/s), \
             {:.3}s @4 workers ({} effective, {:.1} runs/s)",
            single.runs,
            single.seconds,
            single.sweeps_per_sec(),
            multi.seconds,
            multi.effective_workers,
            multi.sweeps_per_sec()
        );
        assert_eq!(single.runs, multi.runs);
        // The parallel sweep must not lose to the serial one — but only
        // where the comparison is fair: the runner clamps workers to the
        // core count, so on a 1–3 core runner the "4-worker" sweep is
        // (nearly) serial and measures thread-pool overhead plus scheduler
        // noise, not scaling.
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let serial = std::env::var("RUST_TEST_THREADS").as_deref() == Ok("1");
        if hw >= 4 && serial {
            assert!(
                multi.sweeps_per_sec() >= single.sweeps_per_sec(),
                "4-worker sweep must not regress below serial throughput: \
                 {:.1} vs {:.1} runs/s ({} effective workers)",
                multi.sweeps_per_sec(),
                single.sweeps_per_sec(),
                multi.effective_workers
            );
        } else {
            eprintln!(
                "skipping the sweep speedup assertion: {hw} hardware thread(s), \
                 serial run = {serial}"
            );
        }

        // 10k-leaf pair in release (the acceptance target); a lighter pair
        // under the dev profile so plain `cargo test` stays fast.
        let compare_leaves = if cfg!(debug_assertions) {
            2_000
        } else {
            10_000
        };
        let compare = compare_workload(compare_leaves, 11, 2);
        eprintln!(
            "smoke compare: {} leaves, index-native {:.4}s vs materialized {:.4}s → {:.1}x",
            compare.leaves,
            compare.native_seconds,
            compare.materialized_seconds,
            compare.speedup()
        );
        assert!(
            compare.speedup() > 1.0,
            "index-native comparison must beat materialize-then-compare, got {compare:?}"
        );

        let report = serde_json::json!({
            "profile": serde_json::json!({
                "sweep_leaves": leaves,
                "sweep_sites": sites,
                "compare_leaves": compare.leaves,
                "release": !cfg!(debug_assertions)
            }),
            "sweep": serde_json::json!({
                "runs": single.runs,
                "grid": "2 methods x 3 samplings x 3 replicates",
                "hardware_threads": hw,
                "seconds_1_worker": single.seconds,
                "seconds_4_workers": multi.seconds,
                "effective_workers_at_4": multi.effective_workers,
                "runs_per_sec_1_worker": single.sweeps_per_sec(),
                "runs_per_sec_4_workers": multi.sweeps_per_sec()
            }),
            "compare": serde_json::json!({
                "leaves": compare.leaves,
                "native_seconds": compare.native_seconds,
                "materialized_seconds": compare.materialized_seconds,
                "native_over_materialized_speedup": compare.speedup()
            })
        });
        let path = report_path("eval");
        std::fs::write(
            &path,
            serde_json::to_string(&report).expect("serialize report"),
        )
        .expect("write BENCH_eval.json");
        eprintln!("wrote {}", path.display());
    }

    #[test]
    fn smoke_scrub() {
        // 10k-leaf repository in release (the acceptance target); lighter
        // under the dev profile so plain `cargo test` stays fast. Writes
        // BENCH_scrub.json at the repo root (CI uploads it with the other
        // bench artifacts).
        let leaves = if cfg!(debug_assertions) {
            2_000
        } else {
            10_000
        };
        let profile = scrub_workload(leaves, 42);
        eprintln!(
            "smoke scrub: {} pages verified in {:.3}s ({:.0} pages/s), throttled {:.3}s, \
             {} corrupted → {} repaired + {} quarantined in {:.3}s",
            profile.pages,
            profile.clean_seconds,
            profile.pages_per_sec(),
            profile.throttled_seconds,
            profile.corrupted,
            profile.pages_repaired,
            profile.pages_quarantined,
            profile.detect_seconds
        );
        assert!(profile.pages > 0);
        assert_eq!(
            profile.pages_repaired + profile.pages_quarantined,
            profile.corrupted
        );

        let report = serde_json::json!({
            "profile": serde_json::json!({
                "leaves": profile.leaves,
                "seed": 42,
                "release": !cfg!(debug_assertions)
            }),
            "scrub": serde_json::json!({
                "pages": profile.pages,
                "clean_seconds": profile.clean_seconds,
                "pages_per_sec": profile.pages_per_sec(),
                "throttled_seconds": profile.throttled_seconds,
                "corrupted_pages": profile.corrupted,
                "detect_seconds": profile.detect_seconds,
                "pages_repaired": profile.pages_repaired,
                "pages_quarantined": profile.pages_quarantined
            })
        });
        let path = report_path("scrub");
        std::fs::write(
            &path,
            serde_json::to_string(&report).expect("serialize report"),
        )
        .expect("write BENCH_scrub.json");
        eprintln!("wrote {}", path.display());
    }

    #[test]
    fn smoke_group_commit() {
        // Writer scalability: the same total transaction count split across
        // 1 / 4 / 16 / 64 committer threads, every commit synchronously
        // durable. Group commit must both batch fsyncs under contention and
        // scale aggregate commits/s. Writes BENCH_commit.json at the repo
        // root (the CI writer-scalability job asserts on and uploads it).
        let total = if cfg!(debug_assertions) { 256 } else { 2048 };
        let mut costs = Vec::new();
        for threads in [1usize, 4, 16, 64] {
            let cost = commit_workload(threads, total);
            eprintln!(
                "smoke group commit: {:2} threads → {:7.0} commits/s, \
                 {:.3} fsyncs/txn ({} saved), wal amp {:.3}",
                cost.threads,
                cost.commits_per_sec(),
                cost.fsyncs_per_commit(),
                cost.fsyncs_saved,
                cost.wal_amplification()
            );
            assert!(
                cost.wal_amplification() <= 1.1,
                "commit path must log ≤1.1 bytes per data byte: {cost:?}"
            );
            costs.push(cost);
        }
        let serial_run = costs[0];
        let sixteen = costs[2];
        // Under contention the pipeline must batch: followers ride the
        // leader's fsync, so the 16-thread storm needs well under one fsync
        // per transaction.
        assert!(
            sixteen.fsyncs_saved > 0,
            "16 committers never shared an fsync round: {sixteen:?}"
        );
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let serial = std::env::var("RUST_TEST_THREADS").as_deref() == Ok("1");
        if hw >= 4 && serial {
            assert!(
                sixteen.fsyncs_per_commit() < 0.5,
                "16 committers must average <0.5 fsyncs per commit, got {:.3}",
                sixteen.fsyncs_per_commit()
            );
            if !cfg!(debug_assertions) {
                assert!(
                    sixteen.commits_per_sec() >= 4.0 * serial_run.commits_per_sec(),
                    "16 committers must reach ≥4x serial throughput, got {:.0} vs {:.0}",
                    sixteen.commits_per_sec(),
                    serial_run.commits_per_sec()
                );
            }
        } else {
            eprintln!("skipping contended assertions: {hw} hardware thread(s), serial = {serial}");
        }

        // Read tail latency under a background checkpointer + writer.
        let tail = checkpoint_read_tail(800, 2000, 17);
        eprintln!(
            "smoke checkpoint tail: p99 {:.1}µs quiescent vs {:.1}µs busy \
             ({} flushes, {} reader retries, {} busy errors during busy phase)",
            tail.quiescent_p99_us,
            tail.busy_p99_us,
            tail.busy_flushes,
            tail.busy_reader_retries,
            tail.busy_errors
        );
        assert!(
            tail.busy_flushes > 0,
            "the background checkpointer must have flushed during the busy phase"
        );
        assert_eq!(
            tail.busy_errors, 0,
            "versioned reads must never surface Busy under a committing writer"
        );
        if hw >= 4 && serial && !cfg!(debug_assertions) {
            assert!(
                tail.busy_p99_us <= 2.0 * tail.quiescent_p99_us.max(5.0),
                "p99 read during background checkpoint must stay within 2x of quiescent: \
                 {:.1}µs vs {:.1}µs",
                tail.busy_p99_us,
                tail.quiescent_p99_us
            );
        }

        let report = serde_json::json!({
            "profile": serde_json::json!({
                "total_txns": total,
                "pages_per_txn": 1,
                "release": !cfg!(debug_assertions)
            }),
            "commit_throughput": costs
                .iter()
                .map(|c| {
                    serde_json::json!({
                        "threads": c.threads,
                        "commits": c.commits,
                        "seconds": c.seconds,
                        "commits_per_sec": c.commits_per_sec(),
                        "wal_syncs": c.wal_syncs,
                        "fsyncs_per_commit": c.fsyncs_per_commit(),
                        "fsyncs_saved": c.fsyncs_saved,
                        "wal_amplification": c.wal_amplification()
                    })
                })
                .collect::<Vec<_>>(),
            "speedup_16_vs_1": sixteen.commits_per_sec() / serial_run.commits_per_sec().max(1e-9),
            "read_tail_under_checkpoint": serde_json::json!({
                "queries": tail.queries,
                "quiescent_p99_us": tail.quiescent_p99_us,
                "busy_p99_us": tail.busy_p99_us,
                "busy_over_quiescent": tail.busy_p99_us / tail.quiescent_p99_us.max(1e-9),
                "busy_flushes": tail.busy_flushes,
                "busy_reader_retries": tail.busy_reader_retries,
                "busy_errors": tail.busy_errors
            })
        });
        let path = report_path("commit");
        std::fs::write(
            &path,
            serde_json::to_string(&report).expect("serialize report"),
        )
        .expect("write BENCH_commit.json");
        eprintln!("wrote {}", path.display());
    }

    #[test]
    fn smoke_dedup() {
        // Content-addressing profile: a duplicate-heavy replicate sweep
        // (60% duplicates), the equal-pair comparison short-circuit on a
        // large stored pair, and the hashing share of a large bulk load.
        // Writes BENCH_dedup.json at the repo root (the release CI step
        // asserts on and uploads it). Release sizes match the acceptance
        // targets; the dev profile shrinks them so plain `cargo test`
        // stays fast.
        let (replicates, distinct, leaves, compare_leaves, load_leaves) = if cfg!(debug_assertions)
        {
            (120, 48, 48, 2_000, 5_000)
        } else {
            (1_000, 400, 64, 10_000, 100_000)
        };
        let cost = dedup_workload(
            replicates,
            distinct,
            leaves,
            compare_leaves,
            load_leaves,
            42,
        );
        eprintln!(
            "smoke dedup: {} replicates ({} distinct) → {} bytes naive vs {} dedup \
             ({:.1}% — {} hits); equal compare {:.6}s vs streamed {:.6}s → {:.0}x; \
             hash {:.3}s of {:.3}s bulk load ({:.1}%)",
            cost.replicates,
            cost.distinct,
            cost.naive_bytes,
            cost.dedup_bytes,
            100.0 * cost.bytes_ratio(),
            cost.dedup_hits,
            cost.equal_compare_seconds,
            cost.streamed_compare_seconds,
            cost.equal_compare_speedup(),
            cost.hash_seconds,
            cost.bulk_seconds,
            100.0 * cost.hash_fraction()
        );
        // Every duplicate must have collapsed to a reference.
        assert_eq!(cost.dedup_hits, replicates - distinct);
        // The deterministic acceptance bound: a ≥50%-duplicate sweep stores
        // in at most 60% of the naive bytes.
        assert!(
            cost.bytes_ratio() <= 0.60,
            "deduplicated sweep must use ≤60% of naive bytes, got {:.1}% ({cost:?})",
            100.0 * cost.bytes_ratio()
        );
        // Timing assertions bind only where the measurement is fair (enough
        // cores, serial test run, release codegen) — the numbers are still
        // recorded everywhere.
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let serial = std::env::var("RUST_TEST_THREADS").as_deref() == Ok("1");
        if serial && !cfg!(debug_assertions) {
            assert!(
                cost.equal_compare_speedup() >= 100.0,
                "hash-equal compare must be ≥100x faster than the streamed path, \
                 got {:.0}x ({cost:?})",
                cost.equal_compare_speedup()
            );
            assert!(
                cost.hash_fraction() <= 0.05,
                "canonical hashing must stay within 5% of bulk-load wall time, \
                 got {:.1}% ({cost:?})",
                100.0 * cost.hash_fraction()
            );
        } else {
            eprintln!(
                "skipping dedup timing assertions: {hw} hardware thread(s), \
                 serial = {serial}, release = {}",
                !cfg!(debug_assertions)
            );
        }

        let report = serde_json::json!({
            "profile": serde_json::json!({
                "replicates": cost.replicates,
                "distinct_topologies": cost.distinct,
                "duplicate_fraction": 1.0 - cost.distinct as f64 / cost.replicates as f64,
                "tree_leaves": leaves,
                "compare_leaves": cost.compare_leaves,
                "load_leaves": cost.load_leaves,
                "release": !cfg!(debug_assertions)
            }),
            "storage": serde_json::json!({
                "naive_bytes": cost.naive_bytes,
                "dedup_bytes": cost.dedup_bytes,
                "dedup_over_naive": cost.bytes_ratio(),
                "dedup_hits": cost.dedup_hits
            }),
            "equal_compare": serde_json::json!({
                "equal_seconds": cost.equal_compare_seconds,
                "streamed_seconds": cost.streamed_compare_seconds,
                "short_circuit_speedup": cost.equal_compare_speedup()
            }),
            "hash_overhead": serde_json::json!({
                "bulk_load_seconds": cost.bulk_seconds,
                "hash_seconds": cost.hash_seconds,
                "hash_fraction_of_load": cost.hash_fraction()
            })
        });
        let path = report_path("dedup");
        std::fs::write(
            &path,
            serde_json::to_string(&report).expect("serialize report"),
        )
        .expect("write BENCH_dedup.json");
        eprintln!("wrote {}", path.display());
    }

    #[test]
    fn smoke_recovery() {
        let report = recovery_workload(400, 9);
        eprintln!("smoke recovery: {report:?}");
        assert!(
            report.committed_txns >= 1,
            "the committed load must replay: {report:?}"
        );
        assert!(
            report.loser_txns >= 1,
            "the interrupted load must be undone: {report:?}"
        );
        assert!(report.pages_redone > 0);
    }

    #[test]
    fn smoke_serve() {
        // The served-engine workload: aggregate read q/s and tail latency
        // over loopback TCP at 1/8/64 connections, the batched-vs-unbatched
        // dispatch ratio at 8 connections, and a mixed read/write level
        // with one writer streaming async loads through the group-commit
        // queue. Writes BENCH_serve.json at the repo root (the CI serve
        // job asserts on and uploads it).
        use crate::serve::{serve_mixed, serve_reads, ServeProfile};

        let profile = ServeProfile::smoke();
        let mut levels = Vec::new();
        for connections in [1usize, 8, 64] {
            let level = serve_reads(&profile, connections, true);
            eprintln!(
                "smoke serve: {:2} conns → {:7.0} q/s, p50 {:.2}ms p99 {:.2}ms, \
                 coalesced {:.0}% over {} batches",
                level.connections,
                level.qps,
                level.p50_ms,
                level.p99_ms,
                level.coalesced_fraction * 100.0,
                level.read_batches
            );
            levels.push(level);
        }
        let unbatched8 = serve_reads(&profile, 8, false);
        let batched8 = levels[1];
        let batch_ratio = batched8.qps / unbatched8.qps.max(1e-9);
        eprintln!(
            "smoke serve: 8-conn batched {:.0} q/s vs unbatched {:.0} q/s (ratio {:.2})",
            batched8.qps, unbatched8.qps, batch_ratio
        );
        let mixed = serve_mixed(&profile, 8);
        eprintln!(
            "smoke serve mixed: {:7.0} read q/s (p50 {:.2}ms p99 {:.2}ms) \
             alongside {} writes (write p99 {:.2}ms)",
            mixed.reads.qps,
            mixed.reads.p50_ms,
            mixed.reads.p99_ms,
            mixed.writes,
            mixed.write_p99_ms
        );

        // Invariants that hold on any hardware: every level completed all
        // its reads error-free (run_reader panics otherwise), batching
        // actually coalesced at 8+ connections, and the writer made
        // progress under read pressure.
        assert!(
            batched8.coalesced_fraction > 0.0,
            "8 pipelined connections must produce at least one coalesced batch"
        );
        assert_eq!(
            unbatched8.coalesced_fraction, 0.0,
            "coalesce=false must not batch"
        );
        assert!(mixed.writes > 0, "the mixed-level writer must land trees");

        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let serial = std::env::var("RUST_TEST_THREADS").as_deref() == Ok("1");
        if hw >= 4 && serial {
            // The serving claims, asserted only where they are meaningful:
            // connection scaling, batched-dispatch advantage, bounded tail.
            assert!(
                levels[2].qps >= 3.0 * levels[0].qps,
                "64-conn aggregate read q/s must be ≥3x the 1-conn figure: \
                 {:.0} vs {:.0}",
                levels[2].qps,
                levels[0].qps
            );
            if !cfg!(debug_assertions) {
                assert!(
                    batch_ratio >= 1.0,
                    "batched dispatch must not lose to per-request dispatch \
                     at 8 connections: ratio {batch_ratio:.2}"
                );
                assert!(
                    mixed.reads.p99_ms <= 5.0 * mixed.reads.p50_ms.max(0.05),
                    "read p99 must stay within 5x p50 under mixed load: \
                     p50 {:.2}ms p99 {:.2}ms",
                    mixed.reads.p50_ms,
                    mixed.reads.p99_ms
                );
            }
        } else {
            eprintln!(
                "skipping serve scaling assertions: {hw} hardware thread(s), serial = {serial}"
            );
        }

        let level_json = |l: &crate::serve::ServeLevel| {
            serde_json::json!({
                "connections": l.connections,
                "qps": l.qps,
                "p50_ms": l.p50_ms,
                "p99_ms": l.p99_ms,
                "coalesced_fraction": l.coalesced_fraction,
                "read_batches": l.read_batches
            })
        };
        let report = serde_json::json!({
            "profile": serde_json::json!({
                "leaves": profile.leaves,
                "ops_per_conn": profile.ops_per_conn,
                "pipeline": profile.pipeline,
                "dispatch_workers": profile.workers,
                "hw_threads": hw,
                "release": !cfg!(debug_assertions)
            }),
            "read_levels": levels.iter().map(level_json).collect::<Vec<_>>(),
            "scaling_64_vs_1": levels[2].qps / levels[0].qps.max(1e-9),
            "batched_vs_unbatched_8conn": serde_json::json!({
                "batched_qps": batched8.qps,
                "unbatched_qps": unbatched8.qps,
                "ratio": batch_ratio
            }),
            "mixed_8conn": serde_json::json!({
                "reads": level_json(&mixed.reads),
                "p99_over_p50": mixed.reads.p99_ms / mixed.reads.p50_ms.max(1e-9),
                "writes": mixed.writes,
                "write_p99_ms": mixed.write_p99_ms
            })
        });
        let path = report_path("serve");
        std::fs::write(
            &path,
            serde_json::to_string(&report).expect("serialize report"),
        )
        .expect("write BENCH_serve.json");
        eprintln!("wrote {}", path.display());
    }
}
