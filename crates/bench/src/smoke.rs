//! Criterion-free smoke profile for the benchmark workloads.
//!
//! `cargo bench` pays Criterion's warm-up and measurement windows on every
//! target — minutes of wall clock. This module runs scaled-down versions of
//! the scoreboard experiments (E4 structure queries, E6 projection, E7
//! pattern match) as plain functions returning their page-read counters, and
//! the `#[cfg(test)]` block below pins the interval-index cost advantage in
//! the ordinary test suite: `cargo test -p bench` (or `--release` for truer
//! numbers) exercises every bench code path in seconds.

use crate::workloads;
use crimson::prelude::*;
use rand::prelude::*;

/// Page-read counters for one workload run on the interval-index path and
/// the pre-index reference path.
#[derive(Debug, Clone, Copy)]
pub struct SmokeCost {
    /// Buffer-pool page reads (hits + misses) on the interval-index path.
    pub interval_reads: u64,
    /// Buffer-pool page reads on the label-walk / BFS reference path.
    pub reference_reads: u64,
}

impl SmokeCost {
    /// `reference_reads / interval_reads`, the scoreboard ratio.
    pub fn speedup(&self) -> f64 {
        self.reference_reads as f64 / self.interval_reads.max(1) as f64
    }
}

/// E4 smoke: LCA + ancestor tests over random leaf pairs of a simulated
/// tree. Returns the interval-vs-reference page-read costs of the LCA batch.
pub fn structure_queries(leaves: usize, pairs: usize, seed: u64) -> SmokeCost {
    let tree = workloads::simulated_tree(leaves, seed);
    let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, 4096);
    let stored = repo.leaves(handle).expect("leaves");
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs: Vec<(StoredNodeId, StoredNodeId)> = (0..pairs)
        .map(|_| {
            (
                *stored.choose(&mut rng).expect("non-empty"),
                *stored.choose(&mut rng).expect("non-empty"),
            )
        })
        .collect();

    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    for &(a, b) in &pairs {
        let lca = repo.lca(a, b).expect("lca");
        assert!(repo.is_ancestor(lca, a).expect("ancestor test"));
    }
    let interval_reads = repo.buffer_stats().page_reads();

    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    for &(a, b) in &pairs {
        let _ = repo.lca_label_walk(a, b).expect("reference lca");
    }
    let reference_reads = repo.buffer_stats().page_reads();
    SmokeCost { interval_reads, reference_reads }
}

/// E4 smoke: minimal spanning clade of random leaf sets.
pub fn spanning_clade(leaves: usize, set_size: usize, seed: u64) -> SmokeCost {
    let tree = workloads::simulated_tree(leaves, seed);
    let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, 4096);
    let stored = repo.leaves(handle).expect("leaves");
    let mut rng = StdRng::seed_from_u64(seed);
    let set: Vec<StoredNodeId> =
        stored.choose_multiple(&mut rng, set_size).copied().collect();

    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    let fast = repo.minimal_spanning_clade(&set).expect("clade");
    let interval_reads = repo.buffer_stats().page_reads();

    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    let reference = repo.minimal_spanning_clade_reference(&set).expect("reference clade");
    let reference_reads = repo.buffer_stats().page_reads();
    assert_eq!(fast.len(), reference.len(), "clade implementations disagree");
    SmokeCost { interval_reads, reference_reads }
}

/// E6 smoke: projection of an evenly spread leaf sample.
pub fn projection(leaves: usize, sample: usize, seed: u64) -> SmokeCost {
    let tree = workloads::simulated_tree(leaves, seed);
    let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, 8192);
    let stored = repo.leaves(handle).expect("leaves");
    let step = (stored.len() / sample).max(1);
    let sample: Vec<StoredNodeId> = stored.iter().step_by(step).copied().collect();

    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    let fast = repo.project(handle, &sample).expect("projection");
    let interval_reads = repo.buffer_stats().page_reads();

    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    let reference = repo.project_reference(handle, &sample).expect("reference projection");
    let reference_reads = repo.buffer_stats().page_reads();
    assert!(
        phylo::ops::isomorphic_with_lengths(&fast, &reference, 1e-9),
        "projection implementations disagree"
    );
    SmokeCost { interval_reads, reference_reads }
}

/// E7 smoke: pattern match of a positive (projected) pattern, which rides on
/// the projection path end to end.
pub fn pattern_match(leaves: usize, pattern_size: usize, seed: u64) -> SmokeCost {
    let tree = workloads::simulated_tree(leaves, seed);
    let (_dir, repo, handle) = workloads::repository_with_tree(&tree, 16, 8192);
    let names = workloads::leaf_subset(&tree, pattern_size);
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let pattern = phylo::ops::project_by_names(&tree, &refs).expect("pattern");

    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    let result = repo.pattern_match(handle, &pattern).expect("match");
    assert!(result.exact_topology, "positive pattern must match exactly");
    let interval_reads = repo.buffer_stats().page_reads();

    // Reference cost: the same projection through the pre-index path (the
    // comparison half of pattern match is identical either way).
    let sample: Vec<StoredNodeId> = names
        .iter()
        .map(|n| repo.require_species_node(handle, n).expect("species"))
        .collect();
    repo.clear_cache().expect("clear cache");
    repo.reset_buffer_stats();
    let _ = repo.project_reference(handle, &sample).expect("reference projection");
    let reference_reads = repo.buffer_stats().page_reads();
    SmokeCost { interval_reads, reference_reads }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_structure_queries() {
        let cost = structure_queries(800, 32, 42);
        eprintln!("smoke E4 lca: {cost:?} ({:.1}x)", cost.speedup());
        assert!(cost.interval_reads > 0);
        assert!(
            cost.reference_reads > cost.interval_reads,
            "interval LCA must not read more pages than the label walk"
        );
    }

    #[test]
    fn smoke_spanning_clade() {
        let cost = spanning_clade(800, 16, 42);
        eprintln!("smoke E4 clade: {cost:?} ({:.1}x)", cost.speedup());
        assert!(cost.speedup() >= 5.0, "clade must be ≥5× cheaper, got {cost:?}");
    }

    #[test]
    fn smoke_projection() {
        let cost = projection(800, 100, 21);
        eprintln!("smoke E6 projection: {cost:?} ({:.1}x)", cost.speedup());
        assert!(cost.speedup() >= 5.0, "projection must be ≥5× cheaper, got {cost:?}");
    }

    #[test]
    fn smoke_pattern_match() {
        let cost = pattern_match(800, 32, 33);
        eprintln!("smoke E7 pattern match: {cost:?} ({:.1}x)", cost.speedup());
        assert!(cost.interval_reads > 0);
        assert!(cost.reference_reads > cost.interval_reads);
    }
}
