//! Workload construction shared by the Criterion benchmark targets.
//!
//! Each experiment in `EXPERIMENTS.md` needs trees, repositories and samples
//! of controlled size. Building them here keeps the individual bench files
//! focused on what they measure.

use crimson::prelude::*;
use phylo::builder::caterpillar;
use phylo::Tree;
use simulation::birth_death::yule_tree;
use simulation::gold::{GoldStandard, GoldStandardBuilder};
use simulation::seqevo::Model;
use std::path::PathBuf;

/// Default Criterion settings used by every bench target: small sample counts
/// and short measurement windows so the full harness finishes in minutes
/// while still producing stable medians.
pub fn criterion_config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .configure_from_args()
}

/// A deep, fully unbalanced tree — the worst case for flat Dewey labels.
pub fn deep_tree(depth: usize) -> Tree {
    caterpillar(depth, 1.0)
}

/// A simulated (Yule) phylogeny with `leaves` extant taxa.
pub fn simulated_tree(leaves: usize, seed: u64) -> Tree {
    yule_tree(leaves, 1.0, seed)
}

/// A gold standard with sequences, sized for benchmark-manager experiments.
///
/// The substitution rate is kept low (0.02 per unit time) so that even the
/// most divergent pairs in a multi-thousand-taxon Yule tree stay below the
/// Jukes–Cantor saturation threshold (p < 0.75); saturated pairs would abort
/// the distance correction rather than silently degrade it.
pub fn gold_standard(leaves: usize, sites: usize, seed: u64) -> GoldStandard {
    GoldStandardBuilder::new()
        .leaves(leaves)
        .sequence_length(sites)
        .model(Model::Jc69 { rate: 0.02 })
        .seed(seed)
        .build()
        .expect("gold standard parameters are valid")
}

/// A repository in a fresh temporary directory, loaded with the given tree.
/// The TempDir must be kept alive for the lifetime of the repository.
pub fn repository_with_tree(
    tree: &Tree,
    frame_depth: usize,
    buffer_pool_pages: usize,
) -> (tempfile::TempDir, Repository, TreeHandle) {
    let dir = tempfile::tempdir().expect("temp dir");
    let mut repo = Repository::create(
        dir.path().join("bench.crimson"),
        RepositoryOptions {
            frame_depth,
            buffer_pool_pages,
            ..Default::default()
        },
    )
    .expect("create repository");
    let handle = repo.load_tree("bench", tree).expect("load tree");
    (dir, repo, handle)
}

/// A repository loaded with a full gold standard (tree + sequences).
pub fn repository_with_gold(
    gold: &GoldStandard,
    frame_depth: usize,
    buffer_pool_pages: usize,
) -> (tempfile::TempDir, Repository, TreeHandle) {
    let dir = tempfile::tempdir().expect("temp dir");
    let mut repo = Repository::create(
        dir.path().join("bench.crimson"),
        RepositoryOptions {
            frame_depth,
            buffer_pool_pages,
            ..Default::default()
        },
    )
    .expect("create repository");
    let handle = repo
        .load_gold_standard("gold", gold)
        .expect("load gold standard");
    (dir, repo, handle)
}

/// A mixed read batch over a loaded tree: LCA pairs, ancestor tests,
/// three-node spanning clades and small projections in a deterministic
/// shuffle — the per-query profile the concurrent-reads smoke measures at
/// several worker counts.
pub fn mixed_read_batch(
    repo: &Repository,
    handle: TreeHandle,
    queries: usize,
    seed: u64,
) -> QueryBatch {
    use rand::prelude::*;
    let leaves = repo.leaves(handle).expect("leaves");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = QueryBatch::new();
    while batch.len() < queries {
        let a = *leaves.choose(&mut rng).expect("non-empty");
        let b = *leaves.choose(&mut rng).expect("non-empty");
        match batch.len() % 16 {
            0 => {
                let c = *leaves.choose(&mut rng).expect("non-empty");
                batch.push(BatchQuery::SpanningClade(vec![a, b, c]));
            }
            8 => {
                let sel: Vec<StoredNodeId> = leaves
                    .choose_multiple(&mut rng, 8.min(leaves.len()))
                    .copied()
                    .collect();
                batch.push(BatchQuery::Project(handle, sel));
            }
            n if n % 2 == 0 => {
                batch.push(BatchQuery::Lca(a, b));
            }
            _ => {
                batch.push(BatchQuery::IsAncestor(a, b));
            }
        };
    }
    batch
}

/// Evenly spaced leaf-name subsets of a tree, for projection/pattern inputs.
pub fn leaf_subset(tree: &Tree, count: usize) -> Vec<String> {
    let names = tree.leaf_names();
    assert!(count <= names.len(), "subset larger than the leaf set");
    let step = (names.len() / count).max(1);
    names.into_iter().step_by(step).take(count).collect()
}

/// Path of a scratch NEXUS file containing the given gold standard; used by
/// the loading benchmark.
pub fn write_nexus_file(dir: &tempfile::TempDir, gold: &GoldStandard) -> PathBuf {
    let path = dir.path().join("gold.nex");
    std::fs::write(&path, phylo::nexus::write(&gold.to_nexus())).expect("write NEXUS");
    path
}

/// Print a table header used by the experiment summary output.
pub fn print_table(title: &str, header: &str) {
    println!("\n=== {title} ===");
    println!("{header}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_constructors() {
        let deep = deep_tree(100);
        assert_eq!(deep.max_depth(), 100);
        let sim = simulated_tree(32, 1);
        assert_eq!(sim.leaf_count(), 32);
        let gold = gold_standard(16, 50, 2);
        assert_eq!(gold.taxon_count(), 16);
        let subset = leaf_subset(&sim, 8);
        assert_eq!(subset.len(), 8);
        let (_dir, repo, handle) = repository_with_tree(&sim, 8, 256);
        assert_eq!(repo.tree_record(handle).unwrap().leaf_count, 32);
    }
}
