//! Shared helpers for the Criterion benchmark harness.
//!
//! The real content of this crate lives in `benches/`; this library exposes
//! small utilities (workload construction, result printing) shared by the
//! individual benchmark targets, plus a Criterion-free [`smoke`] profile
//! that runs scaled-down versions of the scoreboard experiments under
//! `cargo test -p bench` (use `--release` for representative numbers). See
//! `EXPERIMENTS.md` for the experiment index.

pub mod serve;
pub mod smoke;
pub mod workloads;
