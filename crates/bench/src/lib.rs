//! Shared helpers for the Criterion benchmark harness.
//!
//! The real content of this crate lives in `benches/`; this library exposes
//! small utilities (workload construction, result printing) shared by the
//! individual benchmark targets. See `EXPERIMENTS.md` for the experiment
//! index.

pub mod workloads;
