//! The `Database` facade: tables, rows and secondary indexes in one place.
//!
//! This is the interface the Crimson repository manager programs against.
//! It deliberately looks like a minimal embedded record store rather than a
//! SQL engine: Crimson's queries are point lookups, range scans and full
//! scans, all of which are expressed directly.

use crate::btree::{BTree, RangeIter};
use crate::buffer::{BufferPool, BufferStats, CrashPoint};
use crate::catalog::{Catalog, IndexMeta, RawIndexMeta, TableMeta};
use crate::error::{StorageError, StorageResult};
use crate::heap::{HeapFile, RecordId};
use crate::page::PageId;
use crate::pager::Pager;
use crate::schema::{Row, Schema};
use crate::value::Value;
use crate::wal::RecoveryReport;
use std::collections::HashMap;
use std::path::Path;

/// Identifier of a table (its position in the catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub usize);

/// Identifier of a raw B+tree index (its position in the catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RawIndexId(pub usize);

/// An embedded, disk-backed record store with secondary B+tree indexes.
pub struct Database {
    pool: BufferPool,
    catalog: Catalog,
    heaps: HashMap<usize, HeapFile>,
    indexes: HashMap<(usize, String), BTree>,
    raw: Vec<BTree>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.catalog.tables.len())
            .field("buffer", &self.pool)
            .finish()
    }
}

impl Database {
    /// Create a new database file with the default buffer-pool capacity.
    pub fn create(path: impl AsRef<Path>) -> StorageResult<Self> {
        Self::create_with_capacity(path, BufferPool::DEFAULT_CAPACITY)
    }

    /// Create a new database file with an explicit buffer-pool capacity
    /// (in pages). Used by the repository-scale experiment (E9).
    pub fn create_with_capacity(path: impl AsRef<Path>, pages: usize) -> StorageResult<Self> {
        let pager = Pager::create(path)?;
        let pool = BufferPool::with_capacity(pager, pages)?;
        Ok(Database {
            pool,
            catalog: Catalog::new(),
            heaps: HashMap::new(),
            indexes: HashMap::new(),
            raw: Vec::new(),
        })
    }

    /// Open an existing database file.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        Self::open_with_capacity(path, BufferPool::DEFAULT_CAPACITY)
    }

    /// Open an existing database file with an explicit buffer-pool capacity.
    /// Opening runs crash recovery against the sibling write-ahead log;
    /// committed transactions since the last checkpoint are replayed and
    /// interrupted ones rolled back before the catalog is read (see
    /// [`Database::recovery_report`]).
    pub fn open_with_capacity(path: impl AsRef<Path>, pages: usize) -> StorageResult<Self> {
        let pager = Pager::open(path)?;
        let pool = BufferPool::with_capacity(pager, pages)?;
        let mut db = Database {
            pool,
            catalog: Catalog::new(),
            heaps: HashMap::new(),
            indexes: HashMap::new(),
            raw: Vec::new(),
        };
        db.reload_meta()?;
        Ok(db)
    }

    /// (Re)build the in-memory catalog, heap and index handles from the
    /// on-disk catalog. Called at open and after a transaction rollback
    /// (rolled-back DDL may have invalidated cached roots and table ids).
    fn reload_meta(&mut self) -> StorageResult<()> {
        let catalog = Catalog::load(&self.pool)?;
        let mut heaps = HashMap::new();
        let mut indexes = HashMap::new();
        for (tid, table) in catalog.tables.iter().enumerate() {
            heaps.insert(
                tid,
                HeapFile::open(&self.pool, PageId(table.heap_first_page))?,
            );
            for idx in &table.indexes {
                indexes.insert(
                    (tid, idx.column.clone()),
                    BTree::open(PageId(idx.root_page)),
                );
            }
        }
        let raw = catalog
            .raw_indexes
            .iter()
            .map(|r| BTree::open(PageId(r.root_page)))
            .collect();
        self.catalog = catalog;
        self.heaps = heaps;
        self.indexes = indexes;
        self.raw = raw;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin an explicit transaction. Every mutation until
    /// [`Database::commit`] is atomic: it either becomes durable as a group
    /// or is invisible after a crash or [`Database::rollback`]. The engine
    /// is single-writer; nested `begin` is an error.
    pub fn begin(&mut self) -> StorageResult<()> {
        self.pool.begin_txn()?;
        Ok(())
    }

    /// Commit the open transaction: page after-images and a commit record
    /// are appended to the write-ahead log and fsynced (group fsync).
    pub fn commit(&mut self) -> StorageResult<()> {
        match self.pool.commit_txn(true) {
            Ok(_) => Ok(()),
            Err(e) => {
                // The pool already rolled the pages back; bring the cached
                // metadata in line with them.
                let _ = self.reload_meta();
                Err(e)
            }
        }
    }

    /// Roll back the open transaction: all page mutations, allocations and
    /// catalog changes since `begin` are undone in memory.
    pub fn rollback(&mut self) -> StorageResult<()> {
        let result = self.pool.rollback_txn();
        let reload = self.reload_meta();
        result.and(reload)
    }

    /// `true` while an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.pool.in_txn()
    }

    /// Run `f` inside the open transaction, or wrap it in an implicit
    /// (auto-commit) transaction of its own. Auto-commits append to the log
    /// without fsyncing — they are atomic on crash but only become durable
    /// at the next explicit commit, eviction or checkpoint.
    fn autocommit<T>(&mut self, f: impl FnOnce(&mut Self) -> StorageResult<T>) -> StorageResult<T> {
        if self.pool.in_txn() {
            return f(self);
        }
        self.pool.begin_txn()?;
        match f(self) {
            Ok(v) => match self.pool.commit_txn(false) {
                Ok(_) => Ok(v),
                Err(e) => {
                    // The pool rolled the pages back; the cached catalog /
                    // heap / index handles must follow them.
                    let _ = self.reload_meta();
                    Err(e)
                }
            },
            Err(e) => {
                if self.pool.rollback_txn().is_ok() {
                    let _ = self.reload_meta();
                }
                Err(e)
            }
        }
    }

    /// The crash-recovery outcome from opening this database, when the file
    /// pre-existed. `None` for a freshly created database.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.pool.recovery_report()
    }

    /// Enable or disable write-ahead logging (bench baseline only; disabled
    /// logging forfeits crash safety). Fails inside a transaction.
    pub fn set_logging(&mut self, enabled: bool) -> StorageResult<()> {
        self.pool.set_logging(enabled)
    }

    /// Inject a simulated crash at the given point (test instrumentation
    /// for the crash-recovery suites; see [`CrashPoint`]).
    pub fn inject_crash(&self, point: CrashPoint) {
        self.pool.inject_crash(point)
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Create a table and return its id.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> StorageResult<TableId> {
        self.autocommit(|db| db.create_table_inner(name, schema))
    }

    fn create_table_inner(&mut self, name: &str, schema: Schema) -> StorageResult<TableId> {
        if self.catalog.table_id(name).is_some() {
            return Err(StorageError::AlreadyExists(name.to_string()));
        }
        let heap = HeapFile::create(&self.pool)?;
        let meta = TableMeta {
            name: name.to_string(),
            schema,
            heap_first_page: heap.first_page().0,
            indexes: Vec::new(),
        };
        self.catalog.tables.push(meta);
        let tid = self.catalog.tables.len() - 1;
        self.heaps.insert(tid, heap);
        self.catalog.save(&self.pool)?;
        Ok(TableId(tid))
    }

    /// Look up a table id by name.
    pub fn table(&self, name: &str) -> StorageResult<TableId> {
        self.catalog
            .table_id(name)
            .map(TableId)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// The schema of a table.
    pub fn schema(&self, table: TableId) -> StorageResult<&Schema> {
        self.table_meta(table).map(|t| &t.schema)
    }

    /// Names of all tables in creation order.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog.tables.iter().map(|t| t.name.clone()).collect()
    }

    /// Create a secondary index over `column`. Existing rows are indexed
    /// immediately. `unique` enables duplicate-key rejection on later inserts
    /// (and fails now if existing data already violates it).
    pub fn create_index(
        &mut self,
        table: TableId,
        column: &str,
        unique: bool,
    ) -> StorageResult<()> {
        self.autocommit(|db| db.create_index_inner(table, column, unique))
    }

    fn create_index_inner(
        &mut self,
        table: TableId,
        column: &str,
        unique: bool,
    ) -> StorageResult<()> {
        let meta = self.table_meta(table)?;
        let col_idx = meta.schema.column_index(column)?;
        if meta.indexes.iter().any(|i| i.column == column) {
            return Err(StorageError::AlreadyExists(format!(
                "{}.{}",
                meta.name, column
            )));
        }
        let index_name = format!("{}_{}_idx", meta.name, column);
        let mut btree = BTree::create(&self.pool)?;
        // Index existing rows.
        let schema = meta.schema.clone();
        let heap = self.heap(table)?.clone();
        for item in heap.scan(&self.pool)? {
            let (rid, bytes) = item?;
            let row = schema.decode_row(&bytes)?;
            let value = &row.values[col_idx];
            let key = Self::index_key(value, rid, unique);
            if unique && btree.contains(&self.pool, &key)? {
                return Err(StorageError::DuplicateKey(format!("{value:?}")));
            }
            btree.insert(&self.pool, &key, rid.to_u64())?;
        }
        let root = btree.root();
        self.catalog.tables[table.0].indexes.push(IndexMeta {
            name: index_name,
            column: column.to_string(),
            unique,
            root_page: root.0,
        });
        self.indexes.insert((table.0, column.to_string()), btree);
        self.catalog.save(&self.pool)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    /// Insert a row, maintaining all indexes. Returns the new record id.
    pub fn insert(&mut self, table: TableId, values: &[Value]) -> StorageResult<RecordId> {
        self.autocommit(|db| db.insert_inner(table, values))
    }

    fn insert_inner(&mut self, table: TableId, values: &[Value]) -> StorageResult<RecordId> {
        let meta = self.table_meta(table)?.clone();
        let bytes = meta.schema.encode_row(values)?;
        // Unique checks before any mutation.
        for idx in &meta.indexes {
            if idx.unique {
                let col = meta.schema.column_index(&idx.column)?;
                let key = values[col].key_bytes();
                let btree = self.index(table, &idx.column)?;
                if btree.contains(&self.pool, &key)? {
                    return Err(StorageError::DuplicateKey(format!("{:?}", values[col])));
                }
            }
        }
        let heap = self
            .heaps
            .get_mut(&table.0)
            .expect("heap loaded for every table");
        let rid = heap.insert(&self.pool, &bytes)?;
        for idx in &meta.indexes {
            let col = meta.schema.column_index(&idx.column)?;
            let key = Self::index_key(&values[col], rid, idx.unique);
            let btree = self
                .indexes
                .get_mut(&(table.0, idx.column.clone()))
                .expect("index loaded");
            let old_root = btree.root();
            btree.insert(&self.pool, &key, rid.to_u64())?;
            if btree.root() != old_root {
                // Root split: persist the new root page in the catalog.
                let root = btree.root().0;
                let entry = self.catalog.tables[table.0]
                    .indexes
                    .iter_mut()
                    .find(|i| i.column == idx.column)
                    .expect("index metadata exists");
                entry.root_page = root;
                self.catalog.save(&self.pool)?;
            }
        }
        Ok(rid)
    }

    /// Fetch a row by record id.
    pub fn get(&self, table: TableId, rid: RecordId) -> StorageResult<Row> {
        let meta = self.table_meta(table)?;
        let heap = self.heap(table)?;
        let bytes = heap.get(&self.pool, rid)?;
        meta.schema.decode_row(&bytes)
    }

    /// Delete a row by record id, maintaining indexes.
    pub fn delete(&mut self, table: TableId, rid: RecordId) -> StorageResult<()> {
        self.autocommit(|db| db.delete_inner(table, rid))
    }

    fn delete_inner(&mut self, table: TableId, rid: RecordId) -> StorageResult<()> {
        let meta = self.table_meta(table)?.clone();
        let row = self.get(table, rid)?;
        for idx in &meta.indexes {
            let col = meta.schema.column_index(&idx.column)?;
            let key = Self::index_key(&row.values[col], rid, idx.unique);
            let btree = self.index(table, &idx.column)?;
            btree.delete(&self.pool, &key, Some(rid.to_u64()))?;
        }
        let heap = self.heap(table)?.clone();
        heap.delete(&self.pool, rid)
    }

    /// Scan every row of a table, in physical order.
    pub fn scan(&self, table: TableId) -> StorageResult<Vec<(RecordId, Row)>> {
        let meta = self.table_meta(table)?;
        let heap = self.heap(table)?;
        let mut out = Vec::new();
        for item in heap.scan(&self.pool)? {
            let (rid, bytes) = item?;
            out.push((rid, meta.schema.decode_row(&bytes)?));
        }
        Ok(out)
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: TableId) -> StorageResult<usize> {
        self.heap(table)?.len(&self.pool)
    }

    // ------------------------------------------------------------------
    // Index access paths
    // ------------------------------------------------------------------

    /// Exact-match lookup through the index on `column`.
    pub fn index_lookup(
        &self,
        table: TableId,
        column: &str,
        value: &Value,
    ) -> StorageResult<Vec<RecordId>> {
        let idx_meta = self.index_meta(table, column)?;
        let btree = self.index(table, column)?;
        if idx_meta.unique {
            Ok(btree
                .get(&self.pool, &value.key_bytes())?
                .map(RecordId::from_u64)
                .into_iter()
                .collect())
        } else {
            // Non-unique keys carry a record-id suffix; scan the value prefix.
            let low = value.key_bytes();
            let mut high = low.clone();
            high.extend_from_slice(&[0xFF; 9]);
            let mut out = Vec::new();
            for item in btree.range(&self.pool, Some(&low), Some(&high))? {
                let (_, v) = item?;
                out.push(RecordId::from_u64(v));
            }
            Ok(out)
        }
    }

    /// Range scan through the index on `column`: `low ≤ value < high`
    /// (`None` = unbounded). Returns record ids in key order.
    pub fn index_range(
        &self,
        table: TableId,
        column: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> StorageResult<Vec<RecordId>> {
        let _ = self.index_meta(table, column)?;
        let btree = self.index(table, column)?;
        let low_key = low.map(|v| v.key_bytes());
        let high_key = high.map(|v| v.key_bytes());
        let mut out = Vec::new();
        for item in btree.range(&self.pool, low_key.as_deref(), high_key.as_deref())? {
            let (_, v) = item?;
            out.push(RecordId::from_u64(v));
        }
        Ok(out)
    }

    /// Convenience: fetch full rows through [`Database::index_lookup`].
    pub fn lookup_rows(
        &self,
        table: TableId,
        column: &str,
        value: &Value,
    ) -> StorageResult<Vec<(RecordId, Row)>> {
        let rids = self.index_lookup(table, column, value)?;
        rids.into_iter()
            .map(|rid| Ok((rid, self.get(table, rid)?)))
            .collect()
    }

    // ------------------------------------------------------------------
    // Raw (table-less) B+tree indexes
    // ------------------------------------------------------------------

    /// Create a raw B+tree index mapping application-encoded keys to `u64`
    /// payloads, with no backing heap table. Use for covering indexes where
    /// the key bytes carry the whole entry (e.g. the node-interval index).
    pub fn create_raw_index(&mut self, name: &str) -> StorageResult<RawIndexId> {
        self.autocommit(|db| db.create_raw_index_inner(name))
    }

    fn create_raw_index_inner(&mut self, name: &str) -> StorageResult<RawIndexId> {
        if self.catalog.raw_indexes.iter().any(|r| r.name == name) {
            return Err(StorageError::AlreadyExists(name.to_string()));
        }
        let btree = BTree::create(&self.pool)?;
        self.catalog.raw_indexes.push(RawIndexMeta {
            name: name.to_string(),
            root_page: btree.root().0,
        });
        self.raw.push(btree);
        self.catalog.save(&self.pool)?;
        Ok(RawIndexId(self.raw.len() - 1))
    }

    /// Look up a raw index id by name.
    pub fn raw_index(&self, name: &str) -> StorageResult<RawIndexId> {
        self.catalog
            .raw_indexes
            .iter()
            .position(|r| r.name == name)
            .map(RawIndexId)
            .ok_or_else(|| StorageError::UnknownIndex(name.to_string()))
    }

    /// Insert a key/value pair into a raw index. Root splits are persisted
    /// in the catalog.
    pub fn raw_insert(&mut self, id: RawIndexId, key: &[u8], value: u64) -> StorageResult<()> {
        self.autocommit(|db| db.raw_insert_inner(id, key, value))
    }

    fn raw_insert_inner(&mut self, id: RawIndexId, key: &[u8], value: u64) -> StorageResult<()> {
        let btree = self
            .raw
            .get_mut(id.0)
            .ok_or_else(|| StorageError::UnknownIndex(format!("raw #{}", id.0)))?;
        let old_root = btree.root();
        btree.insert(&self.pool, key, value)?;
        if btree.root() != old_root {
            self.catalog.raw_indexes[id.0].root_page = btree.root().0;
            self.catalog.save(&self.pool)?;
        }
        Ok(())
    }

    /// Point lookup in a raw index.
    pub fn raw_get(&self, id: RawIndexId, key: &[u8]) -> StorageResult<Option<u64>> {
        self.raw_btree(id)?.get(&self.pool, key)
    }

    /// Range scan over a raw index: `low ≤ key < high`, `None` = unbounded.
    /// The iterator yields `(key, value)` pairs straight from pinned leaf
    /// frames — no heap rows are fetched.
    pub fn raw_range(
        &self,
        id: RawIndexId,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
    ) -> StorageResult<RangeIter<'_>> {
        self.raw_btree(id)?.range(&self.pool, low, high)
    }

    /// Visit the first raw-index entry in `low ≤ key < high` with `f` on
    /// the borrowed in-page key bytes — an allocation-free point probe for
    /// covering keys.
    pub fn raw_first_in_range<R>(
        &self,
        id: RawIndexId,
        low: &[u8],
        high: &[u8],
        f: impl FnOnce(&[u8], u64) -> R,
    ) -> StorageResult<Option<R>> {
        self.raw_btree(id)?.first_in_range(&self.pool, low, high, f)
    }

    /// Number of entries in a raw index (full scan).
    pub fn raw_len(&self, id: RawIndexId) -> StorageResult<usize> {
        self.raw_btree(id)?.len(&self.pool)
    }

    fn raw_btree(&self, id: RawIndexId) -> StorageResult<&BTree> {
        self.raw
            .get(id.0)
            .ok_or_else(|| StorageError::UnknownIndex(format!("raw #{}", id.0)))
    }

    // ------------------------------------------------------------------
    // Maintenance
    // ------------------------------------------------------------------

    /// Checkpoint: persist the catalog, write every dirty page and the
    /// header to the data file, fsync it, and truncate the write-ahead log.
    /// Fails while a transaction is open (commit or roll back first).
    pub fn flush(&mut self) -> StorageResult<()> {
        if self.pool.in_txn() {
            return Err(StorageError::TransactionActive);
        }
        self.catalog.save(&self.pool)?;
        self.pool.flush()
    }

    /// Buffer-pool statistics (hits, misses, evictions).
    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// Reset buffer-pool statistics.
    pub fn reset_buffer_stats(&self) {
        self.pool.reset_stats()
    }

    /// Drop cached pages (after flushing) to measure cold-start behaviour.
    pub fn clear_cache(&self) -> StorageResult<()> {
        self.pool.clear_cache()
    }

    /// Total pages allocated in the file.
    pub fn page_count(&self) -> u64 {
        self.pool.page_count()
    }

    /// Direct access to the buffer pool (used by tests and benches).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    fn index_key(value: &Value, rid: RecordId, unique: bool) -> Vec<u8> {
        let mut key = value.key_bytes();
        if !unique {
            key.extend_from_slice(&rid.to_u64().to_be_bytes());
        }
        key
    }

    fn table_meta(&self, table: TableId) -> StorageResult<&TableMeta> {
        self.catalog
            .tables
            .get(table.0)
            .ok_or_else(|| StorageError::UnknownTable(format!("#{}", table.0)))
    }

    fn index_meta(&self, table: TableId, column: &str) -> StorageResult<&IndexMeta> {
        self.table_meta(table)?
            .indexes
            .iter()
            .find(|i| i.column == column)
            .ok_or_else(|| StorageError::UnknownIndex(column.to_string()))
    }

    fn heap(&self, table: TableId) -> StorageResult<&HeapFile> {
        self.heaps
            .get(&table.0)
            .ok_or_else(|| StorageError::UnknownTable(format!("#{}", table.0)))
    }

    fn index(&self, table: TableId, column: &str) -> StorageResult<&BTree> {
        self.indexes
            .get(&(table.0, column.to_string()))
            .ok_or_else(|| StorageError::UnknownIndex(column.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;
    use tempfile::tempdir;

    fn species_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("name", ValueType::Text),
            ColumnDef::not_null("node_id", ValueType::Int),
            ColumnDef::new("time", ValueType::Float),
        ])
    }

    fn fresh() -> (tempfile::TempDir, Database) {
        let dir = tempdir().unwrap();
        let db = Database::create(dir.path().join("db.crdb")).unwrap();
        (dir, db)
    }

    #[test]
    fn create_insert_get() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        let rid = db
            .insert(t, &[Value::text("Bha"), Value::Int(1), Value::Float(2.25)])
            .unwrap();
        let row = db.get(t, rid).unwrap();
        assert_eq!(row.values[0], Value::text("Bha"));
        assert_eq!(db.row_count(t).unwrap(), 1);
        assert_eq!(db.table_names(), vec!["species"]);
        assert_eq!(db.table("species").unwrap(), t);
        assert!(db.table("nope").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let (_d, mut db) = fresh();
        db.create_table("t", species_schema()).unwrap();
        assert!(matches!(
            db.create_table("t", species_schema()),
            Err(StorageError::AlreadyExists(_))
        ));
    }

    #[test]
    fn schema_validation_on_insert() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        assert!(db
            .insert(t, &[Value::Int(1), Value::Int(2), Value::Null])
            .is_err());
        assert!(db.insert(t, &[Value::text("x")]).is_err());
    }

    #[test]
    fn unique_index_enforced() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        db.create_index(t, "name", true).unwrap();
        db.insert(t, &[Value::text("Bha"), Value::Int(1), Value::Null])
            .unwrap();
        let err = db.insert(t, &[Value::text("Bha"), Value::Int(2), Value::Null]);
        assert!(matches!(err, Err(StorageError::DuplicateKey(_))));
        // Different key is fine.
        db.insert(t, &[Value::text("Lla"), Value::Int(2), Value::Null])
            .unwrap();
    }

    #[test]
    fn non_unique_index_lookup() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.create_index(t, "name", false).unwrap();
        for i in 0..10 {
            db.insert(t, &[Value::text("dup"), Value::Int(i), Value::Null])
                .unwrap();
        }
        db.insert(t, &[Value::text("solo"), Value::Int(99), Value::Null])
            .unwrap();
        assert_eq!(
            db.index_lookup(t, "name", &Value::text("dup"))
                .unwrap()
                .len(),
            10
        );
        assert_eq!(
            db.index_lookup(t, "name", &Value::text("solo"))
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            db.index_lookup(t, "name", &Value::text("missing"))
                .unwrap()
                .len(),
            0
        );
        let rows = db.lookup_rows(t, "name", &Value::text("solo")).unwrap();
        assert_eq!(rows[0].1.values[1], Value::Int(99));
    }

    #[test]
    fn index_created_after_data_covers_existing_rows() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        for i in 0..50 {
            db.insert(
                t,
                &[
                    Value::text(format!("n{i}")),
                    Value::Int(i),
                    Value::Float(i as f64),
                ],
            )
            .unwrap();
        }
        db.create_index(t, "node_id", true).unwrap();
        let hits = db.index_lookup(t, "node_id", &Value::Int(31)).unwrap();
        assert_eq!(hits.len(), 1);
        let row = db.get(t, hits[0]).unwrap();
        assert_eq!(row.values[0], Value::text("n31"));
    }

    #[test]
    fn index_range_scan_on_float_time() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.create_index(t, "time", false).unwrap();
        for i in 0..100 {
            db.insert(
                t,
                &[
                    Value::text(format!("n{i}")),
                    Value::Int(i),
                    Value::Float(i as f64 * 0.1),
                ],
            )
            .unwrap();
        }
        // time >= 5.0 (the paper's "total weight exceeds t" predicate)
        let hits = db
            .index_range(t, "time", Some(&Value::Float(5.0)), None)
            .unwrap();
        assert_eq!(hits.len(), 50);
        // 2.0 <= time < 3.0
        let hits = db
            .index_range(
                t,
                "time",
                Some(&Value::Float(2.0)),
                Some(&Value::Float(3.0)),
            )
            .unwrap();
        assert_eq!(hits.len(), 10);
        // Results come back ordered by time.
        let times: Vec<f64> = hits
            .iter()
            .map(|rid| db.get(t, *rid).unwrap().values[2].as_float().unwrap())
            .collect();
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn delete_removes_from_indexes() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.create_index(t, "name", false).unwrap();
        let rid = db
            .insert(t, &[Value::text("gone"), Value::Int(1), Value::Null])
            .unwrap();
        db.insert(t, &[Value::text("kept"), Value::Int(2), Value::Null])
            .unwrap();
        db.delete(t, rid).unwrap();
        assert!(db.get(t, rid).is_err());
        assert_eq!(
            db.index_lookup(t, "name", &Value::text("gone"))
                .unwrap()
                .len(),
            0
        );
        assert_eq!(
            db.index_lookup(t, "name", &Value::text("kept"))
                .unwrap()
                .len(),
            1
        );
        assert_eq!(db.row_count(t).unwrap(), 1);
    }

    #[test]
    fn scan_returns_all_rows() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        for i in 0..20 {
            db.insert(
                t,
                &[Value::text(format!("n{i}")), Value::Int(i), Value::Null],
            )
            .unwrap();
        }
        let rows = db.scan(t).unwrap();
        assert_eq!(rows.len(), 20);
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("db.crdb");
        {
            let mut db = Database::create(&path).unwrap();
            let t = db.create_table("species", species_schema()).unwrap();
            db.create_index(t, "name", true).unwrap();
            db.create_index(t, "time", false).unwrap();
            for i in 0..1000 {
                db.insert(
                    t,
                    &[
                        Value::text(format!("sp{i}")),
                        Value::Int(i),
                        Value::Float(i as f64),
                    ],
                )
                .unwrap();
            }
            db.flush().unwrap();
        }
        let db = Database::open(&path).unwrap();
        let t = db.table("species").unwrap();
        assert_eq!(db.row_count(t).unwrap(), 1000);
        let hits = db.index_lookup(t, "name", &Value::text("sp500")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(db.get(t, hits[0]).unwrap().values[1], Value::Int(500));
        let range = db
            .index_range(t, "time", Some(&Value::Float(990.0)), None)
            .unwrap();
        assert_eq!(range.len(), 10);
    }

    #[test]
    fn small_buffer_pool_many_rows() {
        let dir = tempdir().unwrap();
        let mut db = Database::create_with_capacity(dir.path().join("db.crdb"), 16).unwrap();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.create_index(t, "node_id", true).unwrap();
        for i in 0..2000 {
            db.insert(
                t,
                &[
                    Value::text(format!("n{i}")),
                    Value::Int(i),
                    Value::Float(i as f64),
                ],
            )
            .unwrap();
        }
        for probe in [0i64, 555, 1999] {
            let hits = db.index_lookup(t, "node_id", &Value::Int(probe)).unwrap();
            assert_eq!(hits.len(), 1, "probe {probe}");
        }
        assert!(db.buffer_stats().evictions > 0);
        assert!(db.page_count() > 16);
    }

    #[test]
    fn raw_index_roundtrip_and_persistence() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("db.crdb");
        {
            let mut db = Database::create(&path).unwrap();
            let idx = db.create_raw_index("intervals").unwrap();
            assert!(matches!(
                db.create_raw_index("intervals"),
                Err(StorageError::AlreadyExists(_))
            ));
            // Enough entries to split the root so the catalog root update is
            // exercised.
            for i in 0..5000u64 {
                let mut key = i.to_be_bytes().to_vec();
                key.extend_from_slice(&[0xAB; 9]); // covering payload bytes
                db.raw_insert(idx, &key, i * 2).unwrap();
            }
            db.flush().unwrap();
        }
        let db = Database::open(&path).unwrap();
        let idx = db.raw_index("intervals").unwrap();
        assert!(db.raw_index("missing").is_err());
        let mut probe = 1234u64.to_be_bytes().to_vec();
        probe.extend_from_slice(&[0xAB; 9]);
        assert_eq!(db.raw_get(idx, &probe).unwrap(), Some(2468));
        assert_eq!(db.raw_len(idx).unwrap(), 5000);
        // Bounded range scan decodes covering keys without heap access.
        let low = 100u64.to_be_bytes();
        let high = 110u64.to_be_bytes();
        let hits: Vec<(Vec<u8>, u64)> = db
            .raw_range(idx, Some(&low), Some(&high))
            .unwrap()
            .collect::<StorageResult<_>>()
            .unwrap();
        assert_eq!(hits.len(), 10);
        assert_eq!(hits[0].1, 200);
        assert_eq!(&hits[0].0[8..], &[0xAB; 9]);
    }

    #[test]
    fn duplicate_index_rejected_and_unknown_column() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.create_index(t, "name", false).unwrap();
        assert!(matches!(
            db.create_index(t, "name", false),
            Err(StorageError::AlreadyExists(_))
        ));
        assert!(matches!(
            db.create_index(t, "ghost", false),
            Err(StorageError::UnknownColumn(_))
        ));
        assert!(db.index_lookup(t, "ghost", &Value::Int(1)).is_err());
    }

    #[test]
    fn unique_index_creation_fails_on_existing_duplicates() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.insert(t, &[Value::text("dup"), Value::Int(1), Value::Null])
            .unwrap();
        db.insert(t, &[Value::text("dup"), Value::Int(2), Value::Null])
            .unwrap();
        assert!(matches!(
            db.create_index(t, "name", true),
            Err(StorageError::DuplicateKey(_))
        ));
    }

    #[test]
    fn cold_cache_reads_still_work() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.create_index(t, "node_id", true).unwrap();
        for i in 0..500 {
            db.insert(
                t,
                &[Value::text(format!("n{i}")), Value::Int(i), Value::Null],
            )
            .unwrap();
        }
        db.clear_cache().unwrap();
        db.reset_buffer_stats();
        let hits = db.index_lookup(t, "node_id", &Value::Int(123)).unwrap();
        assert_eq!(hits.len(), 1);
        assert!(db.buffer_stats().misses > 0);
        assert_eq!(db.buffer_stats().hit_ratio(), db.buffer_stats().hit_ratio());
    }
}
