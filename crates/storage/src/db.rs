//! The `Database` facade: tables, rows and secondary indexes in one place.
//!
//! This is the interface the Crimson repository manager programs against.
//! It deliberately looks like a minimal embedded record store rather than a
//! SQL engine: Crimson's queries are point lookups, range scans and full
//! scans, all of which are expressed directly.
//!
//! ## Concurrent reads
//!
//! The engine is single-writer, many-reader. The [`Database`] value is the
//! writer: mutations take `&mut self` and serialize on the buffer pool's io
//! latch. Any number of [`DbReader`] handles (see [`Database::reader`]) may
//! read concurrently from other threads: a reader routes every page access
//! through the pool's committed-[`Snapshot`] view, so an in-flight
//! transaction is invisible, and refreshes its cached catalog (table roots,
//! heap heads) whenever the pool's read generation advances — i.e. after
//! every commit. A reader that must see one *frozen* commit point across a
//! multi-page operation pins an epoch ([`DbReader::pin_epoch`]) and reads
//! through the resulting [`EpochView`] ([`DbReader::at_epoch`]) — the
//! buffer pool's version chains serve every page as of that commit
//! sequence. The [`DbRead`] trait abstracts over all of these, which lets
//! higher layers write their query engines once.

use crate::btree::{BTree, RangeIter};
use crate::buffer::{
    BufferPool, BufferStats, CheckpointPolicy, CheckpointerGuard, CrashPoint, EpochPin, PageSource,
    PinnedPage, ScrubOptions, ScrubStats, Snapshot,
};
use crate::catalog::{Catalog, IndexMeta, RawIndexMeta, TableMeta};
use crate::error::{StorageError, StorageResult};
use crate::heap::{HeapFile, RecordId};
use crate::io::{RetryPolicy, SharedFaultSchedule};
use crate::page::{Page, PageId};
use crate::pager::Pager;
use crate::schema::{Row, Schema};
use crate::value::Value;
use crate::wal::{Lsn, RecoveryReport};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Identifier of a table (its position in the catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub usize);

/// Identifier of a raw B+tree index (its position in the catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RawIndexId(pub usize);

/// Read-only record-store surface shared by the writer ([`Database`], which
/// reads its own current state) and concurrent snapshot readers
/// ([`DbReader`], which read the last committed state). Higher layers write
/// their query engines generically over this trait.
pub trait DbRead {
    /// Fetch a row by record id.
    fn get(&self, table: TableId, rid: RecordId) -> StorageResult<Row>;
    /// Scan every row of a table, in physical order.
    fn scan(&self, table: TableId) -> StorageResult<Vec<(RecordId, Row)>>;
    /// Number of rows in a table.
    fn row_count(&self, table: TableId) -> StorageResult<usize>;
    /// Exact-match lookup through the index on `column`, returning full rows.
    fn lookup_rows(
        &self,
        table: TableId,
        column: &str,
        value: &Value,
    ) -> StorageResult<Vec<(RecordId, Row)>>;
    /// Range scan through the index on `column`: `low ≤ value < high`.
    fn index_range(
        &self,
        table: TableId,
        column: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> StorageResult<Vec<RecordId>>;
    /// Point lookup in a raw index.
    fn raw_get(&self, id: RawIndexId, key: &[u8]) -> StorageResult<Option<u64>>;
    /// Number of entries in a raw index (full scan).
    fn raw_len(&self, id: RawIndexId) -> StorageResult<usize>;
    /// Visit the first raw-index entry in `low ≤ key < high` with `f` on
    /// the borrowed in-page key bytes.
    fn raw_first_in_range<R>(
        &self,
        id: RawIndexId,
        low: &[u8],
        high: &[u8],
        f: impl FnOnce(&[u8], u64) -> R,
    ) -> StorageResult<Option<R>>;
    /// Walk a raw-index key range in order, calling `f` per entry; `f`
    /// returning `Ok(false)` stops the scan early.
    fn raw_scan(
        &self,
        id: RawIndexId,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], u64) -> StorageResult<bool>,
    ) -> StorageResult<()>;
}

/// In-memory handles derived from the on-disk catalog: table metadata, heap
/// files and B+tree roots. The writer owns one (kept in lockstep with its
/// mutations); every [`DbReader`] owns its own copy (rebuilt from the
/// committed catalog when the read generation advances).
#[derive(Clone)]
struct Meta {
    catalog: Catalog,
    heaps: HashMap<usize, HeapFile>,
    indexes: HashMap<(usize, String), BTree>,
    raw: Vec<BTree>,
}

impl Meta {
    fn empty() -> Meta {
        Meta {
            catalog: Catalog::new(),
            heaps: HashMap::new(),
            indexes: HashMap::new(),
            raw: Vec::new(),
        }
    }

    /// Build the handles from the catalog read through `src`. `for_write`
    /// additionally locates every heap's tail page (needed only by
    /// `insert`); readers skip that walk, so their per-commit catalog
    /// refresh costs O(catalog pages), not O(heap pages).
    fn load_from<S: PageSource>(src: S, for_write: bool) -> StorageResult<Meta> {
        let catalog = Catalog::load(src)?;
        let mut heaps = HashMap::new();
        let mut indexes = HashMap::new();
        for (tid, table) in catalog.tables.iter().enumerate() {
            let first = PageId(table.heap_first_page);
            let heap = if for_write {
                HeapFile::open(src, first)?
            } else {
                HeapFile::open_read_only(first)
            };
            heaps.insert(tid, heap);
            for idx in &table.indexes {
                indexes.insert(
                    (tid, idx.column.clone()),
                    BTree::open(PageId(idx.root_page)),
                );
            }
        }
        let raw = catalog
            .raw_indexes
            .iter()
            .map(|r| BTree::open(PageId(r.root_page)))
            .collect();
        Ok(Meta {
            catalog,
            heaps,
            indexes,
            raw,
        })
    }

    fn table_meta(&self, table: TableId) -> StorageResult<&TableMeta> {
        self.catalog
            .tables
            .get(table.0)
            .ok_or_else(|| StorageError::UnknownTable(format!("#{}", table.0)))
    }

    fn index_meta(&self, table: TableId, column: &str) -> StorageResult<&IndexMeta> {
        self.table_meta(table)?
            .indexes
            .iter()
            .find(|i| i.column == column)
            .ok_or_else(|| StorageError::UnknownIndex(column.to_string()))
    }

    fn heap(&self, table: TableId) -> StorageResult<&HeapFile> {
        self.heaps
            .get(&table.0)
            .ok_or_else(|| StorageError::UnknownTable(format!("#{}", table.0)))
    }

    fn index(&self, table: TableId, column: &str) -> StorageResult<&BTree> {
        self.indexes
            .get(&(table.0, column.to_string()))
            .ok_or_else(|| StorageError::UnknownIndex(column.to_string()))
    }

    fn raw_btree(&self, id: RawIndexId) -> StorageResult<&BTree> {
        self.raw
            .get(id.0)
            .ok_or_else(|| StorageError::UnknownIndex(format!("raw #{}", id.0)))
    }

    // ---- read operations, generic over the page source ----

    fn get<S: PageSource>(&self, src: S, table: TableId, rid: RecordId) -> StorageResult<Row> {
        let meta = self.table_meta(table)?;
        let heap = self.heap(table)?;
        let bytes = heap.get(src, rid)?;
        meta.schema.decode_row(&bytes)
    }

    fn scan<S: PageSource>(&self, src: S, table: TableId) -> StorageResult<Vec<(RecordId, Row)>> {
        let meta = self.table_meta(table)?;
        let heap = self.heap(table)?;
        let mut out = Vec::new();
        for item in heap.scan(src)? {
            let (rid, bytes) = item?;
            out.push((rid, meta.schema.decode_row(&bytes)?));
        }
        Ok(out)
    }

    fn row_count<S: PageSource>(&self, src: S, table: TableId) -> StorageResult<usize> {
        self.heap(table)?.len(src)
    }

    fn index_lookup<S: PageSource>(
        &self,
        src: S,
        table: TableId,
        column: &str,
        value: &Value,
    ) -> StorageResult<Vec<RecordId>> {
        let idx_meta = self.index_meta(table, column)?;
        let btree = self.index(table, column)?;
        if idx_meta.unique {
            Ok(btree
                .get(src, &value.key_bytes())?
                .map(RecordId::from_u64)
                .into_iter()
                .collect())
        } else {
            // Non-unique keys carry a record-id suffix; scan the value prefix.
            let low = value.key_bytes();
            let mut high = low.clone();
            high.extend_from_slice(&[0xFF; 9]);
            let mut out = Vec::new();
            for item in btree.range(src, Some(&low), Some(&high))? {
                let (_, v) = item?;
                out.push(RecordId::from_u64(v));
            }
            Ok(out)
        }
    }

    fn index_range<S: PageSource>(
        &self,
        src: S,
        table: TableId,
        column: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> StorageResult<Vec<RecordId>> {
        let _ = self.index_meta(table, column)?;
        let btree = self.index(table, column)?;
        let low_key = low.map(|v| v.key_bytes());
        let high_key = high.map(|v| v.key_bytes());
        let mut out = Vec::new();
        for item in btree.range(src, low_key.as_deref(), high_key.as_deref())? {
            let (_, v) = item?;
            out.push(RecordId::from_u64(v));
        }
        Ok(out)
    }

    fn lookup_rows<S: PageSource>(
        &self,
        src: S,
        table: TableId,
        column: &str,
        value: &Value,
    ) -> StorageResult<Vec<(RecordId, Row)>> {
        let rids = self.index_lookup(src, table, column, value)?;
        rids.into_iter()
            .map(|rid| Ok((rid, self.get(src, table, rid)?)))
            .collect()
    }

    fn raw_get<S: PageSource>(
        &self,
        src: S,
        id: RawIndexId,
        key: &[u8],
    ) -> StorageResult<Option<u64>> {
        self.raw_btree(id)?.get(src, key)
    }

    fn raw_len<S: PageSource>(&self, src: S, id: RawIndexId) -> StorageResult<usize> {
        self.raw_btree(id)?.len(src)
    }

    fn raw_first_in_range<S: PageSource, R>(
        &self,
        src: S,
        id: RawIndexId,
        low: &[u8],
        high: &[u8],
        f: impl FnOnce(&[u8], u64) -> R,
    ) -> StorageResult<Option<R>> {
        self.raw_btree(id)?.first_in_range(src, low, high, f)
    }

    fn raw_scan<S: PageSource>(
        &self,
        src: S,
        id: RawIndexId,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], u64) -> StorageResult<bool>,
    ) -> StorageResult<()> {
        for item in self.raw_btree(id)?.range(src, low, high)? {
            let (key, value) = item?;
            if !f(&key, value)? {
                break;
            }
        }
        Ok(())
    }
}

/// An embedded, disk-backed record store with secondary B+tree indexes.
/// This value is the single writer; spawn [`DbReader`]s for concurrent
/// snapshot reads.
pub struct Database {
    pool: Arc<BufferPool>,
    meta: Meta,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.meta.catalog.tables.len())
            .field("buffer", &self.pool)
            .finish()
    }
}

impl Database {
    /// Create a new database file with the default buffer-pool capacity.
    pub fn create(path: impl AsRef<Path>) -> StorageResult<Self> {
        Self::create_with_capacity(path, BufferPool::DEFAULT_CAPACITY)
    }

    /// Create a new database file with an explicit buffer-pool capacity
    /// (in pages). Used by the repository-scale experiment (E9).
    pub fn create_with_capacity(path: impl AsRef<Path>, pages: usize) -> StorageResult<Self> {
        let pager = Pager::create(path)?;
        let pool = BufferPool::with_capacity(pager, pages)?;
        Ok(Database {
            pool: Arc::new(pool),
            meta: Meta::empty(),
        })
    }

    /// Open an existing database file.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        Self::open_with_capacity(path, BufferPool::DEFAULT_CAPACITY)
    }

    /// Open an existing database file with an explicit buffer-pool capacity.
    /// Opening runs crash recovery against the sibling write-ahead log;
    /// committed transactions since the last checkpoint are replayed and
    /// interrupted ones rolled back before the catalog is read (see
    /// [`Database::recovery_report`]).
    pub fn open_with_capacity(path: impl AsRef<Path>, pages: usize) -> StorageResult<Self> {
        let pager = Pager::open(path)?;
        let pool = BufferPool::with_capacity(pager, pages)?;
        let mut db = Database {
            pool: Arc::new(pool),
            meta: Meta::empty(),
        };
        db.reload_meta()?;
        Ok(db)
    }

    /// (Re)build the in-memory catalog, heap and index handles from the
    /// on-disk catalog. Called at open and after a transaction rollback
    /// (rolled-back DDL may have invalidated cached roots and table ids).
    fn reload_meta(&mut self) -> StorageResult<()> {
        self.meta = Meta::load_from(&*self.pool, true)?;
        Ok(())
    }

    /// A concurrent snapshot reader over this database's buffer pool.
    /// Readers see the last committed state only; they never block behind —
    /// and are never torn by — the writer's in-flight transaction.
    pub fn reader(&self) -> StorageResult<DbReader> {
        DbReader::new(Arc::clone(&self.pool))
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin an explicit transaction. Every mutation until
    /// [`Database::commit`] is atomic: it either becomes durable as a group
    /// or is invisible after a crash or [`Database::rollback`]. The engine
    /// is single-writer; nested `begin` is an error.
    pub fn begin(&mut self) -> StorageResult<()> {
        self.pool.begin_txn()?;
        Ok(())
    }

    /// Commit the open transaction: page after-images and a commit record
    /// are appended to the write-ahead log and fsynced (group fsync).
    pub fn commit(&mut self) -> StorageResult<()> {
        match self.pool.commit_txn(true) {
            Ok(_) => Ok(()),
            Err(e) => {
                // The pool already rolled the pages back; bring the cached
                // metadata in line with them.
                let _ = self.reload_meta();
                Err(e)
            }
        }
    }

    /// Commit the open transaction *asynchronously*: the commit is logged
    /// and visible (atomic on crash) but not yet durable. The returned
    /// commit LSN can be handed to [`Database::wait_durable`]; the next
    /// synchronous commit, group fsync or checkpoint also covers it.
    pub fn commit_async(&mut self) -> StorageResult<Lsn> {
        match self.pool.commit_txn(false) {
            Ok(lsn) => Ok(lsn),
            Err(e) => {
                // The pool already rolled the pages back; bring the cached
                // metadata in line with them.
                let _ = self.reload_meta();
                Err(e)
            }
        }
    }

    /// Block until the log is durable up to `lsn` (leading or following a
    /// group fsync — see `BufferPool::wait_durable`).
    pub fn wait_durable(&self, lsn: Lsn) -> StorageResult<()> {
        self.pool.wait_durable(lsn)
    }

    /// Absolute LSN up to which the write-ahead log is known durable.
    pub fn durable_lsn(&self) -> Lsn {
        self.pool.durable_lsn()
    }

    /// Start the background checkpoint thread on this database's buffer
    /// pool (see `BufferPool::start_checkpointer`). The returned guard
    /// stops and joins the thread when dropped.
    pub fn start_checkpointer(&self, policy: CheckpointPolicy) -> CheckpointerGuard {
        self.pool.start_checkpointer(policy)
    }

    /// Roll back the open transaction: all page mutations, allocations and
    /// catalog changes since `begin` are undone in memory.
    pub fn rollback(&mut self) -> StorageResult<()> {
        let result = self.pool.rollback_txn();
        let reload = self.reload_meta();
        result.and(reload)
    }

    /// `true` while an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.pool.in_txn()
    }

    /// Run `f` inside the open transaction, or wrap it in an implicit
    /// (auto-commit) transaction of its own. Auto-commits append to the log
    /// without fsyncing — they are atomic on crash but only become durable
    /// at the next explicit commit, eviction or checkpoint.
    fn autocommit<T>(&mut self, f: impl FnOnce(&mut Self) -> StorageResult<T>) -> StorageResult<T> {
        if self.pool.in_txn() {
            return f(self);
        }
        self.pool.begin_txn()?;
        match f(self) {
            Ok(v) => match self.pool.commit_txn(false) {
                Ok(_) => Ok(v),
                Err(e) => {
                    // The pool rolled the pages back; the cached catalog /
                    // heap / index handles must follow them.
                    let _ = self.reload_meta();
                    Err(e)
                }
            },
            Err(e) => {
                if self.pool.rollback_txn().is_ok() {
                    let _ = self.reload_meta();
                }
                Err(e)
            }
        }
    }

    /// The crash-recovery outcome from opening this database, when the file
    /// pre-existed. `None` for a freshly created database.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.pool.recovery_report()
    }

    /// Enable or disable write-ahead logging (bench baseline only; disabled
    /// logging forfeits crash safety). Fails inside a transaction.
    pub fn set_logging(&mut self, enabled: bool) -> StorageResult<()> {
        self.pool.set_logging(enabled)
    }

    /// Inject a simulated crash at the given point (test instrumentation
    /// for the crash-recovery suites; see [`CrashPoint`]).
    pub fn inject_crash(&self, point: CrashPoint) {
        self.pool.inject_crash(point)
    }

    /// Install a deterministic fault-injection schedule over the data and
    /// log files (see [`crate::io::FaultSchedule`]). Fails if one is
    /// already installed.
    pub fn install_fault_schedule(&self, schedule: SharedFaultSchedule) -> StorageResult<()> {
        self.pool.install_fault_schedule(schedule)
    }

    /// The installed fault schedule, if any.
    pub fn fault_schedule(&self) -> Option<SharedFaultSchedule> {
        self.pool.fault_schedule()
    }

    /// Set the transient-I/O retry policy for both the data file and the
    /// write-ahead log.
    pub fn set_io_retry_policy(&self, policy: RetryPolicy) {
        self.pool.set_io_retry_policy(policy)
    }

    /// Open an existing database in **degraded read-only mode**: mutation
    /// entry points fail with [`StorageError::ReadOnly`], and a verification
    /// pass quarantines every page whose checksum fails (without attempting
    /// repair writes), so intact data stays readable around the damage.
    /// Crash recovery still runs first — it rewrites every page covered by
    /// the log, which is itself a repair.
    pub fn open_degraded(path: impl AsRef<Path>, pages: usize) -> StorageResult<Self> {
        let pager = Pager::open(path)?;
        let pool = BufferPool::with_capacity(pager, pages)?;
        pool.set_read_only(true);
        pool.scrub(ScrubOptions::default())?;
        let mut db = Database {
            pool: Arc::new(pool),
            meta: Meta::empty(),
        };
        // Read-only catalog load: skip the heap tail-page walk (only
        // `insert` needs it, and inserts are refused) so damage in a heap
        // chain cannot block the open.
        db.meta = Meta::load_from(&*db.pool, false)?;
        Ok(db)
    }

    /// Whether this database is in read-only (degraded) mode.
    pub fn read_only(&self) -> bool {
        self.pool.read_only()
    }

    /// Whether an earlier fsync failure poisoned the writer (reads keep
    /// working; reopen to recover from the log).
    pub fn is_poisoned(&self) -> bool {
        self.pool.is_poisoned()
    }

    /// Page ids quarantined after unrepairable checksum failures.
    pub fn quarantined_pages(&self) -> Vec<u64> {
        self.pool.quarantined_pages()
    }

    /// Incremental media scrub: verify every page's checksum, backfilling
    /// missing ones, repairing failures from a resident frame or the WAL
    /// and quarantining what cannot be repaired. See
    /// [`BufferPool::scrub`].
    pub fn scrub(&self, opts: ScrubOptions) -> StorageResult<ScrubStats> {
        self.pool.scrub(opts)
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Create a table and return its id.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> StorageResult<TableId> {
        self.autocommit(|db| db.create_table_inner(name, schema))
    }

    fn create_table_inner(&mut self, name: &str, schema: Schema) -> StorageResult<TableId> {
        if self.meta.catalog.table_id(name).is_some() {
            return Err(StorageError::AlreadyExists(name.to_string()));
        }
        let heap = HeapFile::create(&self.pool)?;
        let meta = TableMeta {
            name: name.to_string(),
            schema,
            heap_first_page: heap.first_page().0,
            indexes: Vec::new(),
        };
        self.meta.catalog.tables.push(meta);
        let tid = self.meta.catalog.tables.len() - 1;
        self.meta.heaps.insert(tid, heap);
        self.meta.catalog.save(&self.pool)?;
        Ok(TableId(tid))
    }

    /// Look up a table id by name.
    pub fn table(&self, name: &str) -> StorageResult<TableId> {
        self.meta
            .catalog
            .table_id(name)
            .map(TableId)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// The schema of a table.
    pub fn schema(&self, table: TableId) -> StorageResult<&Schema> {
        self.meta.table_meta(table).map(|t| &t.schema)
    }

    /// Names of all tables in creation order.
    pub fn table_names(&self) -> Vec<String> {
        self.meta
            .catalog
            .tables
            .iter()
            .map(|t| t.name.clone())
            .collect()
    }

    /// Create a secondary index over `column`. Existing rows are indexed
    /// immediately. `unique` enables duplicate-key rejection on later inserts
    /// (and fails now if existing data already violates it).
    pub fn create_index(
        &mut self,
        table: TableId,
        column: &str,
        unique: bool,
    ) -> StorageResult<()> {
        self.autocommit(|db| db.create_index_inner(table, column, unique))
    }

    fn create_index_inner(
        &mut self,
        table: TableId,
        column: &str,
        unique: bool,
    ) -> StorageResult<()> {
        let meta = self.meta.table_meta(table)?;
        let col_idx = meta.schema.column_index(column)?;
        if meta.indexes.iter().any(|i| i.column == column) {
            return Err(StorageError::AlreadyExists(format!(
                "{}.{}",
                meta.name, column
            )));
        }
        let index_name = format!("{}_{}_idx", meta.name, column);
        let mut btree = BTree::create(&self.pool)?;
        // Index existing rows.
        let schema = meta.schema.clone();
        let heap = self.meta.heap(table)?.clone();
        for item in heap.scan(&*self.pool)? {
            let (rid, bytes) = item?;
            let row = schema.decode_row(&bytes)?;
            let value = &row.values[col_idx];
            let key = Self::index_key(value, rid, unique);
            if unique && btree.contains(&*self.pool, &key)? {
                return Err(StorageError::DuplicateKey(format!("{value:?}")));
            }
            btree.insert(&self.pool, &key, rid.to_u64())?;
        }
        let root = btree.root();
        self.meta.catalog.tables[table.0].indexes.push(IndexMeta {
            name: index_name,
            column: column.to_string(),
            unique,
            root_page: root.0,
        });
        self.meta
            .indexes
            .insert((table.0, column.to_string()), btree);
        self.meta.catalog.save(&self.pool)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    /// Insert a row, maintaining all indexes. Returns the new record id.
    pub fn insert(&mut self, table: TableId, values: &[Value]) -> StorageResult<RecordId> {
        self.autocommit(|db| db.insert_inner(table, values))
    }

    fn insert_inner(&mut self, table: TableId, values: &[Value]) -> StorageResult<RecordId> {
        let meta = self.meta.table_meta(table)?.clone();
        let bytes = meta.schema.encode_row(values)?;
        // Unique checks before any mutation.
        for idx in &meta.indexes {
            if idx.unique {
                let col = meta.schema.column_index(&idx.column)?;
                let key = values[col].key_bytes();
                let btree = self.meta.index(table, &idx.column)?;
                if btree.contains(&*self.pool, &key)? {
                    return Err(StorageError::DuplicateKey(format!("{:?}", values[col])));
                }
            }
        }
        let heap = self
            .meta
            .heaps
            .get_mut(&table.0)
            .expect("heap loaded for every table");
        let rid = heap.insert(&self.pool, &bytes)?;
        for idx in &meta.indexes {
            let col = meta.schema.column_index(&idx.column)?;
            let key = Self::index_key(&values[col], rid, idx.unique);
            let btree = self
                .meta
                .indexes
                .get_mut(&(table.0, idx.column.clone()))
                .expect("index loaded");
            let old_root = btree.root();
            btree.insert(&self.pool, &key, rid.to_u64())?;
            if btree.root() != old_root {
                // Root split: persist the new root page in the catalog.
                let root = btree.root().0;
                let entry = self.meta.catalog.tables[table.0]
                    .indexes
                    .iter_mut()
                    .find(|i| i.column == idx.column)
                    .expect("index metadata exists");
                entry.root_page = root;
                self.meta.catalog.save(&self.pool)?;
            }
        }
        Ok(rid)
    }

    /// Bulk-insert the rows yielded by `produce`, maintaining all indexes.
    ///
    /// `produce` is called with a cleared buffer; it fills in one row's
    /// values and returns `Ok(true)`, or returns `Ok(false)` to end the
    /// stream — so a million-row load reuses one `Vec<Value>` and one encode
    /// buffer instead of allocating per row. Rows stream through the heap's
    /// batched appender; index entries are buffered, sorted, and applied as
    /// one bottom-up bulk build per index (at `fill` × page capacity) when
    /// the run sorts after the index's existing keys, falling back to
    /// ordinary sorted inserts otherwise. Unique-index violations (within
    /// the batch or against existing rows) abort with
    /// [`StorageError::DuplicateKey`]. The catalog is saved once at the end
    /// instead of once per root split; run inside an explicit transaction,
    /// the save (like everything else) only becomes visible at commit.
    pub fn bulk_insert_with<F>(
        &mut self,
        table: TableId,
        fill: f64,
        produce: F,
    ) -> StorageResult<Vec<RecordId>>
    where
        F: FnMut(&mut Vec<Value>) -> StorageResult<bool>,
    {
        self.autocommit(|db| db.bulk_insert_with_inner(table, fill, produce))
    }

    /// Bulk-insert pre-built rows (convenience wrapper over
    /// [`Database::bulk_insert_with`]).
    pub fn bulk_insert<I>(
        &mut self,
        table: TableId,
        fill: f64,
        rows: I,
    ) -> StorageResult<Vec<RecordId>>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let mut iter = rows.into_iter();
        self.bulk_insert_with(table, fill, move |values| match iter.next() {
            Some(row) => {
                *values = row;
                Ok(true)
            }
            None => Ok(false),
        })
    }

    fn bulk_insert_with_inner<F>(
        &mut self,
        table: TableId,
        fill: f64,
        mut produce: F,
    ) -> StorageResult<Vec<RecordId>>
    where
        F: FnMut(&mut Vec<Value>) -> StorageResult<bool>,
    {
        let meta = self.meta.table_meta(table)?.clone();
        let pool = Arc::clone(&self.pool);
        let mut index_runs: Vec<Vec<(Vec<u8>, u64)>> = vec![Vec::new(); meta.indexes.len()];
        let index_cols: Vec<usize> = meta
            .indexes
            .iter()
            .map(|idx| meta.schema.column_index(&idx.column))
            .collect::<StorageResult<_>>()?;
        let mut rids = Vec::new();
        {
            let heap = self
                .meta
                .heaps
                .get_mut(&table.0)
                .expect("heap loaded for every table");
            let mut writer = heap.begin_bulk(&pool)?;
            let mut values: Vec<Value> = Vec::new();
            let mut row_buf: Vec<u8> = Vec::new();
            loop {
                values.clear();
                if !produce(&mut values)? {
                    break;
                }
                meta.schema.encode_row_into(&values, &mut row_buf)?;
                let rid = writer.append(&row_buf)?;
                for (run, (idx, &col)) in index_runs
                    .iter_mut()
                    .zip(meta.indexes.iter().zip(&index_cols))
                {
                    run.push((Self::index_key(&values[col], rid, idx.unique), rid.to_u64()));
                }
                rids.push(rid);
            }
            writer.finish()?;
        }
        let mut catalog_dirty = false;
        for (idx, run) in meta.indexes.iter().zip(index_runs) {
            catalog_dirty |= self.bulk_index_apply(table, &idx.column, idx.unique, fill, run)?;
        }
        if catalog_dirty {
            self.meta.catalog.save(&self.pool)?;
        }
        Ok(rids)
    }

    /// Apply one index's sorted entry run: bulk-append when the run sorts
    /// after every existing key (always true for a fresh index), ordinary
    /// sorted inserts otherwise. Returns whether the root moved.
    fn bulk_index_apply(
        &mut self,
        table: TableId,
        column: &str,
        unique: bool,
        fill: f64,
        mut run: Vec<(Vec<u8>, u64)>,
    ) -> StorageResult<bool> {
        if run.is_empty() {
            return Ok(false);
        }
        run.sort_unstable();
        if unique {
            for pair in run.windows(2) {
                if pair[0].0 == pair[1].0 {
                    return Err(StorageError::DuplicateKey(format!(
                        "bulk insert repeats unique key {:?} in index `{column}`",
                        pair[0].0
                    )));
                }
            }
        }
        let pool = Arc::clone(&self.pool);
        let btree = self
            .meta
            .indexes
            .get_mut(&(table.0, column.to_string()))
            .expect("index loaded");
        let old_root = btree.root();
        let appendable = match btree.last_key(&*pool)? {
            None => true,
            Some(max) => run[0].0.as_slice() > max.as_slice(),
        };
        if appendable {
            btree.bulk_append(&pool, fill, run)?;
        } else {
            for (key, value) in run {
                if unique && btree.contains(&*pool, &key)? {
                    return Err(StorageError::DuplicateKey(format!(
                        "bulk insert duplicates existing unique key {key:?} in index `{column}`"
                    )));
                }
                btree.insert(&pool, &key, value)?;
            }
        }
        if btree.root() != old_root {
            let root = btree.root().0;
            let entry = self.meta.catalog.tables[table.0]
                .indexes
                .iter_mut()
                .find(|i| i.column == column)
                .expect("index metadata exists");
            entry.root_page = root;
            return Ok(true);
        }
        Ok(false)
    }

    /// Fetch a row by record id.
    pub fn get(&self, table: TableId, rid: RecordId) -> StorageResult<Row> {
        self.meta.get(&*self.pool, table, rid)
    }

    /// Delete a row by record id, maintaining indexes.
    pub fn delete(&mut self, table: TableId, rid: RecordId) -> StorageResult<()> {
        self.autocommit(|db| db.delete_inner(table, rid))
    }

    fn delete_inner(&mut self, table: TableId, rid: RecordId) -> StorageResult<()> {
        let meta = self.meta.table_meta(table)?.clone();
        let row = self.get(table, rid)?;
        for idx in &meta.indexes {
            let col = meta.schema.column_index(&idx.column)?;
            let key = Self::index_key(&row.values[col], rid, idx.unique);
            let btree = self.meta.index(table, &idx.column)?;
            btree.delete(&self.pool, &key, Some(rid.to_u64()))?;
        }
        let heap = self.meta.heap(table)?.clone();
        heap.delete(&self.pool, rid)
    }

    /// Scan every row of a table, in physical order.
    pub fn scan(&self, table: TableId) -> StorageResult<Vec<(RecordId, Row)>> {
        self.meta.scan(&*self.pool, table)
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: TableId) -> StorageResult<usize> {
        self.meta.row_count(&*self.pool, table)
    }

    // ------------------------------------------------------------------
    // Index access paths
    // ------------------------------------------------------------------

    /// Exact-match lookup through the index on `column`.
    pub fn index_lookup(
        &self,
        table: TableId,
        column: &str,
        value: &Value,
    ) -> StorageResult<Vec<RecordId>> {
        self.meta.index_lookup(&*self.pool, table, column, value)
    }

    /// Range scan through the index on `column`: `low ≤ value < high`
    /// (`None` = unbounded). Returns record ids in key order.
    pub fn index_range(
        &self,
        table: TableId,
        column: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> StorageResult<Vec<RecordId>> {
        self.meta.index_range(&*self.pool, table, column, low, high)
    }

    /// Convenience: fetch full rows through [`Database::index_lookup`].
    pub fn lookup_rows(
        &self,
        table: TableId,
        column: &str,
        value: &Value,
    ) -> StorageResult<Vec<(RecordId, Row)>> {
        self.meta.lookup_rows(&*self.pool, table, column, value)
    }

    // ------------------------------------------------------------------
    // Raw (table-less) B+tree indexes
    // ------------------------------------------------------------------

    /// Create a raw B+tree index mapping application-encoded keys to `u64`
    /// payloads, with no backing heap table. Use for covering indexes where
    /// the key bytes carry the whole entry (e.g. the node-interval index).
    pub fn create_raw_index(&mut self, name: &str) -> StorageResult<RawIndexId> {
        self.autocommit(|db| db.create_raw_index_inner(name))
    }

    fn create_raw_index_inner(&mut self, name: &str) -> StorageResult<RawIndexId> {
        if self.meta.catalog.raw_indexes.iter().any(|r| r.name == name) {
            return Err(StorageError::AlreadyExists(name.to_string()));
        }
        let btree = BTree::create(&self.pool)?;
        self.meta.catalog.raw_indexes.push(RawIndexMeta {
            name: name.to_string(),
            root_page: btree.root().0,
        });
        self.meta.raw.push(btree);
        self.meta.catalog.save(&self.pool)?;
        Ok(RawIndexId(self.meta.raw.len() - 1))
    }

    /// Look up a raw index id by name.
    pub fn raw_index(&self, name: &str) -> StorageResult<RawIndexId> {
        self.meta
            .catalog
            .raw_indexes
            .iter()
            .position(|r| r.name == name)
            .map(RawIndexId)
            .ok_or_else(|| StorageError::UnknownIndex(name.to_string()))
    }

    /// Insert a key/value pair into a raw index. Root splits are persisted
    /// in the catalog.
    pub fn raw_insert(&mut self, id: RawIndexId, key: &[u8], value: u64) -> StorageResult<()> {
        self.autocommit(|db| db.raw_insert_inner(id, key, value))
    }

    fn raw_insert_inner(&mut self, id: RawIndexId, key: &[u8], value: u64) -> StorageResult<()> {
        let btree = self
            .meta
            .raw
            .get_mut(id.0)
            .ok_or_else(|| StorageError::UnknownIndex(format!("raw #{}", id.0)))?;
        let old_root = btree.root();
        btree.insert(&self.pool, key, value)?;
        if btree.root() != old_root {
            self.meta.catalog.raw_indexes[id.0].root_page = btree.root().0;
            self.meta.catalog.save(&self.pool)?;
        }
        Ok(())
    }

    /// Bulk-insert a strictly ascending run of `(key, value)` entries into a
    /// raw index, packing fresh leaves bottom-up at `fill` × page capacity.
    ///
    /// Every key must sort after the index's existing keys (the covering
    /// interval indexes satisfy this by construction: keys embed a
    /// monotonically increasing tree id). Out-of-order or duplicate input is
    /// rejected with a typed error, and the enclosing (or automatic)
    /// transaction rolls any partially written run back. The catalog
    /// is saved once at the end when the root moved; inside an explicit
    /// transaction nothing becomes visible until commit. Returns the number
    /// of entries loaded.
    pub fn bulk_raw_insert<K, I>(
        &mut self,
        id: RawIndexId,
        fill: f64,
        entries: I,
    ) -> StorageResult<usize>
    where
        K: AsRef<[u8]>,
        I: IntoIterator<Item = (K, u64)>,
    {
        self.autocommit(|db| db.bulk_raw_insert_inner(id, fill, entries))
    }

    fn bulk_raw_insert_inner<K, I>(
        &mut self,
        id: RawIndexId,
        fill: f64,
        entries: I,
    ) -> StorageResult<usize>
    where
        K: AsRef<[u8]>,
        I: IntoIterator<Item = (K, u64)>,
    {
        let pool = Arc::clone(&self.pool);
        let btree = self
            .meta
            .raw
            .get_mut(id.0)
            .ok_or_else(|| StorageError::UnknownIndex(format!("raw #{}", id.0)))?;
        let old_root = btree.root();
        let loaded = btree.bulk_append(&pool, fill, entries)?;
        if btree.root() != old_root {
            self.meta.catalog.raw_indexes[id.0].root_page = btree.root().0;
            self.meta.catalog.save(&self.pool)?;
        }
        Ok(loaded)
    }

    /// Remove one entry with exactly `key` from a raw index. Returns `true`
    /// when an entry was removed. Used by repair/corruption tooling and the
    /// integrity-check test harness.
    pub fn raw_delete(&mut self, id: RawIndexId, key: &[u8]) -> StorageResult<bool> {
        self.autocommit(|db| {
            let btree = db.meta.raw_btree(id)?.clone();
            btree.delete(&db.pool, key, None)
        })
    }

    /// Point lookup in a raw index.
    pub fn raw_get(&self, id: RawIndexId, key: &[u8]) -> StorageResult<Option<u64>> {
        self.meta.raw_get(&*self.pool, id, key)
    }

    /// Range scan over a raw index: `low ≤ key < high`, `None` = unbounded.
    /// The iterator yields `(key, value)` pairs straight from pinned leaf
    /// frames — no heap rows are fetched.
    pub fn raw_range(
        &self,
        id: RawIndexId,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
    ) -> StorageResult<RangeIter<&BufferPool>> {
        self.meta.raw_btree(id)?.range(&*self.pool, low, high)
    }

    /// Visit the first raw-index entry in `low ≤ key < high` with `f` on
    /// the borrowed in-page key bytes — an allocation-free point probe for
    /// covering keys.
    pub fn raw_first_in_range<R>(
        &self,
        id: RawIndexId,
        low: &[u8],
        high: &[u8],
        f: impl FnOnce(&[u8], u64) -> R,
    ) -> StorageResult<Option<R>> {
        self.meta.raw_first_in_range(&*self.pool, id, low, high, f)
    }

    /// Number of entries in a raw index (full scan).
    pub fn raw_len(&self, id: RawIndexId) -> StorageResult<usize> {
        self.meta.raw_len(&*self.pool, id)
    }

    // ------------------------------------------------------------------
    // Maintenance
    // ------------------------------------------------------------------

    /// Checkpoint: persist the catalog, write every dirty page and the
    /// header to the data file, fsync it, and truncate the write-ahead log.
    /// Fails while a transaction is open (commit or roll back first).
    pub fn flush(&mut self) -> StorageResult<()> {
        if self.pool.in_txn() {
            return Err(StorageError::TransactionActive);
        }
        self.meta.catalog.save(&self.pool)?;
        self.pool.flush()
    }

    /// Buffer-pool statistics (hits, misses, evictions).
    pub fn buffer_stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// Reset buffer-pool statistics.
    pub fn reset_buffer_stats(&self) {
        self.pool.reset_stats()
    }

    /// Drop cached pages (after flushing) to measure cold-start behaviour.
    pub fn clear_cache(&self) -> StorageResult<()> {
        self.pool.clear_cache()
    }

    /// Total pages allocated in the file.
    pub fn page_count(&self) -> u64 {
        self.pool.page_count()
    }

    /// Direct access to the buffer pool (used by tests and benches).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    fn index_key(value: &Value, rid: RecordId, unique: bool) -> Vec<u8> {
        let mut key = value.key_bytes();
        if !unique {
            key.extend_from_slice(&rid.to_u64().to_be_bytes());
        }
        key
    }
}

impl DbRead for Database {
    fn get(&self, table: TableId, rid: RecordId) -> StorageResult<Row> {
        Database::get(self, table, rid)
    }

    fn scan(&self, table: TableId) -> StorageResult<Vec<(RecordId, Row)>> {
        Database::scan(self, table)
    }

    fn row_count(&self, table: TableId) -> StorageResult<usize> {
        Database::row_count(self, table)
    }

    fn lookup_rows(
        &self,
        table: TableId,
        column: &str,
        value: &Value,
    ) -> StorageResult<Vec<(RecordId, Row)>> {
        Database::lookup_rows(self, table, column, value)
    }

    fn index_range(
        &self,
        table: TableId,
        column: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> StorageResult<Vec<RecordId>> {
        Database::index_range(self, table, column, low, high)
    }

    fn raw_get(&self, id: RawIndexId, key: &[u8]) -> StorageResult<Option<u64>> {
        Database::raw_get(self, id, key)
    }

    fn raw_len(&self, id: RawIndexId) -> StorageResult<usize> {
        Database::raw_len(self, id)
    }

    fn raw_first_in_range<R>(
        &self,
        id: RawIndexId,
        low: &[u8],
        high: &[u8],
        f: impl FnOnce(&[u8], u64) -> R,
    ) -> StorageResult<Option<R>> {
        Database::raw_first_in_range(self, id, low, high, f)
    }

    fn raw_scan(
        &self,
        id: RawIndexId,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], u64) -> StorageResult<bool>,
    ) -> StorageResult<()> {
        self.meta.raw_scan(&*self.pool, id, low, high, f)
    }
}

/// Cached reader-side metadata, keyed by the pool's read generation.
struct CachedMeta {
    gen: u64,
    meta: Meta,
}

/// Entries kept in a reader's pinned-epoch metadata cache. Read brackets
/// are short, so a handful of recent commit points covers the traffic.
const EPOCH_META_CACHE: usize = 8;

/// A [`PageSource`] frozen at a pinned snapshot epoch: every page resolves
/// to its newest version at or before the epoch, and the catalog root is
/// the one the governing commit published. Reads through this source are
/// stable across any number of concurrent commits — no retry bracket.
#[derive(Clone, Copy)]
pub struct EpochSnapshot<'a> {
    pool: &'a BufferPool,
    epoch: u64,
    root: PageId,
}

impl PageSource for EpochSnapshot<'_> {
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        self.pool.with_page_at(self.epoch, pid, f)
    }

    fn pin_page(&self, pid: PageId) -> StorageResult<PinnedPage> {
        self.pool.pin_at(self.epoch, pid)
    }

    fn catalog_root(&self) -> PageId {
        self.root
    }
}

/// A concurrent snapshot reader over a database's buffer pool. `Send +
/// Sync`: share one across threads or create one per thread — they are
/// cheap (an `Arc` plus cached catalog handles).
///
/// Every read routes through the pool's committed-[`Snapshot`] view: pages
/// touched by the writer's open transaction read as their before-images, so
/// a reader observes the last committed state and never blocks behind an
/// in-flight load. The cached catalog handles are rebuilt whenever the
/// pool's read generation advances (i.e. after every commit or rollback).
///
/// For a multi-page operation that must not observe a concurrent commit
/// mid-flight, pin an epoch ([`DbReader::pin_epoch`]) and run it against
/// the frozen [`EpochView`] ([`DbReader::at_epoch`]): the version chains
/// keep every page the epoch needs, so the operation completes without
/// retrying (see `crimson`'s `RepositoryReader`).
pub struct DbReader {
    pool: Arc<BufferPool>,
    meta: RwLock<CachedMeta>,
    /// Pinned-epoch metadata cache, keyed by the governing commit
    /// sequence (most recent first, bounded at [`EPOCH_META_CACHE`]).
    epoch_meta: Mutex<Vec<(u64, Arc<Meta>)>>,
}

impl DbReader {
    fn new(pool: Arc<BufferPool>) -> StorageResult<DbReader> {
        let gen = Self::stable_gen(&pool);
        let meta = Meta::load_from(Snapshot(&pool), false)?;
        Ok(DbReader {
            pool,
            meta: RwLock::new(CachedMeta { gen, meta }),
            epoch_meta: Mutex::new(Vec::new()),
        })
    }

    /// Pin the current commit sequence as a snapshot epoch (see
    /// [`BufferPool::pin_epoch`]). Pair with [`DbReader::at_epoch`] to
    /// read a view frozen at the pinned sequence.
    pub fn pin_epoch(&self) -> EpochPin {
        self.pool.pin_epoch()
    }

    /// A read view frozen at `pin`'s epoch: the catalog and every page
    /// resolve as of that commit sequence, stable across concurrent
    /// commits for the life of the pin. Fails with
    /// [`StorageError::SnapshotRetired`] if the epoch's versions were
    /// already collected (re-pin and retry).
    pub fn at_epoch(&self, pin: &EpochPin) -> StorageResult<EpochView<'_>> {
        let epoch = pin.epoch();
        let (seq, root) = self.pool.catalog_entry_at(epoch)?;
        let source = EpochSnapshot {
            pool: &self.pool,
            epoch,
            root,
        };
        let meta = self.epoch_meta_for(seq, source)?;
        Ok(EpochView {
            reader: self,
            epoch,
            root,
            meta,
        })
    }

    /// The cached metadata for the commit point `seq`, built through
    /// `source` on a miss. Two pins with the same governing sequence share
    /// one `Meta` — no commit happened between them, so every derived
    /// handle is identical.
    fn epoch_meta_for(&self, seq: u64, source: EpochSnapshot<'_>) -> StorageResult<Arc<Meta>> {
        {
            let mut cache = self.epoch_meta.lock();
            if let Some(pos) = cache.iter().position(|(s, _)| *s == seq) {
                let entry = cache.remove(pos);
                let meta = Arc::clone(&entry.1);
                cache.insert(0, entry);
                return Ok(meta);
            }
        }
        // Build outside the cache lock: catalog loading reads pages.
        let meta = Arc::new(Meta::load_from(source, false)?);
        let mut cache = self.epoch_meta.lock();
        if !cache.iter().any(|(s, _)| *s == seq) {
            cache.insert(0, (seq, Arc::clone(&meta)));
            cache.truncate(EPOCH_META_CACHE);
        }
        Ok(meta)
    }

    fn stable_gen(pool: &BufferPool) -> u64 {
        loop {
            let gen = pool.read_generation();
            if gen.is_multiple_of(2) {
                return gen;
            }
            // A commit/rollback is retiring the overlay right now; the
            // transition is a few map operations, so spin briefly.
            std::thread::yield_now();
        }
    }

    /// The current read generation (possibly odd while a commit retires the
    /// overlay).
    pub fn generation(&self) -> u64 {
        self.pool.read_generation()
    }

    /// The current *stable* (even) read generation, waiting out an
    /// in-progress view transition. Bracket a multi-page operation with
    /// this and [`DbReader::generation`]: if the value changed, retry.
    pub fn stable_generation(&self) -> u64 {
        Self::stable_gen(&self.pool)
    }

    /// Report a snapshot retry (generation change mid-operation or a `Busy`
    /// give-up) into the pool's `reader_retries` counter, so checkpoints'
    /// effect on reader tail latency is observable.
    pub fn note_snapshot_retry(&self) {
        self.pool.note_reader_retry();
    }

    /// Block until the write-ahead log is durable up to `lsn`, leading or
    /// following a group fsync as needed. Readers expose this so a
    /// durability barrier can be awaited *without* holding the single
    /// writer: a server thread that asynchronously committed through the
    /// writer can release it, then wait here while other connections'
    /// commits ride the same fsync round.
    pub fn wait_durable(&self, lsn: Lsn) -> StorageResult<()> {
        self.pool.wait_durable(lsn)
    }

    /// Absolute LSN up to which the write-ahead log is known durable.
    pub fn durable_lsn(&self) -> Lsn {
        self.pool.durable_lsn()
    }

    /// Look up a table id by name in the committed catalog.
    pub fn table(&self, name: &str) -> StorageResult<TableId> {
        self.with_meta(|meta, _| {
            meta.catalog
                .table_id(name)
                .map(TableId)
                .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
        })
    }

    /// Look up a raw index id by name in the committed catalog.
    pub fn raw_index(&self, name: &str) -> StorageResult<RawIndexId> {
        self.with_meta(|meta, _| {
            meta.catalog
                .raw_indexes
                .iter()
                .position(|r| r.name == name)
                .map(RawIndexId)
                .ok_or_else(|| StorageError::UnknownIndex(name.to_string()))
        })
    }

    /// Run `f` against metadata that matches the current committed state,
    /// rebuilding the cached handles first when a commit has landed since
    /// the last call.
    fn with_meta<R>(
        &self,
        f: impl FnOnce(&Meta, Snapshot<'_>) -> StorageResult<R>,
    ) -> StorageResult<R> {
        let gen = self.stable_generation();
        {
            let cached = self.meta.read();
            if cached.gen == gen {
                return f(&cached.meta, Snapshot(&self.pool));
            }
        }
        let mut cached = self.meta.write();
        let gen = self.stable_generation();
        if cached.gen != gen {
            cached.meta = Meta::load_from(Snapshot(&self.pool), false)?;
            cached.gen = gen;
        }
        f(&cached.meta, Snapshot(&self.pool))
    }
}

impl DbRead for DbReader {
    fn get(&self, table: TableId, rid: RecordId) -> StorageResult<Row> {
        self.with_meta(|m, s| m.get(s, table, rid))
    }

    fn scan(&self, table: TableId) -> StorageResult<Vec<(RecordId, Row)>> {
        self.with_meta(|m, s| m.scan(s, table))
    }

    fn row_count(&self, table: TableId) -> StorageResult<usize> {
        self.with_meta(|m, s| m.row_count(s, table))
    }

    fn lookup_rows(
        &self,
        table: TableId,
        column: &str,
        value: &Value,
    ) -> StorageResult<Vec<(RecordId, Row)>> {
        self.with_meta(|m, s| m.lookup_rows(s, table, column, value))
    }

    fn index_range(
        &self,
        table: TableId,
        column: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> StorageResult<Vec<RecordId>> {
        self.with_meta(|m, s| m.index_range(s, table, column, low, high))
    }

    fn raw_get(&self, id: RawIndexId, key: &[u8]) -> StorageResult<Option<u64>> {
        self.with_meta(|m, s| m.raw_get(s, id, key))
    }

    fn raw_len(&self, id: RawIndexId) -> StorageResult<usize> {
        self.with_meta(|m, s| m.raw_len(s, id))
    }

    fn raw_first_in_range<R>(
        &self,
        id: RawIndexId,
        low: &[u8],
        high: &[u8],
        f: impl FnOnce(&[u8], u64) -> R,
    ) -> StorageResult<Option<R>> {
        self.with_meta(|m, s| m.raw_first_in_range(s, id, low, high, f))
    }

    fn raw_scan(
        &self,
        id: RawIndexId,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], u64) -> StorageResult<bool>,
    ) -> StorageResult<()> {
        self.with_meta(|m, s| m.raw_scan(s, id, low, high, f))
    }
}

/// A [`DbRead`] view frozen at a pinned snapshot epoch (see
/// [`DbReader::pin_epoch`] / [`DbReader::at_epoch`]): every read resolves
/// against the version chains as of one commit sequence, so a multi-page
/// operation — or a whole batch of operations — runs against a single
/// frozen state with no retry bracket, however fast the writer commits.
///
/// Borrows its [`DbReader`] (whose bounded cache owns the catalog
/// metadata); the caller keeps the [`EpochPin`] alive for as long as the
/// view is used.
#[derive(Clone)]
pub struct EpochView<'a> {
    reader: &'a DbReader,
    epoch: u64,
    root: PageId,
    meta: Arc<Meta>,
}

impl EpochView<'_> {
    /// The pinned commit sequence this view reads at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Look up a table id by name in the epoch's catalog.
    pub fn table(&self, name: &str) -> StorageResult<TableId> {
        self.meta
            .catalog
            .table_id(name)
            .map(TableId)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Look up a raw index id by name in the epoch's catalog.
    pub fn raw_index(&self, name: &str) -> StorageResult<RawIndexId> {
        self.meta
            .catalog
            .raw_indexes
            .iter()
            .position(|r| r.name == name)
            .map(RawIndexId)
            .ok_or_else(|| StorageError::UnknownIndex(name.to_string()))
    }

    fn source(&self) -> EpochSnapshot<'_> {
        EpochSnapshot {
            pool: &self.reader.pool,
            epoch: self.epoch,
            root: self.root,
        }
    }
}

impl std::fmt::Debug for EpochView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochView")
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl DbRead for EpochView<'_> {
    fn get(&self, table: TableId, rid: RecordId) -> StorageResult<Row> {
        self.meta.get(self.source(), table, rid)
    }

    fn scan(&self, table: TableId) -> StorageResult<Vec<(RecordId, Row)>> {
        self.meta.scan(self.source(), table)
    }

    fn row_count(&self, table: TableId) -> StorageResult<usize> {
        self.meta.row_count(self.source(), table)
    }

    fn lookup_rows(
        &self,
        table: TableId,
        column: &str,
        value: &Value,
    ) -> StorageResult<Vec<(RecordId, Row)>> {
        self.meta.lookup_rows(self.source(), table, column, value)
    }

    fn index_range(
        &self,
        table: TableId,
        column: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> StorageResult<Vec<RecordId>> {
        self.meta
            .index_range(self.source(), table, column, low, high)
    }

    fn raw_get(&self, id: RawIndexId, key: &[u8]) -> StorageResult<Option<u64>> {
        self.meta.raw_get(self.source(), id, key)
    }

    fn raw_len(&self, id: RawIndexId) -> StorageResult<usize> {
        self.meta.raw_len(self.source(), id)
    }

    fn raw_first_in_range<R>(
        &self,
        id: RawIndexId,
        low: &[u8],
        high: &[u8],
        f: impl FnOnce(&[u8], u64) -> R,
    ) -> StorageResult<Option<R>> {
        self.meta
            .raw_first_in_range(self.source(), id, low, high, f)
    }

    fn raw_scan(
        &self,
        id: RawIndexId,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], u64) -> StorageResult<bool>,
    ) -> StorageResult<()> {
        self.meta.raw_scan(self.source(), id, low, high, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;
    use tempfile::tempdir;

    fn species_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("name", ValueType::Text),
            ColumnDef::not_null("node_id", ValueType::Int),
            ColumnDef::new("time", ValueType::Float),
        ])
    }

    fn fresh() -> (tempfile::TempDir, Database) {
        let dir = tempdir().unwrap();
        let db = Database::create(dir.path().join("db.crdb")).unwrap();
        (dir, db)
    }

    #[test]
    fn create_insert_get() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        let rid = db
            .insert(t, &[Value::text("Bha"), Value::Int(1), Value::Float(2.25)])
            .unwrap();
        let row = db.get(t, rid).unwrap();
        assert_eq!(row.values[0], Value::text("Bha"));
        assert_eq!(db.row_count(t).unwrap(), 1);
        assert_eq!(db.table_names(), vec!["species"]);
        assert_eq!(db.table("species").unwrap(), t);
        assert!(db.table("nope").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let (_d, mut db) = fresh();
        db.create_table("t", species_schema()).unwrap();
        assert!(matches!(
            db.create_table("t", species_schema()),
            Err(StorageError::AlreadyExists(_))
        ));
    }

    #[test]
    fn schema_validation_on_insert() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        assert!(db
            .insert(t, &[Value::Int(1), Value::Int(2), Value::Null])
            .is_err());
        assert!(db.insert(t, &[Value::text("x")]).is_err());
    }

    #[test]
    fn unique_index_enforced() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        db.create_index(t, "name", true).unwrap();
        db.insert(t, &[Value::text("Bha"), Value::Int(1), Value::Null])
            .unwrap();
        let err = db.insert(t, &[Value::text("Bha"), Value::Int(2), Value::Null]);
        assert!(matches!(err, Err(StorageError::DuplicateKey(_))));
        // Different key is fine.
        db.insert(t, &[Value::text("Lla"), Value::Int(2), Value::Null])
            .unwrap();
    }

    #[test]
    fn non_unique_index_lookup() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.create_index(t, "name", false).unwrap();
        for i in 0..10 {
            db.insert(t, &[Value::text("dup"), Value::Int(i), Value::Null])
                .unwrap();
        }
        db.insert(t, &[Value::text("solo"), Value::Int(99), Value::Null])
            .unwrap();
        assert_eq!(
            db.index_lookup(t, "name", &Value::text("dup"))
                .unwrap()
                .len(),
            10
        );
        assert_eq!(
            db.index_lookup(t, "name", &Value::text("solo"))
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            db.index_lookup(t, "name", &Value::text("missing"))
                .unwrap()
                .len(),
            0
        );
        let rows = db.lookup_rows(t, "name", &Value::text("solo")).unwrap();
        assert_eq!(rows[0].1.values[1], Value::Int(99));
    }

    #[test]
    fn index_created_after_data_covers_existing_rows() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        for i in 0..50 {
            db.insert(
                t,
                &[
                    Value::text(format!("n{i}")),
                    Value::Int(i),
                    Value::Float(i as f64),
                ],
            )
            .unwrap();
        }
        db.create_index(t, "node_id", true).unwrap();
        let hits = db.index_lookup(t, "node_id", &Value::Int(31)).unwrap();
        assert_eq!(hits.len(), 1);
        let row = db.get(t, hits[0]).unwrap();
        assert_eq!(row.values[0], Value::text("n31"));
    }

    #[test]
    fn index_range_scan_on_float_time() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.create_index(t, "time", false).unwrap();
        for i in 0..100 {
            db.insert(
                t,
                &[
                    Value::text(format!("n{i}")),
                    Value::Int(i),
                    Value::Float(i as f64 * 0.1),
                ],
            )
            .unwrap();
        }
        // time >= 5.0 (the paper's "total weight exceeds t" predicate)
        let hits = db
            .index_range(t, "time", Some(&Value::Float(5.0)), None)
            .unwrap();
        assert_eq!(hits.len(), 50);
        // 2.0 <= time < 3.0
        let hits = db
            .index_range(
                t,
                "time",
                Some(&Value::Float(2.0)),
                Some(&Value::Float(3.0)),
            )
            .unwrap();
        assert_eq!(hits.len(), 10);
        // Results come back ordered by time.
        let times: Vec<f64> = hits
            .iter()
            .map(|rid| db.get(t, *rid).unwrap().values[2].as_float().unwrap())
            .collect();
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn delete_removes_from_indexes() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.create_index(t, "name", false).unwrap();
        let rid = db
            .insert(t, &[Value::text("gone"), Value::Int(1), Value::Null])
            .unwrap();
        db.insert(t, &[Value::text("kept"), Value::Int(2), Value::Null])
            .unwrap();
        db.delete(t, rid).unwrap();
        assert!(db.get(t, rid).is_err());
        assert_eq!(
            db.index_lookup(t, "name", &Value::text("gone"))
                .unwrap()
                .len(),
            0
        );
        assert_eq!(
            db.index_lookup(t, "name", &Value::text("kept"))
                .unwrap()
                .len(),
            1
        );
        assert_eq!(db.row_count(t).unwrap(), 1);
    }

    #[test]
    fn scan_returns_all_rows() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        for i in 0..20 {
            db.insert(
                t,
                &[Value::text(format!("n{i}")), Value::Int(i), Value::Null],
            )
            .unwrap();
        }
        let rows = db.scan(t).unwrap();
        assert_eq!(rows.len(), 20);
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("db.crdb");
        {
            let mut db = Database::create(&path).unwrap();
            let t = db.create_table("species", species_schema()).unwrap();
            db.create_index(t, "name", true).unwrap();
            db.create_index(t, "time", false).unwrap();
            for i in 0..1000 {
                db.insert(
                    t,
                    &[
                        Value::text(format!("sp{i}")),
                        Value::Int(i),
                        Value::Float(i as f64),
                    ],
                )
                .unwrap();
            }
            db.flush().unwrap();
        }
        let db = Database::open(&path).unwrap();
        let t = db.table("species").unwrap();
        assert_eq!(db.row_count(t).unwrap(), 1000);
        let hits = db.index_lookup(t, "name", &Value::text("sp500")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(db.get(t, hits[0]).unwrap().values[1], Value::Int(500));
        let range = db
            .index_range(t, "time", Some(&Value::Float(990.0)), None)
            .unwrap();
        assert_eq!(range.len(), 10);
    }

    #[test]
    fn small_buffer_pool_many_rows() {
        let dir = tempdir().unwrap();
        let mut db = Database::create_with_capacity(dir.path().join("db.crdb"), 16).unwrap();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.create_index(t, "node_id", true).unwrap();
        for i in 0..2000 {
            db.insert(
                t,
                &[
                    Value::text(format!("n{i}")),
                    Value::Int(i),
                    Value::Float(i as f64),
                ],
            )
            .unwrap();
        }
        for probe in [0i64, 555, 1999] {
            let hits = db.index_lookup(t, "node_id", &Value::Int(probe)).unwrap();
            assert_eq!(hits.len(), 1, "probe {probe}");
        }
        assert!(db.buffer_stats().evictions > 0);
        assert!(db.page_count() > 16);
    }

    #[test]
    fn raw_index_roundtrip_and_persistence() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("db.crdb");
        {
            let mut db = Database::create(&path).unwrap();
            let idx = db.create_raw_index("intervals").unwrap();
            assert!(matches!(
                db.create_raw_index("intervals"),
                Err(StorageError::AlreadyExists(_))
            ));
            // Enough entries to split the root so the catalog root update is
            // exercised.
            for i in 0..5000u64 {
                let mut key = i.to_be_bytes().to_vec();
                key.extend_from_slice(&[0xAB; 9]); // covering payload bytes
                db.raw_insert(idx, &key, i * 2).unwrap();
            }
            db.flush().unwrap();
        }
        let db = Database::open(&path).unwrap();
        let idx = db.raw_index("intervals").unwrap();
        assert!(db.raw_index("missing").is_err());
        let mut probe = 1234u64.to_be_bytes().to_vec();
        probe.extend_from_slice(&[0xAB; 9]);
        assert_eq!(db.raw_get(idx, &probe).unwrap(), Some(2468));
        assert_eq!(db.raw_len(idx).unwrap(), 5000);
        // Bounded range scan decodes covering keys without heap access.
        let low = 100u64.to_be_bytes();
        let high = 110u64.to_be_bytes();
        let hits: Vec<(Vec<u8>, u64)> = db
            .raw_range(idx, Some(&low), Some(&high))
            .unwrap()
            .collect::<StorageResult<_>>()
            .unwrap();
        assert_eq!(hits.len(), 10);
        assert_eq!(hits[0].1, 200);
        assert_eq!(&hits[0].0[8..], &[0xAB; 9]);
    }

    #[test]
    fn duplicate_index_rejected_and_unknown_column() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.create_index(t, "name", false).unwrap();
        assert!(matches!(
            db.create_index(t, "name", false),
            Err(StorageError::AlreadyExists(_))
        ));
        assert!(matches!(
            db.create_index(t, "ghost", false),
            Err(StorageError::UnknownColumn(_))
        ));
        assert!(db.index_lookup(t, "ghost", &Value::Int(1)).is_err());
    }

    #[test]
    fn unique_index_creation_fails_on_existing_duplicates() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.insert(t, &[Value::text("dup"), Value::Int(1), Value::Null])
            .unwrap();
        db.insert(t, &[Value::text("dup"), Value::Int(2), Value::Null])
            .unwrap();
        assert!(matches!(
            db.create_index(t, "name", true),
            Err(StorageError::DuplicateKey(_))
        ));
    }

    #[test]
    fn cold_cache_reads_still_work() {
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.create_index(t, "node_id", true).unwrap();
        for i in 0..500 {
            db.insert(
                t,
                &[Value::text(format!("n{i}")), Value::Int(i), Value::Null],
            )
            .unwrap();
        }
        db.clear_cache().unwrap();
        db.reset_buffer_stats();
        let hits = db.index_lookup(t, "node_id", &Value::Int(123)).unwrap();
        assert_eq!(hits.len(), 1);
        assert!(db.buffer_stats().misses > 0);
        assert_eq!(db.buffer_stats().hit_ratio(), db.buffer_stats().hit_ratio());
    }

    #[test]
    fn raw_delete_removes_entry() {
        let (_d, mut db) = fresh();
        let idx = db.create_raw_index("ivl").unwrap();
        db.raw_insert(idx, b"key-a", 1).unwrap();
        db.raw_insert(idx, b"key-b", 2).unwrap();
        assert!(db.raw_delete(idx, b"key-a").unwrap());
        assert!(!db.raw_delete(idx, b"key-a").unwrap());
        assert_eq!(db.raw_get(idx, b"key-a").unwrap(), None);
        assert_eq!(db.raw_get(idx, b"key-b").unwrap(), Some(2));
        assert_eq!(db.raw_len(idx).unwrap(), 1);
    }

    // ------------------------------------------------------------------
    // Bulk loading
    // ------------------------------------------------------------------

    fn species_row(i: i64) -> Vec<Value> {
        vec![
            Value::text(format!("sp{i:05}")),
            Value::Int(i),
            Value::Float(i as f64 * 0.5),
        ]
    }

    #[test]
    fn bulk_insert_builds_fresh_indexes_bottom_up() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        db.create_index(t, "node_id", true).unwrap();
        db.create_index(t, "name", false).unwrap();
        db.create_index(t, "time", false).unwrap();
        let rids = db.bulk_insert(t, 0.9, (0..5000).map(species_row)).unwrap();
        assert_eq!(rids.len(), 5000);
        assert_eq!(db.row_count(t).unwrap(), 5000);
        // Unique point lookups, non-unique lookups and range scans all work.
        for probe in [0i64, 1234, 4999] {
            let hits = db.index_lookup(t, "node_id", &Value::Int(probe)).unwrap();
            assert_eq!(hits.len(), 1, "probe {probe}");
            let row = db.get(t, hits[0]).unwrap();
            assert_eq!(row.values[0], Value::text(format!("sp{probe:05}")));
        }
        assert_eq!(
            db.index_lookup(t, "name", &Value::text("sp00777"))
                .unwrap()
                .len(),
            1
        );
        let range = db
            .index_range(
                t,
                "time",
                Some(&Value::Float(100.0)),
                Some(&Value::Float(110.0)),
            )
            .unwrap();
        assert_eq!(range.len(), 20);
        // Ordinary inserts keep working on the bulk-built indexes.
        db.insert(
            t,
            &[Value::text("zzz"), Value::Int(5000), Value::Float(1.0)],
        )
        .unwrap();
        assert_eq!(
            db.index_lookup(t, "node_id", &Value::Int(5000))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn bulk_insert_second_batch_appends_or_falls_back() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        db.create_index(t, "node_id", true).unwrap();
        db.create_index(t, "name", false).unwrap();
        db.bulk_insert(t, 0.9, (0..1000).map(species_row)).unwrap();
        // Second batch: node_id keys sort after the first batch (bulk
        // append); the interleaving names force the per-row fallback.
        let rows: Vec<Vec<Value>> = (1000..2000)
            .map(|i| {
                vec![
                    Value::text(format!("aa{i:05}")), // sorts before sp*
                    Value::Int(i),
                    Value::Float(i as f64),
                ]
            })
            .collect();
        db.bulk_insert(t, 0.9, rows).unwrap();
        assert_eq!(db.row_count(t).unwrap(), 2000);
        for probe in [0i64, 999, 1000, 1999] {
            assert_eq!(
                db.index_lookup(t, "node_id", &Value::Int(probe))
                    .unwrap()
                    .len(),
                1,
                "probe {probe}"
            );
        }
        assert_eq!(
            db.index_lookup(t, "name", &Value::text("aa01500"))
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            db.index_lookup(t, "name", &Value::text("sp00500"))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn bulk_insert_rejects_duplicate_unique_keys() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        db.create_index(t, "node_id", true).unwrap();
        // Duplicate within the batch.
        let rows = vec![species_row(1), species_row(1)];
        assert!(matches!(
            db.bulk_insert(t, 1.0, rows),
            Err(StorageError::DuplicateKey(_))
        ));
        // The failed bulk rolled back: nothing landed.
        assert_eq!(db.row_count(t).unwrap(), 0);
        // Duplicate against an existing row (fallback path).
        db.insert(t, &species_row(5)).unwrap();
        let rows = vec![species_row(3), species_row(5)];
        assert!(matches!(
            db.bulk_insert(t, 1.0, rows),
            Err(StorageError::DuplicateKey(_))
        ));
        assert_eq!(db.row_count(t).unwrap(), 1);
    }

    #[test]
    fn bulk_insert_validates_schema() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        let rows = vec![vec![Value::Int(1), Value::Int(2), Value::Null]];
        assert!(matches!(
            db.bulk_insert(t, 1.0, rows),
            Err(StorageError::SchemaMismatch(_))
        ));
        assert_eq!(db.row_count(t).unwrap(), 0);
    }

    #[test]
    fn bulk_insert_persists_across_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("db.crdb");
        {
            let mut db = Database::create(&path).unwrap();
            let t = db.create_table("species", species_schema()).unwrap();
            db.create_index(t, "node_id", true).unwrap();
            db.create_index(t, "time", false).unwrap();
            db.begin().unwrap();
            db.bulk_insert(t, 0.9, (0..3000).map(species_row)).unwrap();
            db.commit().unwrap();
            db.flush().unwrap();
        }
        let db = Database::open(&path).unwrap();
        let t = db.table("species").unwrap();
        assert_eq!(db.row_count(t).unwrap(), 3000);
        let hits = db.index_lookup(t, "node_id", &Value::Int(2500)).unwrap();
        assert_eq!(hits.len(), 1);
        let range = db
            .index_range(t, "time", Some(&Value::Float(1495.0)), None)
            .unwrap();
        assert_eq!(range.len(), 10);
    }

    #[test]
    fn bulk_raw_insert_appends_sorted_runs() {
        let (_d, mut db) = fresh();
        let idx = db.create_raw_index("ivl").unwrap();
        let first: Vec<([u8; 8], u64)> = (0..4000u64).map(|i| (i.to_be_bytes(), i)).collect();
        assert_eq!(db.bulk_raw_insert(idx, 0.9, first).unwrap(), 4000);
        let second: Vec<([u8; 8], u64)> = (4000..8000u64).map(|i| (i.to_be_bytes(), i)).collect();
        assert_eq!(db.bulk_raw_insert(idx, 0.9, second).unwrap(), 4000);
        assert_eq!(db.raw_len(idx).unwrap(), 8000);
        for probe in [0u64, 3999, 4000, 7999] {
            assert_eq!(db.raw_get(idx, &probe.to_be_bytes()).unwrap(), Some(probe));
        }
        // Out-of-order and duplicate runs are rejected with typed errors.
        let stale: Vec<([u8; 8], u64)> = vec![(100u64.to_be_bytes(), 1)];
        assert!(matches!(
            db.bulk_raw_insert(idx, 0.9, stale),
            Err(StorageError::BulkOutOfOrder(_))
        ));
        let dup: Vec<([u8; 8], u64)> = vec![(7999u64.to_be_bytes(), 1)];
        assert!(matches!(
            db.bulk_raw_insert(idx, 0.9, dup),
            Err(StorageError::DuplicateKey(_))
        ));
        assert_eq!(db.raw_len(idx).unwrap(), 8000);
    }

    #[test]
    fn bulk_apis_join_open_transaction_and_roll_back() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        db.create_index(t, "node_id", true).unwrap();
        let idx = db.create_raw_index("ivl").unwrap();
        db.begin().unwrap();
        db.bulk_insert(t, 0.9, (0..500).map(species_row)).unwrap();
        db.bulk_raw_insert(idx, 0.9, (0..500u64).map(|i| (i.to_be_bytes(), i)))
            .unwrap();
        assert_eq!(db.row_count(t).unwrap(), 500);
        db.rollback().unwrap();
        assert_eq!(db.row_count(t).unwrap(), 0);
        assert_eq!(db.raw_len(idx).unwrap(), 0);
        assert_eq!(
            db.index_lookup(t, "node_id", &Value::Int(42))
                .unwrap()
                .len(),
            0
        );
        // The structures still work after the rollback.
        db.insert(t, &species_row(1)).unwrap();
        db.raw_insert(idx, &1u64.to_be_bytes(), 1).unwrap();
        assert_eq!(db.row_count(t).unwrap(), 1);
        assert_eq!(db.raw_len(idx).unwrap(), 1);
    }

    #[test]
    fn bulk_load_wal_bytes_stay_near_data_bytes() {
        use crate::page::PAGE_SIZE;
        let dir = tempdir().unwrap();
        // A pool far smaller than the load forces eviction (and steals)
        // mid-transaction; fresh pages must still reach the log exactly
        // once, as their commit-time after-image.
        let mut db = Database::create_with_capacity(dir.path().join("db.crdb"), 64).unwrap();
        let t = db.create_table("species", species_schema()).unwrap();
        db.create_index(t, "node_id", true).unwrap();
        db.reset_buffer_stats();
        db.begin().unwrap();
        db.bulk_insert(t, 0.9, (0..20_000).map(species_row))
            .unwrap();
        db.commit().unwrap();
        let stats = db.buffer_stats();
        assert!(stats.evictions > 0, "the load must overflow the pool");
        db.flush().unwrap();
        let data_bytes = (db.buffer_stats().page_writes() * PAGE_SIZE as u64) as f64;
        let ratio = db.buffer_stats().wal_bytes as f64 / data_bytes;
        assert!(
            ratio <= 1.1,
            "WAL bytes must stay within 1.1x of data bytes, got {ratio:.3} \
             ({} WAL bytes, {} page writes)",
            db.buffer_stats().wal_bytes,
            db.buffer_stats().page_writes()
        );
        assert!(db.buffer_stats().wal_page_images > 0);
    }

    // ------------------------------------------------------------------
    // Snapshot readers
    // ------------------------------------------------------------------

    #[test]
    fn reader_sees_committed_rows_only() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        db.create_index(t, "name", true).unwrap();
        db.insert(t, &[Value::text("Bha"), Value::Int(1), Value::Null])
            .unwrap();
        let reader = db.reader().unwrap();
        assert_eq!(reader.table("species").unwrap(), t);
        assert_eq!(reader.row_count(t).unwrap(), 1);

        // An open transaction's inserts are invisible to the reader...
        db.begin().unwrap();
        db.insert(t, &[Value::text("Lla"), Value::Int(2), Value::Null])
            .unwrap();
        assert_eq!(db.row_count(t).unwrap(), 2, "writer sees its own insert");
        assert_eq!(reader.row_count(t).unwrap(), 1, "reader must not");
        assert!(reader
            .lookup_rows(t, "name", &Value::text("Lla"))
            .unwrap()
            .is_empty());

        // ...until the commit lands.
        db.commit().unwrap();
        assert_eq!(reader.row_count(t).unwrap(), 2);
        let rows = reader.lookup_rows(t, "name", &Value::text("Lla")).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.values[1], Value::Int(2));
    }

    #[test]
    fn reader_survives_rollback() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        db.insert(t, &[Value::text("Bha"), Value::Int(1), Value::Null])
            .unwrap();
        let reader = db.reader().unwrap();
        db.begin().unwrap();
        for i in 0..50 {
            db.insert(
                t,
                &[
                    Value::text(format!("x{i}")),
                    Value::Int(10 + i),
                    Value::Null,
                ],
            )
            .unwrap();
        }
        assert_eq!(reader.row_count(t).unwrap(), 1);
        db.rollback().unwrap();
        assert_eq!(reader.row_count(t).unwrap(), 1);
        assert_eq!(db.row_count(t).unwrap(), 1);
    }

    #[test]
    fn reader_refreshes_catalog_after_ddl() {
        let (_d, mut db) = fresh();
        let t = db.create_table("first", species_schema()).unwrap();
        db.insert(t, &[Value::text("a"), Value::Int(1), Value::Null])
            .unwrap();
        let reader = db.reader().unwrap();
        assert!(reader.table("second").is_err());
        let t2 = db.create_table("second", species_schema()).unwrap();
        db.insert(t2, &[Value::text("b"), Value::Int(2), Value::Null])
            .unwrap();
        // The reader picks up the new table after the auto-commits.
        assert_eq!(reader.table("second").unwrap(), t2);
        assert_eq!(reader.row_count(t2).unwrap(), 1);
    }

    #[test]
    fn concurrent_readers_during_writes() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (_d, mut db) = fresh();
        let t = db.create_table("nodes", species_schema()).unwrap();
        db.create_index(t, "node_id", true).unwrap();
        for i in 0..200 {
            db.insert(
                t,
                &[Value::text(format!("n{i}")), Value::Int(i), Value::Null],
            )
            .unwrap();
        }
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let reader = db.reader().unwrap();
                let stop = &stop;
                s.spawn(move || {
                    let mut rounds = 0u64;
                    while !stop.load(Ordering::Relaxed) || rounds < 50 {
                        // Row counts only ever grow by whole committed
                        // transactions of 10 rows.
                        let n = reader.row_count(t).unwrap();
                        assert!(n >= 200 && (n - 200) % 10 == 0, "torn count {n}");
                        let rows = reader.lookup_rows(t, "node_id", &Value::Int(42)).unwrap();
                        assert_eq!(rows.len(), 1);
                        rounds += 1;
                        if rounds > 5000 {
                            break;
                        }
                    }
                });
            }
            // Writer: 20 transactions of 10 rows each.
            for batch in 0..20 {
                db.begin().unwrap();
                for i in 0..10 {
                    let id = 1000 + batch * 10 + i;
                    db.insert(
                        t,
                        &[Value::text(format!("w{id}")), Value::Int(id), Value::Null],
                    )
                    .unwrap();
                }
                db.commit().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(db.row_count(t).unwrap(), 400);
    }

    // ------------------------------------------------------------------
    // Versioned (epoch-pinned) reads
    // ------------------------------------------------------------------

    #[test]
    fn pinned_epoch_sees_frozen_state_across_commits() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        for i in 0..5 {
            db.insert(t, &species_row(i)).unwrap();
        }
        let reader = db.reader().unwrap();
        let pin = reader.pin_epoch();
        let view = reader.at_epoch(&pin).unwrap();
        assert_eq!(view.row_count(t).unwrap(), 5);

        // Many commits land while the pin is held; the pinned view must
        // not move, however many versions of the hot pages are published.
        for batch in 0..20 {
            db.begin().unwrap();
            for i in 0..10 {
                db.insert(t, &species_row(100 + batch * 10 + i)).unwrap();
            }
            db.commit().unwrap();
            assert_eq!(
                view.row_count(t).unwrap(),
                5,
                "pinned epoch moved after commit {batch}"
            );
        }
        assert_eq!(db.row_count(t).unwrap(), 205, "writer sees every commit");
        assert!(
            db.pool().version_pages() > 0,
            "held pin must keep versions alive"
        );

        // A fresh pin sees the new state; dropping every pin lets GC clear
        // all stored history (no leaked versions).
        let pin2 = reader.pin_epoch();
        let view2 = reader.at_epoch(&pin2).unwrap();
        assert_eq!(view2.row_count(t).unwrap(), 205);
        drop(view2);
        drop(pin2);
        drop(view);
        drop(pin);
        assert_eq!(db.pool().pinned_epochs(), 0);
        assert_eq!(
            db.pool().version_pages(),
            0,
            "version chains must clear once no epoch is pinned"
        );
        assert_eq!(db.pool().version_floor(), db.pool().current_epoch());
    }

    #[test]
    fn crowded_pins_retire_oldest_epoch() {
        let (_d, mut db) = fresh();
        let t = db.create_table("species", species_schema()).unwrap();
        db.insert(t, &species_row(0)).unwrap();
        let reader = db.reader().unwrap();

        // One pin per inter-commit window, each insert dirtying the same
        // heap page: after more than VERSION_CHAIN_CAP distinct pinned
        // epochs crowd that page's chain, the hard cap retires the oldest.
        let mut pins = Vec::new();
        for i in 1..=(crate::buffer::BufferPool::VERSION_CHAIN_CAP as i64 + 2) {
            pins.push(reader.pin_epoch());
            db.insert(t, &species_row(i)).unwrap();
        }
        let oldest = reader.at_epoch(&pins[0]);
        assert!(
            matches!(oldest, Err(StorageError::SnapshotRetired { .. })),
            "oldest pin must be retired by the chain cap, got {oldest:?}"
        );
        // The newest pins still resolve, and a retired reader recovers by
        // re-pinning.
        let newest = pins.last().unwrap();
        assert!(reader.at_epoch(newest).is_ok());
        drop(pins);
        let fresh_pin = reader.pin_epoch();
        let view = reader.at_epoch(&fresh_pin).unwrap();
        assert_eq!(
            view.row_count(t).unwrap(),
            crate::buffer::BufferPool::VERSION_CHAIN_CAP + 3
        );
    }

    #[test]
    fn async_commit_survives_clean_close_without_explicit_flush() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("db.crdb");
        {
            let mut db = Database::create(&path).unwrap();
            let t = db.create_table("species", species_schema()).unwrap();
            db.begin().unwrap();
            db.insert(t, &species_row(7)).unwrap();
            // Acknowledged but not yet durable: the frames sit in the
            // pipelined commit queue until some later sync.
            db.commit_async().unwrap();
            // Clean close with no flush/wait: Drop must drain + fsync the
            // pending WAL frames.
        }
        let db = Database::open(&path).unwrap();
        let t = db.table("species").unwrap();
        assert_eq!(
            db.row_count(t).unwrap(),
            1,
            "async commit lost across a clean close"
        );
    }
}
