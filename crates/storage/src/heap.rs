//! Slotted-page heap files: unordered collections of variable-length records.
//!
//! Each heap page is laid out as
//!
//! ```text
//! +------------+---------------------+---------------->   <----------------+
//! | header     | slot directory ...  |   free space    ...   record cells  |
//! +------------+---------------------+---------------->   <----------------+
//! 0            12                    12+4*slots        free_end        PAGE_SIZE
//! ```
//!
//! * header: `slot_count: u16`, `free_end: u16`, `next_page: u64`
//! * slot: `offset: u16`, `len: u16`. A deleted slot keeps its cell offset
//!   and length but has the high bit of the offset set (the tombstone bit —
//!   offsets are < 8192, so bit 15 is always free); legacy tombstones with
//!   offset 0 are also recognised. Keeping the cell location lets a later
//!   insert of a compatible (equal-or-smaller) record reclaim the dead cell
//!   instead of growing the file.
//!
//! Records are addressed by [`RecordId`] = (page, slot), which is the stable
//! physical id the rest of the system (indexes, node labels) refers to.

use crate::buffer::{BufferPool, PageSource};
use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};
use serde::{Deserialize, Serialize};

const HDR_SLOT_COUNT: usize = 0;
const HDR_FREE_END: usize = 2;
const HDR_NEXT_PAGE: usize = 4;
const HEADER_SIZE: usize = 12;
const SLOT_SIZE: usize = 4;
/// High bit of a slot's offset field: set when the slot is a tombstone whose
/// cell can be reclaimed. Cell offsets are bounded by `PAGE_SIZE` (8192), so
/// bit 15 never collides with a live offset.
const TOMBSTONE: u16 = 0x8000;

/// `true` when a raw slot offset denotes a live record.
#[inline]
fn slot_is_live(offset_raw: u16) -> bool {
    offset_raw != 0 && offset_raw & TOMBSTONE == 0
}

/// Maximum record payload that fits on one page.
pub const MAX_RECORD_SIZE: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// Stable identifier of a record in a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId {
    /// Page holding the record.
    pub page: u64,
    /// Slot index within the page.
    pub slot: u16,
}

impl RecordId {
    /// Pack into a single `u64` (page in the high 48 bits, slot in the low 16)
    /// for storage inside B+tree payloads.
    pub fn to_u64(self) -> u64 {
        (self.page << 16) | self.slot as u64
    }

    /// Inverse of [`RecordId::to_u64`].
    pub fn from_u64(v: u64) -> Self {
        RecordId {
            page: v >> 16,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}:{}", self.page, self.slot)
    }
}

/// A heap file: a linked list of slotted pages.
#[derive(Debug, Clone)]
pub struct HeapFile {
    first_page: PageId,
    last_page: PageId,
}

impl HeapFile {
    /// Create a new heap file with one empty page.
    pub fn create(pool: &BufferPool) -> StorageResult<Self> {
        let first = pool.allocate_page()?;
        pool.with_page_mut(first, init_heap_page)?;
        Ok(HeapFile {
            first_page: first,
            last_page: first,
        })
    }

    /// Open a heap file for read-only use: the tail pointer is left at the
    /// first page instead of being located (only [`HeapFile::insert`] needs
    /// the tail), so opening costs zero page reads. Snapshot readers rebuild
    /// their catalog handles on every commit; this keeps that rebuild cheap.
    pub fn open_read_only(first_page: PageId) -> Self {
        HeapFile {
            first_page,
            last_page: first_page,
        }
    }

    /// Re-open a heap file given its first page (walks to find the tail).
    pub fn open<S: PageSource>(pool: S, first_page: PageId) -> StorageResult<Self> {
        let mut last = first_page;
        loop {
            let next = pool.with_page(last, |p| PageId(p.read_u64(HDR_NEXT_PAGE)))?;
            if next.is_null() {
                break;
            }
            last = next;
        }
        Ok(HeapFile {
            first_page,
            last_page: last,
        })
    }

    /// First page id (persisted in the catalog).
    pub fn first_page(&self) -> PageId {
        self.first_page
    }

    /// Insert a record, returning its id. The tail page is tried first
    /// (fresh slot, then a compatible tombstoned slot whose dead cell is
    /// large enough); only when the tail has no room does the file grow.
    pub fn insert(&mut self, pool: &BufferPool, data: &[u8]) -> StorageResult<RecordId> {
        if data.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge(data.len()));
        }
        // Try the tail page first: append into free space, or reclaim a
        // compatible dead slot before growing the file.
        let inserted = pool.with_page_mut(self.last_page, |p| {
            try_insert(p, data).or_else(|| try_reuse(p, data))
        })?;
        if let Some(slot) = inserted {
            return Ok(RecordId {
                page: self.last_page.0,
                slot,
            });
        }
        // Allocate and link a new tail page.
        let new_page = pool.allocate_page()?;
        pool.with_page_mut(new_page, init_heap_page)?;
        pool.with_page_mut(self.last_page, |p| p.write_u64(HDR_NEXT_PAGE, new_page.0))?;
        self.last_page = new_page;
        let slot = pool
            .with_page_mut(new_page, |p| try_insert(p, data))?
            .expect("fresh page always has room for a record below MAX_RECORD_SIZE");
        Ok(RecordId {
            page: new_page.0,
            slot,
        })
    }

    /// Start a bulk append: a push-style writer that fills pages
    /// sequentially. The existing tail page is used first through the
    /// ordinary per-row path (so tombstoned cells there are still
    /// reclaimed); once it is full, rows are batched and each fresh page is
    /// written with a single page mutation — no tail-chain walk, no
    /// per-row latch round trip.
    pub fn begin_bulk<'h, 'p>(
        &'h mut self,
        pool: &'p BufferPool,
    ) -> StorageResult<HeapBulkWriter<'h, 'p>> {
        Ok(HeapBulkWriter {
            pool,
            tail_open: true,
            page: self.last_page,
            buf: Vec::with_capacity(PAGE_SIZE),
            lens: Vec::new(),
            used: HEADER_SIZE,
            heap: self,
        })
    }

    /// Append every record produced by `rows` (see [`HeapFile::begin_bulk`]
    /// for the page-filling strategy), returning the new record ids in
    /// order.
    pub fn bulk_append<I, K>(&mut self, pool: &BufferPool, rows: I) -> StorageResult<Vec<RecordId>>
    where
        I: IntoIterator<Item = K>,
        K: AsRef<[u8]>,
    {
        let mut writer = self.begin_bulk(pool)?;
        let mut rids = Vec::new();
        for row in rows {
            rids.push(writer.append(row.as_ref())?);
        }
        writer.finish()?;
        Ok(rids)
    }

    /// Fetch a record's bytes.
    pub fn get<S: PageSource>(&self, pool: S, rid: RecordId) -> StorageResult<Vec<u8>> {
        pool.with_page(PageId(rid.page), |p| read_slot(p, rid.slot))?
    }

    /// Delete a record. The slot is tombstoned with its cell location kept,
    /// so a later insert of an equal-or-smaller record can reclaim the dead
    /// cell (space is never compacted).
    pub fn delete(&self, pool: &BufferPool, rid: RecordId) -> StorageResult<()> {
        pool.with_page_mut(PageId(rid.page), |p| {
            let slot_count = p.read_u16(HDR_SLOT_COUNT);
            if rid.slot >= slot_count {
                return Err(StorageError::InvalidRecord {
                    page: rid.page,
                    slot: rid.slot,
                });
            }
            let slot_off = HEADER_SIZE + rid.slot as usize * SLOT_SIZE;
            let offset = p.read_u16(slot_off);
            if !slot_is_live(offset) {
                return Err(StorageError::InvalidRecord {
                    page: rid.page,
                    slot: rid.slot,
                });
            }
            p.write_u16(slot_off, offset | TOMBSTONE);
            Ok(())
        })?
    }

    /// Overwrite a record in place when the new payload fits in the old
    /// slot; otherwise the record is deleted and re-inserted (the returned
    /// id is the new location).
    pub fn update(
        &mut self,
        pool: &BufferPool,
        rid: RecordId,
        data: &[u8],
    ) -> StorageResult<RecordId> {
        let fits = pool.with_page_mut(PageId(rid.page), |p| -> StorageResult<bool> {
            let slot_count = p.read_u16(HDR_SLOT_COUNT);
            if rid.slot >= slot_count {
                return Err(StorageError::InvalidRecord {
                    page: rid.page,
                    slot: rid.slot,
                });
            }
            let slot_off = HEADER_SIZE + rid.slot as usize * SLOT_SIZE;
            let offset_raw = p.read_u16(slot_off);
            let offset = offset_raw as usize;
            let len = p.read_u16(slot_off + 2) as usize;
            if !slot_is_live(offset_raw) {
                return Err(StorageError::InvalidRecord {
                    page: rid.page,
                    slot: rid.slot,
                });
            }
            if data.len() <= len {
                p.write_bytes(offset, data);
                p.write_u16(slot_off + 2, data.len() as u16);
                Ok(true)
            } else {
                Ok(false)
            }
        })??;
        if fits {
            Ok(rid)
        } else {
            self.delete(pool, rid)?;
            self.insert(pool, data)
        }
    }

    /// Scan every live record. Returns `(RecordId, bytes)` pairs in physical
    /// order. The whole scan materializes page-by-page, never holding more
    /// than one page's records at a time in the closure.
    pub fn scan<S: PageSource>(&self, pool: S) -> StorageResult<ScanIter<S>> {
        Ok(ScanIter {
            pool,
            current_page: self.first_page,
            buffer: Vec::new(),
            buffer_pos: 0,
            done: false,
        })
    }

    /// Count live records.
    pub fn len<S: PageSource>(&self, pool: S) -> StorageResult<usize> {
        let mut count = 0usize;
        let mut page = self.first_page;
        loop {
            let (n, next) = pool.with_page(page, |p| {
                let slot_count = p.read_u16(HDR_SLOT_COUNT);
                let mut live = 0usize;
                for s in 0..slot_count {
                    let slot_off = HEADER_SIZE + s as usize * SLOT_SIZE;
                    if slot_is_live(p.read_u16(slot_off)) {
                        live += 1;
                    }
                }
                (live, PageId(p.read_u64(HDR_NEXT_PAGE)))
            })?;
            count += n;
            if next.is_null() {
                break;
            }
            page = next;
        }
        Ok(count)
    }
}

/// Push-style bulk appender over a heap file (see
/// [`HeapFile::begin_bulk`]).
///
/// Rows aimed at a fresh page are batched in a flat buffer and written with
/// one page mutation when the page is full (or at [`HeapBulkWriter::finish`]);
/// the page's successor is allocated first so the next-pointer lands in the
/// same mutation — every fresh page is dirtied exactly once. Record ids are
/// handed out immediately (the target page is allocated before buffering
/// starts), so callers can stream rows and index entries in one pass.
pub struct HeapBulkWriter<'h, 'p> {
    heap: &'h mut HeapFile,
    pool: &'p BufferPool,
    /// While `true`, rows go through the ordinary per-row path on the
    /// pre-existing tail page, which still reclaims tombstoned cells there.
    tail_open: bool,
    /// Page the buffered rows will be written to (already allocated).
    page: PageId,
    /// Cell bytes of the buffered rows, concatenated in append order.
    buf: Vec<u8>,
    /// Length of each buffered row.
    lens: Vec<u16>,
    /// Bytes of `page` consumed by the header plus buffered cells + slots.
    used: usize,
}

impl HeapBulkWriter<'_, '_> {
    /// Append one record, returning its id.
    pub fn append(&mut self, data: &[u8]) -> StorageResult<RecordId> {
        if data.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge(data.len()));
        }
        if self.tail_open {
            // The pre-existing tail: fresh slot or a reclaimable tombstone.
            let inserted = self.pool.with_page_mut(self.page, |p| {
                try_insert(p, data).or_else(|| try_reuse(p, data))
            })?;
            if let Some(slot) = inserted {
                return Ok(RecordId {
                    page: self.page.0,
                    slot,
                });
            }
            // Tail full: link a fresh page and switch to batching.
            let fresh = self.pool.allocate_page()?;
            self.pool
                .with_page_mut(self.page, |p| p.write_u64(HDR_NEXT_PAGE, fresh.0))?;
            self.pool.hint_cold(self.page);
            self.tail_open = false;
            self.page = fresh;
            self.heap.last_page = fresh;
            self.used = HEADER_SIZE;
        } else if self.used + data.len() + SLOT_SIZE > PAGE_SIZE {
            // Current fresh page is full: allocate its successor first so
            // the chain pointer is part of the page's single write.
            let next = self.pool.allocate_page()?;
            self.flush(next)?;
            self.page = next;
            self.heap.last_page = next;
            self.used = HEADER_SIZE;
        }
        let slot = self.lens.len() as u16;
        self.buf.extend_from_slice(data);
        self.lens.push(data.len() as u16);
        self.used += data.len() + SLOT_SIZE;
        Ok(RecordId {
            page: self.page.0,
            slot,
        })
    }

    /// Write the buffered rows to `self.page` in one mutation, replicating
    /// the per-row layout exactly (cells packed downward from the page end,
    /// slots in append order).
    fn flush(&mut self, next: PageId) -> StorageResult<()> {
        let lens = std::mem::take(&mut self.lens);
        let buf = std::mem::take(&mut self.buf);
        self.pool.with_page_mut(self.page, |p| {
            let mut cell_end = PAGE_SIZE;
            let mut src = 0usize;
            for (i, &len) in lens.iter().enumerate() {
                let len = len as usize;
                cell_end -= len;
                p.write_bytes(cell_end, &buf[src..src + len]);
                src += len;
                let slot_off = HEADER_SIZE + i * SLOT_SIZE;
                p.write_u16(slot_off, cell_end as u16);
                p.write_u16(slot_off + 2, len as u16);
            }
            p.write_u16(HDR_SLOT_COUNT, lens.len() as u16);
            p.write_u16(HDR_FREE_END, cell_end as u16);
            p.write_u64(HDR_NEXT_PAGE, next.0);
        })?;
        // Bulk-filled pages are write-once; let the clock evict them without
        // a second chance.
        self.pool.hint_cold(self.page);
        Ok(())
    }

    /// Flush the pending page (if any) and end the bulk append. Must be
    /// called; dropping the writer flushes best-effort but swallows errors.
    pub fn finish(mut self) -> StorageResult<()> {
        if !self.tail_open && !self.lens.is_empty() {
            self.flush(PageId::NULL)?;
        }
        self.lens.clear();
        Ok(())
    }
}

impl Drop for HeapBulkWriter<'_, '_> {
    fn drop(&mut self) {
        if !self.tail_open && !self.lens.is_empty() {
            let _ = self.flush(PageId::NULL);
        }
    }
}

/// Iterator over the live records of a heap file. Generic over the
/// [`PageSource`], so the same scan serves the writer's current view and
/// concurrent snapshot readers.
pub struct ScanIter<S: PageSource> {
    pool: S,
    current_page: PageId,
    buffer: Vec<(RecordId, Vec<u8>)>,
    buffer_pos: usize,
    done: bool,
}

impl<S: PageSource> ScanIter<S> {
    fn refill(&mut self) -> StorageResult<()> {
        let pool = self.pool;
        self.buffer.clear();
        self.buffer_pos = 0;
        while self.buffer.is_empty() && !self.done {
            let page = self.current_page;
            let next = pool.with_page(page, |p| {
                let slot_count = p.read_u16(HDR_SLOT_COUNT);
                for s in 0..slot_count {
                    let slot_off = HEADER_SIZE + s as usize * SLOT_SIZE;
                    let offset_raw = p.read_u16(slot_off);
                    let len = p.read_u16(slot_off + 2) as usize;
                    if slot_is_live(offset_raw) {
                        self.buffer.push((
                            RecordId {
                                page: page.0,
                                slot: s,
                            },
                            p.read_bytes(offset_raw as usize, len).to_vec(),
                        ));
                    }
                }
                PageId(p.read_u64(HDR_NEXT_PAGE))
            })?;
            if next.is_null() {
                self.done = true;
            } else {
                self.current_page = next;
            }
        }
        Ok(())
    }
}

impl<S: PageSource> Iterator for ScanIter<S> {
    type Item = StorageResult<(RecordId, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.buffer_pos >= self.buffer.len() {
            if let Err(e) = self.refill() {
                return Some(Err(e));
            }
            if self.buffer.is_empty() {
                return None;
            }
        }
        let item = self.buffer[self.buffer_pos].clone();
        self.buffer_pos += 1;
        Some(Ok(item))
    }
}

// ---------------------------------------------------------------------------
// Page-level helpers
// ---------------------------------------------------------------------------

fn init_heap_page(p: &mut Page) {
    p.write_u16(HDR_SLOT_COUNT, 0);
    p.write_u16(HDR_FREE_END, PAGE_SIZE as u16);
    p.write_u64(HDR_NEXT_PAGE, 0);
}

/// Try to insert `data` into the page; returns the slot on success or `None`
/// when the page lacks room.
fn try_insert(p: &mut Page, data: &[u8]) -> Option<u16> {
    let slot_count = p.read_u16(HDR_SLOT_COUNT) as usize;
    let free_end = p.read_u16(HDR_FREE_END) as usize;
    let slots_end = HEADER_SIZE + slot_count * SLOT_SIZE;
    let needed = data.len() + SLOT_SIZE;
    if free_end < slots_end || free_end - slots_end < needed {
        return None;
    }
    let new_free_end = free_end - data.len();
    p.write_bytes(new_free_end, data);
    let slot_off = HEADER_SIZE + slot_count * SLOT_SIZE;
    p.write_u16(slot_off, new_free_end as u16);
    p.write_u16(slot_off + 2, data.len() as u16);
    p.write_u16(HDR_SLOT_COUNT, (slot_count + 1) as u16);
    p.write_u16(HDR_FREE_END, new_free_end as u16);
    Some(slot_count as u16)
}

fn read_slot(p: &Page, slot: u16) -> StorageResult<Vec<u8>> {
    let slot_count = p.read_u16(HDR_SLOT_COUNT);
    if slot >= slot_count {
        return Err(StorageError::InvalidRecord { page: 0, slot });
    }
    let slot_off = HEADER_SIZE + slot as usize * SLOT_SIZE;
    let offset_raw = p.read_u16(slot_off);
    let len = p.read_u16(slot_off + 2) as usize;
    if !slot_is_live(offset_raw) {
        return Err(StorageError::InvalidRecord { page: 0, slot });
    }
    Ok(p.read_bytes(offset_raw as usize, len).to_vec())
}

/// Reclaim a tombstoned slot whose dead cell is large enough for `data`.
/// Returns the slot on success. The cell keeps its original length bound in
/// the page (shrinkage inside a reused cell is not reclaimed), but no new
/// free space or slot-directory space is consumed.
fn try_reuse(p: &mut Page, data: &[u8]) -> Option<u16> {
    let slot_count = p.read_u16(HDR_SLOT_COUNT);
    for s in 0..slot_count {
        let slot_off = HEADER_SIZE + s as usize * SLOT_SIZE;
        let offset_raw = p.read_u16(slot_off);
        if offset_raw & TOMBSTONE == 0 {
            continue;
        }
        let offset = offset_raw & !TOMBSTONE;
        let len = p.read_u16(slot_off + 2) as usize;
        if offset == 0 || len < data.len() {
            continue;
        }
        p.write_bytes(offset as usize, data);
        p.write_u16(slot_off, offset);
        p.write_u16(slot_off + 2, data.len() as u16);
        return Some(s);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;
    use tempfile::tempdir;

    fn pool() -> (tempfile::TempDir, BufferPool) {
        let dir = tempdir().unwrap();
        let pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        (dir, BufferPool::with_capacity(pager, 64).unwrap())
    }

    #[test]
    fn record_id_packing() {
        let rid = RecordId {
            page: 123456,
            slot: 789,
        };
        assert_eq!(RecordId::from_u64(rid.to_u64()), rid);
        assert_eq!(rid.to_string(), "r123456:789");
    }

    #[test]
    fn insert_and_get() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let a = heap.insert(&pool, b"first record").unwrap();
        let b = heap.insert(&pool, b"second record, a bit longer").unwrap();
        assert_eq!(heap.get(&pool, a).unwrap(), b"first record");
        assert_eq!(heap.get(&pool, b).unwrap(), b"second record, a bit longer");
        assert_eq!(heap.len(&pool).unwrap(), 2);
    }

    #[test]
    fn insert_spills_to_new_pages() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let payload = vec![7u8; 1000];
        let mut rids = Vec::new();
        for _ in 0..100 {
            rids.push(heap.insert(&pool, &payload).unwrap());
        }
        // 100 × 1 KiB cannot fit on one 8 KiB page.
        let distinct_pages: std::collections::HashSet<u64> = rids.iter().map(|r| r.page).collect();
        assert!(distinct_pages.len() > 1);
        for rid in &rids {
            assert_eq!(heap.get(&pool, *rid).unwrap().len(), 1000);
        }
        assert_eq!(heap.len(&pool).unwrap(), 100);
    }

    #[test]
    fn oversized_record_rejected() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let too_big = vec![0u8; MAX_RECORD_SIZE + 1];
        assert!(matches!(
            heap.insert(&pool, &too_big),
            Err(StorageError::RecordTooLarge(_))
        ));
        let just_fits = vec![0u8; MAX_RECORD_SIZE];
        assert!(heap.insert(&pool, &just_fits).is_ok());
    }

    #[test]
    fn delete_and_scan() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let a = heap.insert(&pool, b"a").unwrap();
        let b = heap.insert(&pool, b"b").unwrap();
        let c = heap.insert(&pool, b"c").unwrap();
        heap.delete(&pool, b).unwrap();
        let rows: Vec<(RecordId, Vec<u8>)> = heap
            .scan(&pool)
            .unwrap()
            .collect::<StorageResult<Vec<_>>>()
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, a);
        assert_eq!(rows[1].0, c);
        assert!(heap.get(&pool, b).is_err());
        assert_eq!(heap.len(&pool).unwrap(), 2);
    }

    #[test]
    fn update_in_place_and_relocating() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let rid = heap.insert(&pool, b"0123456789").unwrap();
        // Smaller payload stays in place.
        let same = heap.update(&pool, rid, b"abc").unwrap();
        assert_eq!(same, rid);
        assert_eq!(heap.get(&pool, rid).unwrap(), b"abc");
        // Larger payload relocates.
        let bigger = vec![9u8; 500];
        let moved = heap.update(&pool, rid, &bigger).unwrap();
        assert_ne!(moved, rid);
        assert_eq!(heap.get(&pool, moved).unwrap(), bigger);
        assert!(heap.get(&pool, rid).is_err());
    }

    #[test]
    fn delete_insert_roundtrip_reuses_slots_without_growing() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        // Fill the single page close to capacity with equal-sized records
        // (14 × (500 + 4) bytes ≈ 7 KiB of the 8 KiB page).
        let payload = vec![3u8; 500];
        let mut rids = Vec::new();
        for _ in 0..14 {
            let rid = heap.insert(&pool, &payload).unwrap();
            assert_eq!(rid.page, heap.first_page().0, "fill must stay on one page");
            rids.push(rid);
        }
        let pages_before = pool.page_count();
        // Delete/insert cycles of compatible records must reclaim the dead
        // slots on the (only) page instead of growing the file.
        for round in 0..10 {
            for i in (0..rids.len()).step_by(2) {
                heap.delete(&pool, rids[i]).unwrap();
            }
            for i in (0..rids.len()).step_by(2) {
                let fresh = vec![round as u8; 500];
                let rid = heap.insert(&pool, &fresh).unwrap();
                assert_eq!(rid.page, rids[i].page, "reinsert must reuse a dead slot");
                rids[i] = rid;
                assert_eq!(heap.get(&pool, rid).unwrap(), fresh);
            }
        }
        assert_eq!(pool.page_count(), pages_before, "page count must stay flat");
        // Smaller records also fit dead cells; the slot directory never grows.
        heap.delete(&pool, rids[0]).unwrap();
        let small = heap.insert(&pool, b"tiny").unwrap();
        assert_eq!(small.page, rids[0].page);
        assert_eq!(heap.get(&pool, small).unwrap(), b"tiny");
        assert_eq!(pool.page_count(), pages_before);
    }

    // ------------------------------------------------------------------
    // Bulk append
    // ------------------------------------------------------------------

    #[test]
    fn bulk_append_roundtrip_and_scan_order() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let rows: Vec<Vec<u8>> = (0..500)
            .map(|i| format!("bulk-row-{i:04}").into_bytes())
            .collect();
        let rids = heap.bulk_append(&pool, &rows).unwrap();
        assert_eq!(rids.len(), rows.len());
        for (rid, row) in rids.iter().zip(&rows) {
            assert_eq!(&heap.get(&pool, *rid).unwrap(), row);
        }
        assert_eq!(heap.len(&pool).unwrap(), 500);
        // Physical scan yields the rows in append order.
        let scanned: Vec<(RecordId, Vec<u8>)> = heap
            .scan(&pool)
            .unwrap()
            .collect::<StorageResult<_>>()
            .unwrap();
        assert_eq!(scanned.len(), 500);
        for ((rid, bytes), expected) in scanned.iter().zip(&rows) {
            assert_eq!(bytes, expected);
            assert!(heap.get(&pool, *rid).is_ok());
        }
    }

    #[test]
    fn bulk_append_matches_row_at_a_time_layout() {
        // The same rows inserted one-by-one and bulk-appended must land on
        // the same number of pages (the bulk path replicates the slotted
        // layout exactly).
        let rows: Vec<Vec<u8>> = (0..300).map(|i| vec![i as u8; 100 + (i % 7)]).collect();
        let (_d1, pool1) = pool();
        let mut one_by_one = HeapFile::create(&pool1).unwrap();
        for row in &rows {
            one_by_one.insert(&pool1, row).unwrap();
        }
        let (_d2, pool2) = pool();
        let mut bulk = HeapFile::create(&pool2).unwrap();
        let rids = bulk.bulk_append(&pool2, &rows).unwrap();
        assert_eq!(pool1.page_count(), pool2.page_count());
        // And the record ids agree page-for-page, slot-for-slot.
        let mut slow = HeapFile::create(&pool1).unwrap();
        let slow_rids: Vec<RecordId> = rows
            .iter()
            .map(|r| slow.insert(&pool1, r).unwrap())
            .collect();
        for (a, b) in rids.iter().zip(&slow_rids) {
            assert_eq!(a.slot, b.slot);
        }
    }

    #[test]
    fn bulk_append_continues_after_existing_rows() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let a = heap.insert(&pool, b"existing-1").unwrap();
        let b = heap.insert(&pool, b"existing-2").unwrap();
        let rows: Vec<Vec<u8>> = (0..200).map(|i| vec![7u8; 200 + i % 5]).collect();
        let rids = heap.bulk_append(&pool, &rows).unwrap();
        // Bulk rows start on the old tail page, after the existing slots.
        assert_eq!(rids[0].page, a.page);
        assert_eq!(rids[0].slot, 2);
        assert_eq!(heap.get(&pool, a).unwrap(), b"existing-1");
        assert_eq!(heap.get(&pool, b).unwrap(), b"existing-2");
        assert_eq!(heap.len(&pool).unwrap(), 202);
        // Inserting after the bulk lands on the new tail, not the first page.
        let tail_rid = heap.insert(&pool, b"after-bulk").unwrap();
        assert_eq!(tail_rid.page, rids.last().unwrap().page);
    }

    #[test]
    fn bulk_append_reclaims_tail_tombstones_before_growing() {
        // Regression for delete→bulk-load churn: tombstoned cells on the
        // tail page must be reclaimed before fresh pages are allocated.
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let payload = vec![3u8; 500];
        // 16 × (500 + 4) + 12 header bytes ≈ 8.1 KiB: the page is full, so
        // reclaiming dead cells is a bulk row's only way to stay on it.
        let rids: Vec<RecordId> = (0..16)
            .map(|_| heap.insert(&pool, &payload).unwrap())
            .collect();
        let rids = &rids[..14];
        let pages_before = pool.page_count();
        for round in 0..10 {
            // Tombstone every other slot, then bulk-load compatible rows.
            for rid in rids.iter().step_by(2) {
                heap.delete(&pool, *rid).unwrap();
            }
            let fresh: Vec<Vec<u8>> = (0..7).map(|_| vec![round as u8; 500]).collect();
            let new_rids = heap.bulk_append(&pool, &fresh).unwrap();
            for (new_rid, row) in new_rids.iter().zip(&fresh) {
                assert_eq!(
                    new_rid.page,
                    heap.first_page().0,
                    "bulk row must reuse a dead slot on the tail page"
                );
                assert_eq!(&heap.get(&pool, *new_rid).unwrap(), row);
            }
            assert_eq!(
                pool.page_count(),
                pages_before,
                "page count must stay flat under delete→bulk churn"
            );
        }
        // A bulk larger than the reclaimable space spills to fresh pages
        // only after the tail is exhausted.
        for rid in rids.iter().step_by(2) {
            heap.delete(&pool, *rid).unwrap();
        }
        let big: Vec<Vec<u8>> = (0..30).map(|i| vec![i as u8; 500]).collect();
        let new_rids = heap.bulk_append(&pool, &big).unwrap();
        assert_eq!(
            new_rids[0].page,
            heap.first_page().0,
            "tail reclaimed first"
        );
        assert!(new_rids.last().unwrap().page > heap.first_page().0);
        assert!(pool.page_count() > pages_before);
    }

    #[test]
    fn bulk_append_oversized_row_rejected() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let too_big = vec![0u8; MAX_RECORD_SIZE + 1];
        assert!(matches!(
            heap.bulk_append(&pool, [&too_big]),
            Err(StorageError::RecordTooLarge(_))
        ));
        // Max-size rows bulk-fill one page each.
        let just_fits = vec![0u8; MAX_RECORD_SIZE];
        let rids = heap.bulk_append(&pool, vec![&just_fits; 3]).unwrap();
        assert_eq!(rids.len(), 3);
        for rid in &rids {
            assert_eq!(heap.get(&pool, *rid).unwrap().len(), MAX_RECORD_SIZE);
        }
    }

    #[test]
    fn bulk_append_empty_iterator_is_noop() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let pages = pool.page_count();
        let rids = heap.bulk_append(&pool, Vec::<Vec<u8>>::new()).unwrap();
        assert!(rids.is_empty());
        assert_eq!(pool.page_count(), pages);
        assert_eq!(heap.len(&pool).unwrap(), 0);
    }

    #[test]
    fn bulk_append_survives_flush_and_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let first;
        let rids: Vec<RecordId>;
        let rows: Vec<Vec<u8>> = (0..1000).map(|i| format!("r{i}").into_bytes()).collect();
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::with_capacity(pager, 16).unwrap();
            let mut heap = HeapFile::create(&pool).unwrap();
            first = heap.first_page();
            rids = heap.bulk_append(&pool, &rows).unwrap();
            pool.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 16).unwrap();
        let heap = HeapFile::open(&pool, first).unwrap();
        for (rid, row) in rids.iter().zip(&rows) {
            assert_eq!(&heap.get(&pool, *rid).unwrap(), row);
        }
    }

    #[test]
    fn double_delete_errors() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let rid = heap.insert(&pool, b"once").unwrap();
        heap.delete(&pool, rid).unwrap();
        assert!(heap.delete(&pool, rid).is_err());
    }

    #[test]
    fn reopen_finds_tail_page() {
        let (_d, pool) = pool();
        let first;
        {
            let mut heap = HeapFile::create(&pool).unwrap();
            first = heap.first_page();
            let payload = vec![1u8; 2000];
            for _ in 0..20 {
                heap.insert(&pool, &payload).unwrap();
            }
        }
        let mut heap = HeapFile::open(&pool, first).unwrap();
        assert_eq!(heap.len(&pool).unwrap(), 20);
        // Inserting after reopen appends to the real tail, not the first page.
        let rid = heap.insert(&pool, b"tail insert").unwrap();
        assert_eq!(heap.get(&pool, rid).unwrap(), b"tail insert");
        assert_eq!(heap.len(&pool).unwrap(), 21);
    }

    #[test]
    fn scan_empty_heap() {
        let (_d, pool) = pool();
        let heap = HeapFile::create(&pool).unwrap();
        assert_eq!(heap.scan(&pool).unwrap().count(), 0);
        assert_eq!(heap.len(&pool).unwrap(), 0);
    }

    #[test]
    fn get_invalid_slot_errors() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let rid = heap.insert(&pool, b"x").unwrap();
        let bogus = RecordId {
            page: rid.page,
            slot: 99,
        };
        assert!(heap.get(&pool, bogus).is_err());
        assert!(heap.delete(&pool, bogus).is_err());
    }

    #[test]
    fn many_records_survive_flush_and_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let first;
        let rids: Vec<RecordId>;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::with_capacity(pager, 16).unwrap();
            let mut heap = HeapFile::create(&pool).unwrap();
            first = heap.first_page();
            rids = (0..500)
                .map(|i| {
                    heap.insert(&pool, format!("record-{i}").as_bytes())
                        .unwrap()
                })
                .collect();
            pool.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 16).unwrap();
        let heap = HeapFile::open(&pool, first).unwrap();
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(
                heap.get(&pool, *rid).unwrap(),
                format!("record-{i}").as_bytes()
            );
        }
    }
}
