//! Slotted-page heap files: unordered collections of variable-length records.
//!
//! Each heap page is laid out as
//!
//! ```text
//! +------------+---------------------+---------------->   <----------------+
//! | header     | slot directory ...  |   free space    ...   record cells  |
//! +------------+---------------------+---------------->   <----------------+
//! 0            12                    12+4*slots        free_end        PAGE_SIZE
//! ```
//!
//! * header: `slot_count: u16`, `free_end: u16`, `next_page: u64`
//! * slot: `offset: u16`, `len: u16`. A deleted slot keeps its cell offset
//!   and length but has the high bit of the offset set (the tombstone bit —
//!   offsets are < 8192, so bit 15 is always free); legacy tombstones with
//!   offset 0 are also recognised. Keeping the cell location lets a later
//!   insert of a compatible (equal-or-smaller) record reclaim the dead cell
//!   instead of growing the file.
//!
//! Records are addressed by [`RecordId`] = (page, slot), which is the stable
//! physical id the rest of the system (indexes, node labels) refers to.

use crate::buffer::{BufferPool, PageSource};
use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};
use serde::{Deserialize, Serialize};

const HDR_SLOT_COUNT: usize = 0;
const HDR_FREE_END: usize = 2;
const HDR_NEXT_PAGE: usize = 4;
const HEADER_SIZE: usize = 12;
const SLOT_SIZE: usize = 4;
/// High bit of a slot's offset field: set when the slot is a tombstone whose
/// cell can be reclaimed. Cell offsets are bounded by `PAGE_SIZE` (8192), so
/// bit 15 never collides with a live offset.
const TOMBSTONE: u16 = 0x8000;

/// `true` when a raw slot offset denotes a live record.
#[inline]
fn slot_is_live(offset_raw: u16) -> bool {
    offset_raw != 0 && offset_raw & TOMBSTONE == 0
}

/// Maximum record payload that fits on one page.
pub const MAX_RECORD_SIZE: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// Stable identifier of a record in a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId {
    /// Page holding the record.
    pub page: u64,
    /// Slot index within the page.
    pub slot: u16,
}

impl RecordId {
    /// Pack into a single `u64` (page in the high 48 bits, slot in the low 16)
    /// for storage inside B+tree payloads.
    pub fn to_u64(self) -> u64 {
        (self.page << 16) | self.slot as u64
    }

    /// Inverse of [`RecordId::to_u64`].
    pub fn from_u64(v: u64) -> Self {
        RecordId {
            page: v >> 16,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}:{}", self.page, self.slot)
    }
}

/// A heap file: a linked list of slotted pages.
#[derive(Debug, Clone)]
pub struct HeapFile {
    first_page: PageId,
    last_page: PageId,
}

impl HeapFile {
    /// Create a new heap file with one empty page.
    pub fn create(pool: &BufferPool) -> StorageResult<Self> {
        let first = pool.allocate_page()?;
        pool.with_page_mut(first, init_heap_page)?;
        Ok(HeapFile {
            first_page: first,
            last_page: first,
        })
    }

    /// Open a heap file for read-only use: the tail pointer is left at the
    /// first page instead of being located (only [`HeapFile::insert`] needs
    /// the tail), so opening costs zero page reads. Snapshot readers rebuild
    /// their catalog handles on every commit; this keeps that rebuild cheap.
    pub fn open_read_only(first_page: PageId) -> Self {
        HeapFile {
            first_page,
            last_page: first_page,
        }
    }

    /// Re-open a heap file given its first page (walks to find the tail).
    pub fn open<S: PageSource>(pool: S, first_page: PageId) -> StorageResult<Self> {
        let mut last = first_page;
        loop {
            let next = pool.with_page(last, |p| PageId(p.read_u64(HDR_NEXT_PAGE)))?;
            if next.is_null() {
                break;
            }
            last = next;
        }
        Ok(HeapFile {
            first_page,
            last_page: last,
        })
    }

    /// First page id (persisted in the catalog).
    pub fn first_page(&self) -> PageId {
        self.first_page
    }

    /// Insert a record, returning its id. The tail page is tried first
    /// (fresh slot, then a compatible tombstoned slot whose dead cell is
    /// large enough); only when the tail has no room does the file grow.
    pub fn insert(&mut self, pool: &BufferPool, data: &[u8]) -> StorageResult<RecordId> {
        if data.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge(data.len()));
        }
        // Try the tail page first: append into free space, or reclaim a
        // compatible dead slot before growing the file.
        let inserted = pool.with_page_mut(self.last_page, |p| {
            try_insert(p, data).or_else(|| try_reuse(p, data))
        })?;
        if let Some(slot) = inserted {
            return Ok(RecordId {
                page: self.last_page.0,
                slot,
            });
        }
        // Allocate and link a new tail page.
        let new_page = pool.allocate_page()?;
        pool.with_page_mut(new_page, init_heap_page)?;
        pool.with_page_mut(self.last_page, |p| p.write_u64(HDR_NEXT_PAGE, new_page.0))?;
        self.last_page = new_page;
        let slot = pool
            .with_page_mut(new_page, |p| try_insert(p, data))?
            .expect("fresh page always has room for a record below MAX_RECORD_SIZE");
        Ok(RecordId {
            page: new_page.0,
            slot,
        })
    }

    /// Fetch a record's bytes.
    pub fn get<S: PageSource>(&self, pool: S, rid: RecordId) -> StorageResult<Vec<u8>> {
        pool.with_page(PageId(rid.page), |p| read_slot(p, rid.slot))?
    }

    /// Delete a record. The slot is tombstoned with its cell location kept,
    /// so a later insert of an equal-or-smaller record can reclaim the dead
    /// cell (space is never compacted).
    pub fn delete(&self, pool: &BufferPool, rid: RecordId) -> StorageResult<()> {
        pool.with_page_mut(PageId(rid.page), |p| {
            let slot_count = p.read_u16(HDR_SLOT_COUNT);
            if rid.slot >= slot_count {
                return Err(StorageError::InvalidRecord {
                    page: rid.page,
                    slot: rid.slot,
                });
            }
            let slot_off = HEADER_SIZE + rid.slot as usize * SLOT_SIZE;
            let offset = p.read_u16(slot_off);
            if !slot_is_live(offset) {
                return Err(StorageError::InvalidRecord {
                    page: rid.page,
                    slot: rid.slot,
                });
            }
            p.write_u16(slot_off, offset | TOMBSTONE);
            Ok(())
        })?
    }

    /// Overwrite a record in place when the new payload fits in the old
    /// slot; otherwise the record is deleted and re-inserted (the returned
    /// id is the new location).
    pub fn update(
        &mut self,
        pool: &BufferPool,
        rid: RecordId,
        data: &[u8],
    ) -> StorageResult<RecordId> {
        let fits = pool.with_page_mut(PageId(rid.page), |p| -> StorageResult<bool> {
            let slot_count = p.read_u16(HDR_SLOT_COUNT);
            if rid.slot >= slot_count {
                return Err(StorageError::InvalidRecord {
                    page: rid.page,
                    slot: rid.slot,
                });
            }
            let slot_off = HEADER_SIZE + rid.slot as usize * SLOT_SIZE;
            let offset_raw = p.read_u16(slot_off);
            let offset = offset_raw as usize;
            let len = p.read_u16(slot_off + 2) as usize;
            if !slot_is_live(offset_raw) {
                return Err(StorageError::InvalidRecord {
                    page: rid.page,
                    slot: rid.slot,
                });
            }
            if data.len() <= len {
                p.write_bytes(offset, data);
                p.write_u16(slot_off + 2, data.len() as u16);
                Ok(true)
            } else {
                Ok(false)
            }
        })??;
        if fits {
            Ok(rid)
        } else {
            self.delete(pool, rid)?;
            self.insert(pool, data)
        }
    }

    /// Scan every live record. Returns `(RecordId, bytes)` pairs in physical
    /// order. The whole scan materializes page-by-page, never holding more
    /// than one page's records at a time in the closure.
    pub fn scan<S: PageSource>(&self, pool: S) -> StorageResult<ScanIter<S>> {
        Ok(ScanIter {
            pool,
            current_page: self.first_page,
            buffer: Vec::new(),
            buffer_pos: 0,
            done: false,
        })
    }

    /// Count live records.
    pub fn len<S: PageSource>(&self, pool: S) -> StorageResult<usize> {
        let mut count = 0usize;
        let mut page = self.first_page;
        loop {
            let (n, next) = pool.with_page(page, |p| {
                let slot_count = p.read_u16(HDR_SLOT_COUNT);
                let mut live = 0usize;
                for s in 0..slot_count {
                    let slot_off = HEADER_SIZE + s as usize * SLOT_SIZE;
                    if slot_is_live(p.read_u16(slot_off)) {
                        live += 1;
                    }
                }
                (live, PageId(p.read_u64(HDR_NEXT_PAGE)))
            })?;
            count += n;
            if next.is_null() {
                break;
            }
            page = next;
        }
        Ok(count)
    }
}

/// Iterator over the live records of a heap file. Generic over the
/// [`PageSource`], so the same scan serves the writer's current view and
/// concurrent snapshot readers.
pub struct ScanIter<S: PageSource> {
    pool: S,
    current_page: PageId,
    buffer: Vec<(RecordId, Vec<u8>)>,
    buffer_pos: usize,
    done: bool,
}

impl<S: PageSource> ScanIter<S> {
    fn refill(&mut self) -> StorageResult<()> {
        let pool = self.pool;
        self.buffer.clear();
        self.buffer_pos = 0;
        while self.buffer.is_empty() && !self.done {
            let page = self.current_page;
            let next = pool.with_page(page, |p| {
                let slot_count = p.read_u16(HDR_SLOT_COUNT);
                for s in 0..slot_count {
                    let slot_off = HEADER_SIZE + s as usize * SLOT_SIZE;
                    let offset_raw = p.read_u16(slot_off);
                    let len = p.read_u16(slot_off + 2) as usize;
                    if slot_is_live(offset_raw) {
                        self.buffer.push((
                            RecordId {
                                page: page.0,
                                slot: s,
                            },
                            p.read_bytes(offset_raw as usize, len).to_vec(),
                        ));
                    }
                }
                PageId(p.read_u64(HDR_NEXT_PAGE))
            })?;
            if next.is_null() {
                self.done = true;
            } else {
                self.current_page = next;
            }
        }
        Ok(())
    }
}

impl<S: PageSource> Iterator for ScanIter<S> {
    type Item = StorageResult<(RecordId, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.buffer_pos >= self.buffer.len() {
            if let Err(e) = self.refill() {
                return Some(Err(e));
            }
            if self.buffer.is_empty() {
                return None;
            }
        }
        let item = self.buffer[self.buffer_pos].clone();
        self.buffer_pos += 1;
        Some(Ok(item))
    }
}

// ---------------------------------------------------------------------------
// Page-level helpers
// ---------------------------------------------------------------------------

fn init_heap_page(p: &mut Page) {
    p.write_u16(HDR_SLOT_COUNT, 0);
    p.write_u16(HDR_FREE_END, PAGE_SIZE as u16);
    p.write_u64(HDR_NEXT_PAGE, 0);
}

/// Try to insert `data` into the page; returns the slot on success or `None`
/// when the page lacks room.
fn try_insert(p: &mut Page, data: &[u8]) -> Option<u16> {
    let slot_count = p.read_u16(HDR_SLOT_COUNT) as usize;
    let free_end = p.read_u16(HDR_FREE_END) as usize;
    let slots_end = HEADER_SIZE + slot_count * SLOT_SIZE;
    let needed = data.len() + SLOT_SIZE;
    if free_end < slots_end || free_end - slots_end < needed {
        return None;
    }
    let new_free_end = free_end - data.len();
    p.write_bytes(new_free_end, data);
    let slot_off = HEADER_SIZE + slot_count * SLOT_SIZE;
    p.write_u16(slot_off, new_free_end as u16);
    p.write_u16(slot_off + 2, data.len() as u16);
    p.write_u16(HDR_SLOT_COUNT, (slot_count + 1) as u16);
    p.write_u16(HDR_FREE_END, new_free_end as u16);
    Some(slot_count as u16)
}

fn read_slot(p: &Page, slot: u16) -> StorageResult<Vec<u8>> {
    let slot_count = p.read_u16(HDR_SLOT_COUNT);
    if slot >= slot_count {
        return Err(StorageError::InvalidRecord { page: 0, slot });
    }
    let slot_off = HEADER_SIZE + slot as usize * SLOT_SIZE;
    let offset_raw = p.read_u16(slot_off);
    let len = p.read_u16(slot_off + 2) as usize;
    if !slot_is_live(offset_raw) {
        return Err(StorageError::InvalidRecord { page: 0, slot });
    }
    Ok(p.read_bytes(offset_raw as usize, len).to_vec())
}

/// Reclaim a tombstoned slot whose dead cell is large enough for `data`.
/// Returns the slot on success. The cell keeps its original length bound in
/// the page (shrinkage inside a reused cell is not reclaimed), but no new
/// free space or slot-directory space is consumed.
fn try_reuse(p: &mut Page, data: &[u8]) -> Option<u16> {
    let slot_count = p.read_u16(HDR_SLOT_COUNT);
    for s in 0..slot_count {
        let slot_off = HEADER_SIZE + s as usize * SLOT_SIZE;
        let offset_raw = p.read_u16(slot_off);
        if offset_raw & TOMBSTONE == 0 {
            continue;
        }
        let offset = offset_raw & !TOMBSTONE;
        let len = p.read_u16(slot_off + 2) as usize;
        if offset == 0 || len < data.len() {
            continue;
        }
        p.write_bytes(offset as usize, data);
        p.write_u16(slot_off, offset);
        p.write_u16(slot_off + 2, data.len() as u16);
        return Some(s);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;
    use tempfile::tempdir;

    fn pool() -> (tempfile::TempDir, BufferPool) {
        let dir = tempdir().unwrap();
        let pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        (dir, BufferPool::with_capacity(pager, 64).unwrap())
    }

    #[test]
    fn record_id_packing() {
        let rid = RecordId {
            page: 123456,
            slot: 789,
        };
        assert_eq!(RecordId::from_u64(rid.to_u64()), rid);
        assert_eq!(rid.to_string(), "r123456:789");
    }

    #[test]
    fn insert_and_get() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let a = heap.insert(&pool, b"first record").unwrap();
        let b = heap.insert(&pool, b"second record, a bit longer").unwrap();
        assert_eq!(heap.get(&pool, a).unwrap(), b"first record");
        assert_eq!(heap.get(&pool, b).unwrap(), b"second record, a bit longer");
        assert_eq!(heap.len(&pool).unwrap(), 2);
    }

    #[test]
    fn insert_spills_to_new_pages() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let payload = vec![7u8; 1000];
        let mut rids = Vec::new();
        for _ in 0..100 {
            rids.push(heap.insert(&pool, &payload).unwrap());
        }
        // 100 × 1 KiB cannot fit on one 8 KiB page.
        let distinct_pages: std::collections::HashSet<u64> = rids.iter().map(|r| r.page).collect();
        assert!(distinct_pages.len() > 1);
        for rid in &rids {
            assert_eq!(heap.get(&pool, *rid).unwrap().len(), 1000);
        }
        assert_eq!(heap.len(&pool).unwrap(), 100);
    }

    #[test]
    fn oversized_record_rejected() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let too_big = vec![0u8; MAX_RECORD_SIZE + 1];
        assert!(matches!(
            heap.insert(&pool, &too_big),
            Err(StorageError::RecordTooLarge(_))
        ));
        let just_fits = vec![0u8; MAX_RECORD_SIZE];
        assert!(heap.insert(&pool, &just_fits).is_ok());
    }

    #[test]
    fn delete_and_scan() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let a = heap.insert(&pool, b"a").unwrap();
        let b = heap.insert(&pool, b"b").unwrap();
        let c = heap.insert(&pool, b"c").unwrap();
        heap.delete(&pool, b).unwrap();
        let rows: Vec<(RecordId, Vec<u8>)> = heap
            .scan(&pool)
            .unwrap()
            .collect::<StorageResult<Vec<_>>>()
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, a);
        assert_eq!(rows[1].0, c);
        assert!(heap.get(&pool, b).is_err());
        assert_eq!(heap.len(&pool).unwrap(), 2);
    }

    #[test]
    fn update_in_place_and_relocating() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let rid = heap.insert(&pool, b"0123456789").unwrap();
        // Smaller payload stays in place.
        let same = heap.update(&pool, rid, b"abc").unwrap();
        assert_eq!(same, rid);
        assert_eq!(heap.get(&pool, rid).unwrap(), b"abc");
        // Larger payload relocates.
        let bigger = vec![9u8; 500];
        let moved = heap.update(&pool, rid, &bigger).unwrap();
        assert_ne!(moved, rid);
        assert_eq!(heap.get(&pool, moved).unwrap(), bigger);
        assert!(heap.get(&pool, rid).is_err());
    }

    #[test]
    fn delete_insert_roundtrip_reuses_slots_without_growing() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        // Fill the single page close to capacity with equal-sized records
        // (14 × (500 + 4) bytes ≈ 7 KiB of the 8 KiB page).
        let payload = vec![3u8; 500];
        let mut rids = Vec::new();
        for _ in 0..14 {
            let rid = heap.insert(&pool, &payload).unwrap();
            assert_eq!(rid.page, heap.first_page().0, "fill must stay on one page");
            rids.push(rid);
        }
        let pages_before = pool.page_count();
        // Delete/insert cycles of compatible records must reclaim the dead
        // slots on the (only) page instead of growing the file.
        for round in 0..10 {
            for i in (0..rids.len()).step_by(2) {
                heap.delete(&pool, rids[i]).unwrap();
            }
            for i in (0..rids.len()).step_by(2) {
                let fresh = vec![round as u8; 500];
                let rid = heap.insert(&pool, &fresh).unwrap();
                assert_eq!(rid.page, rids[i].page, "reinsert must reuse a dead slot");
                rids[i] = rid;
                assert_eq!(heap.get(&pool, rid).unwrap(), fresh);
            }
        }
        assert_eq!(pool.page_count(), pages_before, "page count must stay flat");
        // Smaller records also fit dead cells; the slot directory never grows.
        heap.delete(&pool, rids[0]).unwrap();
        let small = heap.insert(&pool, b"tiny").unwrap();
        assert_eq!(small.page, rids[0].page);
        assert_eq!(heap.get(&pool, small).unwrap(), b"tiny");
        assert_eq!(pool.page_count(), pages_before);
    }

    #[test]
    fn double_delete_errors() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let rid = heap.insert(&pool, b"once").unwrap();
        heap.delete(&pool, rid).unwrap();
        assert!(heap.delete(&pool, rid).is_err());
    }

    #[test]
    fn reopen_finds_tail_page() {
        let (_d, pool) = pool();
        let first;
        {
            let mut heap = HeapFile::create(&pool).unwrap();
            first = heap.first_page();
            let payload = vec![1u8; 2000];
            for _ in 0..20 {
                heap.insert(&pool, &payload).unwrap();
            }
        }
        let mut heap = HeapFile::open(&pool, first).unwrap();
        assert_eq!(heap.len(&pool).unwrap(), 20);
        // Inserting after reopen appends to the real tail, not the first page.
        let rid = heap.insert(&pool, b"tail insert").unwrap();
        assert_eq!(heap.get(&pool, rid).unwrap(), b"tail insert");
        assert_eq!(heap.len(&pool).unwrap(), 21);
    }

    #[test]
    fn scan_empty_heap() {
        let (_d, pool) = pool();
        let heap = HeapFile::create(&pool).unwrap();
        assert_eq!(heap.scan(&pool).unwrap().count(), 0);
        assert_eq!(heap.len(&pool).unwrap(), 0);
    }

    #[test]
    fn get_invalid_slot_errors() {
        let (_d, pool) = pool();
        let mut heap = HeapFile::create(&pool).unwrap();
        let rid = heap.insert(&pool, b"x").unwrap();
        let bogus = RecordId {
            page: rid.page,
            slot: 99,
        };
        assert!(heap.get(&pool, bogus).is_err());
        assert!(heap.delete(&pool, bogus).is_err());
    }

    #[test]
    fn many_records_survive_flush_and_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let first;
        let rids: Vec<RecordId>;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::with_capacity(pager, 16).unwrap();
            let mut heap = HeapFile::create(&pool).unwrap();
            first = heap.first_page();
            rids = (0..500)
                .map(|i| {
                    heap.insert(&pool, format!("record-{i}").as_bytes())
                        .unwrap()
                })
                .collect();
            pool.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 16).unwrap();
        let heap = HeapFile::open(&pool, first).unwrap();
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(
                heap.get(&pool, *rid).unwrap(),
                format!("record-{i}").as_bytes()
            );
        }
    }
}
