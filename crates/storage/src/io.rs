//! Injectable storage I/O: the seam between the engine and the disk.
//!
//! Everything the pager and the write-ahead log do to a file goes through
//! the [`StorageIo`] trait — positioned reads and writes over page-sized
//! extents, fsync and truncation. Two implementations ship:
//!
//! * [`DiskIo`] — a plain `std::fs::File`, the production path.
//! * [`FaultIo`] — a deterministic, seed-driven wrapper that injects media
//!   faults on a programmable [`FaultSchedule`]: single-bit flips on read or
//!   write, torn (partial-extent) writes, transient `EIO`-style errors, and
//!   failing or lying fsyncs. The schedule is shared (one `Arc` covers both
//!   the data file and the log), so cross-file triggers — "after the next
//!   data fsync, kill the next log write" — are expressible, which is how
//!   the legacy [`crate::buffer::CrashPoint`] machinery is implemented on
//!   top of it.
//!
//! ## Error taxonomy
//!
//! Injected faults come in two severities, distinguished by
//! [`std::io::ErrorKind`] so retry policies can tell them apart:
//!
//! * **Transient** faults use `ErrorKind::Interrupted`. The operation may
//!   succeed if retried; the pager and log retry these with bounded
//!   exponential backoff (see [`RetryPolicy`]).
//! * **Fatal** faults (simulated process death, the sticky post-crash state)
//!   use `ErrorKind::Other` and keep failing forever. They are never
//!   retried.

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// Positioned I/O over a database or log file. All offsets are absolute byte
/// positions; implementations must not assume sequential access.
#[allow(clippy::len_without_is_empty)]
pub trait StorageIo: Send {
    /// Read up to `buf.len()` bytes at `offset`. Short reads at end-of-file
    /// are allowed (the pager zero-fills); a return of 0 means end-of-file.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize>;

    /// Write all of `data` at `offset`, extending the file as needed.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Flush file content (and metadata) to stable storage.
    fn sync(&mut self) -> io::Result<()>;

    /// Truncate or extend the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// Current file length in bytes.
    fn len(&mut self) -> io::Result<u64>;
}

/// Production I/O: a plain file handle.
#[derive(Debug)]
pub struct DiskIo {
    file: std::fs::File,
}

impl DiskIo {
    /// Wrap an open file handle.
    pub fn new(file: std::fs::File) -> Self {
        DiskIo { file }
    }
}

impl StorageIo for DiskIo {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.file.seek(SeekFrom::Start(offset))?;
        let mut total = 0;
        while total < buf.len() {
            let n = self.file.read(&mut buf[total..])?;
            if n == 0 {
                break;
            }
            total += n;
        }
        Ok(total)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

/// Which file an I/O operation targets. The two halves of the engine share
/// one [`FaultSchedule`], so schedules can express cross-file rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// The main database file (pages).
    Data,
    /// The write-ahead log.
    Wal,
}

/// How often to retry transient I/O errors, and how long to back off
/// between attempts. The delay doubles per attempt, capped at `max_delay` —
/// bounded exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retrying.
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_micros(250),
            max_delay: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep before retry number `retry` (1-based).
    pub fn delay_for(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }

    /// Run `op` with this policy: transient failures
    /// (`ErrorKind::Interrupted`) are retried with exponential backoff,
    /// everything else surfaces immediately.
    pub fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    attempt += 1;
                    if attempt >= self.attempts {
                        return Err(e);
                    }
                    std::thread::sleep(self.delay_for(attempt));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Probabilities (per matching operation) of each injected fault kind.
/// All default to zero; a schedule with a zeroed config only fires its
/// deterministic one-shot rules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultConfig {
    /// Transient `EIO` on read (retryable).
    pub read_error: f64,
    /// Flip one random bit in the bytes returned by a read (transient
    /// in-memory corruption; a re-read sees the true content).
    pub read_bit_flip: f64,
    /// Transient `EIO` on write, before any byte reaches the file.
    pub write_error: f64,
    /// Flip one random bit in the bytes written (persisted corruption).
    pub write_bit_flip: f64,
    /// Write only a prefix of the extent, then fail transiently (a torn
    /// write: the tail of the extent keeps its old content).
    pub torn_write: f64,
    /// Fail fsync. The buffer pool treats this as poisoning the writer.
    pub sync_error: f64,
    /// Report fsync success without having synced ("lying fsync").
    pub sync_lie: f64,
}

impl FaultConfig {
    /// A light mixed-fault profile for randomized robustness matrices.
    pub fn light() -> Self {
        FaultConfig {
            read_error: 0.002,
            read_bit_flip: 0.001,
            write_error: 0.002,
            write_bit_flip: 0.0005,
            torn_write: 0.0,
            sync_error: 0.0,
            sync_lie: 0.0,
        }
    }
}

/// Counters describing what a [`FaultSchedule`] observed and injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Read operations observed.
    pub reads: u64,
    /// Write operations observed.
    pub writes: u64,
    /// Sync operations observed.
    pub syncs: u64,
    /// Transient read errors injected.
    pub read_errors: u64,
    /// Transient write errors injected.
    pub write_errors: u64,
    /// Bits flipped in read buffers.
    pub read_bit_flips: u64,
    /// Bits flipped in written bytes.
    pub write_bit_flips: u64,
    /// Torn (partial) writes injected.
    pub torn_writes: u64,
    /// fsync failures injected.
    pub sync_errors: u64,
    /// fsyncs silently skipped ("lying fsync").
    pub sync_lies: u64,
}

/// A deterministic, seed-driven fault plan shared by the data file and the
/// write-ahead log. Two layers:
///
/// * **One-shot rules** ported from the legacy `CrashPoint` machinery:
///   crash (torn half-write, then sticky failure) at the n-th WAL append,
///   crash at the n-th data-page write, crash between checkpoint data-sync
///   and log truncation.
/// * **Probabilistic faults** from a [`FaultConfig`], drawn from a
///   seed-driven generator so every run of a given seed injects the exact
///   same faults at the exact same operations.
///
/// Once a one-shot crash trips, the schedule is *sticky*: every subsequent
/// operation on either file fails fatally, as if the process had died.
#[derive(Debug)]
pub struct FaultSchedule {
    rng: u64,
    config: FaultConfig,
    /// Remaining probabilistic faults allowed (None = unlimited).
    fault_budget: Option<u64>,
    // One-shot deterministic rules (the CrashPoint port).
    wal_appends_until_crash: Option<u64>,
    data_writes_until_crash: Option<u64>,
    /// Crash at the `n+1`-th WAL fsync — the group-commit fsync covering a
    /// whole batch of commit records.
    wal_syncs_until_crash: Option<u64>,
    /// Armed by `CrashPoint::CheckpointTruncate`; converted into
    /// `wal_poisoned` by the next data-file sync.
    checkpoint_truncate_crash: bool,
    /// The next WAL operation dies (set between checkpoint data-sync and
    /// log truncation).
    wal_poisoned: bool,
    crashed: bool,
    stats: FaultStats,
    /// Human-readable fault event log (bounded), for test diagnostics.
    events: Vec<String>,
}

const EVENT_CAP: usize = 256;

/// The size boundary separating header writes from page/record writes.
/// WAL record frames start at byte 16; data pages at byte `PAGE_SIZE`.
const WAL_RECORD_START: u64 = 16;

/// What the schedule tells a [`FaultIo`] to do for one write.
enum WriteAction {
    Proceed,
    /// Write only this many leading bytes, then fail.
    Torn(usize),
    /// Fail without writing (transient if `fatal` is false).
    Fail {
        fatal: bool,
    },
}

/// The canonical fatal error: the same message the legacy crash-injection
/// hooks produced, so existing suites keep matching.
pub(crate) fn fatal_crash_error() -> io::Error {
    io::Error::other("simulated crash (fault injection)")
}

fn transient_error(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::Interrupted,
        format!("injected transient I/O error ({what})"),
    )
}

impl FaultSchedule {
    /// An inert schedule: no probabilistic faults, no one-shot rules. Rules
    /// are armed later (this is what `inject_crash` installs lazily).
    pub fn inert() -> Self {
        Self::from_seed(0, FaultConfig::default())
    }

    /// A seed-driven schedule with the given fault probabilities.
    pub fn from_seed(seed: u64, config: FaultConfig) -> Self {
        FaultSchedule {
            rng: seed ^ 0x9E37_79B9_7F4A_7C15,
            config,
            fault_budget: None,
            wal_appends_until_crash: None,
            data_writes_until_crash: None,
            wal_syncs_until_crash: None,
            checkpoint_truncate_crash: false,
            wal_poisoned: false,
            crashed: false,
            stats: FaultStats::default(),
            events: Vec::new(),
        }
    }

    /// Cap the number of probabilistic faults this schedule may inject.
    pub fn with_fault_budget(mut self, budget: u64) -> Self {
        self.fault_budget = Some(budget);
        self
    }

    /// Stop injecting: clear every rule and probability (the sticky crashed
    /// state is cleared too). Used by tests to end the fault phase.
    pub fn disarm(&mut self) {
        self.config = FaultConfig::default();
        self.wal_appends_until_crash = None;
        self.data_writes_until_crash = None;
        self.wal_syncs_until_crash = None;
        self.checkpoint_truncate_crash = false;
        self.wal_poisoned = false;
        self.crashed = false;
    }

    /// Arm: crash (torn half-write then sticky failure) at the `n+1`-th WAL
    /// record append from now.
    pub fn crash_at_wal_append(&mut self, n: u64) {
        self.wal_appends_until_crash = Some(n);
    }

    /// Arm: crash at the `n+1`-th data-file page write from now (nothing of
    /// that write reaches the file).
    pub fn crash_at_data_write(&mut self, n: u64) {
        self.data_writes_until_crash = Some(n);
    }

    /// Arm: crash at the `n+1`-th WAL fsync from now (the log content
    /// written so far stays on disk; the sync and everything after fail).
    pub fn crash_at_wal_sync(&mut self, n: u64) {
        self.wal_syncs_until_crash = Some(n);
    }

    /// Arm: crash after the next checkpoint makes the data file durable but
    /// before it truncates the log.
    pub fn crash_at_checkpoint_truncate(&mut self) {
        self.checkpoint_truncate_crash = true;
    }

    /// `true` once a one-shot crash rule tripped; every operation on either
    /// file now fails.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Counters of observed and injected operations.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The (bounded) log of injected fault events, newest last.
    pub fn events(&self) -> &[String] {
        &self.events
    }

    fn note(&mut self, event: String) {
        if self.events.len() < EVENT_CAP {
            self.events.push(event);
        }
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: deterministic, cheap, good enough for fault placement.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if let Some(0) = self.fault_budget {
            return false;
        }
        let hit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 1.0 < p;
        if hit {
            if let Some(b) = &mut self.fault_budget {
                *b -= 1;
            }
        }
        hit
    }

    fn before_read(&mut self, kind: FileKind, offset: u64, len: usize) -> io::Result<()> {
        self.stats.reads += 1;
        if self.crashed {
            return Err(fatal_crash_error());
        }
        if self.chance(self.config.read_error) {
            self.stats.read_errors += 1;
            self.note(format!("transient read error: {kind:?} @{offset}+{len}"));
            return Err(transient_error("read"));
        }
        Ok(())
    }

    fn after_read(&mut self, kind: FileKind, offset: u64, buf: &mut [u8]) {
        if buf.is_empty() {
            return;
        }
        if self.chance(self.config.read_bit_flip) {
            let bit = (self.next_u64() as usize) % (buf.len() * 8);
            buf[bit / 8] ^= 1 << (bit % 8);
            self.stats.read_bit_flips += 1;
            self.note(format!("read bit flip: {kind:?} @{offset} bit {bit}"));
        }
    }

    /// Decide what happens to a write, and optionally corrupt the payload
    /// (the caller passes a mutable copy).
    fn on_write(&mut self, kind: FileKind, offset: u64, data: &mut [u8]) -> WriteAction {
        self.stats.writes += 1;
        if self.crashed {
            return WriteAction::Fail { fatal: true };
        }
        if self.wal_poisoned && kind == FileKind::Wal {
            self.crashed = true;
            self.note("crash: WAL write after checkpoint data-sync".into());
            return WriteAction::Fail { fatal: true };
        }
        // One-shot crash rules, counted over record/page writes only (file
        // header writes sit below the boundary and are not counted — this
        // is what keeps the legacy CrashPoint counting semantics).
        if kind == FileKind::Wal && offset >= WAL_RECORD_START {
            if let Some(n) = self.wal_appends_until_crash {
                if n == 0 {
                    self.crashed = true;
                    self.note(format!("crash: torn WAL append @{offset}"));
                    return WriteAction::Torn(data.len() / 2);
                }
                self.wal_appends_until_crash = Some(n - 1);
            }
        }
        if kind == FileKind::Data && offset >= crate::page::PAGE_SIZE as u64 {
            if let Some(n) = self.data_writes_until_crash {
                if n == 0 {
                    self.crashed = true;
                    self.note(format!("crash: data write @{offset}"));
                    return WriteAction::Fail { fatal: true };
                }
                self.data_writes_until_crash = Some(n - 1);
            }
        }
        if self.chance(self.config.write_error) {
            self.stats.write_errors += 1;
            self.note(format!("transient write error: {kind:?} @{offset}"));
            return WriteAction::Fail { fatal: false };
        }
        if !data.is_empty() && self.chance(self.config.torn_write) {
            self.stats.torn_writes += 1;
            let keep = (self.next_u64() as usize) % data.len();
            self.note(format!("torn write: {kind:?} @{offset} kept {keep}"));
            return WriteAction::Torn(keep);
        }
        if !data.is_empty() && self.chance(self.config.write_bit_flip) {
            let bit = (self.next_u64() as usize) % (data.len() * 8);
            data[bit / 8] ^= 1 << (bit % 8);
            self.stats.write_bit_flips += 1;
            self.note(format!("write bit flip: {kind:?} @{offset} bit {bit}"));
        }
        WriteAction::Proceed
    }

    /// Decide what happens to an fsync. `Ok(true)` = really sync,
    /// `Ok(false)` = lie (skip the sync, report success).
    fn on_sync(&mut self, kind: FileKind) -> io::Result<bool> {
        self.stats.syncs += 1;
        if self.crashed {
            return Err(fatal_crash_error());
        }
        if self.wal_poisoned && kind == FileKind::Wal {
            self.crashed = true;
            self.note("crash: WAL sync after checkpoint data-sync".into());
            return Err(fatal_crash_error());
        }
        if kind == FileKind::Wal {
            if let Some(n) = self.wal_syncs_until_crash {
                if n == 0 {
                    self.crashed = true;
                    self.note("crash: WAL group fsync".into());
                    return Err(fatal_crash_error());
                }
                self.wal_syncs_until_crash = Some(n - 1);
            }
        }
        if self.chance(self.config.sync_error) {
            self.stats.sync_errors += 1;
            self.note(format!("fsync failure: {kind:?}"));
            // fsync failure is NOT transient: after a failed fsync the
            // kernel may have dropped the dirty pages, so retrying and
            // succeeding proves nothing (fsyncgate). Surface it fatally.
            return Err(io::Error::other("injected fsync failure"));
        }
        if kind == FileKind::Data && self.checkpoint_truncate_crash {
            // The data file becomes durable; the *next* WAL operation (the
            // log truncation, or anything else) dies.
            self.checkpoint_truncate_crash = false;
            self.wal_poisoned = true;
        }
        if self.chance(self.config.sync_lie) {
            self.stats.sync_lies += 1;
            self.note(format!("lying fsync: {kind:?}"));
            return Ok(false);
        }
        Ok(true)
    }

    fn on_set_len(&mut self, kind: FileKind) -> io::Result<()> {
        if self.crashed {
            return Err(fatal_crash_error());
        }
        if self.wal_poisoned && kind == FileKind::Wal {
            self.crashed = true;
            self.note("crash: WAL truncation after checkpoint data-sync".into());
            return Err(fatal_crash_error());
        }
        Ok(())
    }
}

/// A shared, thread-safe handle to a [`FaultSchedule`].
pub type SharedFaultSchedule = Arc<Mutex<FaultSchedule>>;

/// Wrap a schedule for sharing between the data file and the log.
pub fn shared_schedule(schedule: FaultSchedule) -> SharedFaultSchedule {
    Arc::new(Mutex::new(schedule))
}

/// Fault-injecting I/O: consults a shared [`FaultSchedule`] around every
/// operation on the wrapped [`StorageIo`].
pub struct FaultIo {
    inner: Box<dyn StorageIo>,
    kind: FileKind,
    schedule: SharedFaultSchedule,
}

impl FaultIo {
    /// Wrap `inner`, attributing its operations to `kind` on `schedule`.
    pub fn new(inner: Box<dyn StorageIo>, kind: FileKind, schedule: SharedFaultSchedule) -> Self {
        FaultIo {
            inner,
            kind,
            schedule,
        }
    }
}

impl StorageIo for FaultIo {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.schedule
            .lock()
            .before_read(self.kind, offset, buf.len())?;
        let n = self.inner.read_at(offset, buf)?;
        self.schedule
            .lock()
            .after_read(self.kind, offset, &mut buf[..n]);
        Ok(n)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut copy = data.to_vec();
        let action = self.schedule.lock().on_write(self.kind, offset, &mut copy);
        match action {
            WriteAction::Proceed => self.inner.write_at(offset, &copy),
            WriteAction::Torn(keep) => {
                let _ = self.inner.write_at(offset, &copy[..keep]);
                if self.schedule.lock().crashed() {
                    Err(fatal_crash_error())
                } else {
                    Err(transient_error("torn write"))
                }
            }
            WriteAction::Fail { fatal } => Err(if fatal {
                fatal_crash_error()
            } else {
                transient_error("write")
            }),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.schedule.lock().on_sync(self.kind)? {
            self.inner.sync()
        } else {
            Ok(()) // lying fsync
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.schedule.lock().on_set_len(self.kind)?;
        self.inner.set_len(len)
    }

    fn len(&mut self) -> io::Result<u64> {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use tempfile::tempdir;

    fn disk(path: &std::path::Path) -> Box<dyn StorageIo> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .unwrap();
        Box::new(DiskIo::new(file))
    }

    #[test]
    fn disk_io_roundtrip_and_short_read() {
        let dir = tempdir().unwrap();
        let mut io = disk(&dir.path().join("f"));
        io.write_at(10, b"hello").unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(io.read_at(10, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        // Reading past the end is a short read, not an error.
        let mut big = [0u8; 32];
        let n = io.read_at(12, &mut big).unwrap();
        assert_eq!(n, 3);
        assert_eq!(&big[..3], b"llo");
        assert_eq!(io.len().unwrap(), 15);
        io.set_len(4).unwrap();
        assert_eq!(io.len().unwrap(), 4);
        io.sync().unwrap();
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = FaultSchedule::from_seed(seed, FaultConfig::light());
            let mut hits = Vec::new();
            for i in 0..2000u64 {
                if s.before_read(FileKind::Data, i, 64).is_err() {
                    hits.push(i);
                }
            }
            hits
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds must differ");
        assert!(!run(7).is_empty(), "light profile must inject something");
    }

    #[test]
    fn wal_append_crash_counts_record_writes_only() {
        let dir = tempdir().unwrap();
        let schedule = shared_schedule(FaultSchedule::inert());
        schedule.lock().crash_at_wal_append(1);
        let mut io = FaultIo::new(disk(&dir.path().join("w")), FileKind::Wal, schedule.clone());
        // Header writes (offset < 16) never count.
        io.write_at(0, &[0u8; 16]).unwrap();
        io.write_at(0, &[0u8; 16]).unwrap();
        // First record append passes, second dies torn.
        io.write_at(16, &[1u8; 100]).unwrap();
        let err = io.write_at(116, &[2u8; 100]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(schedule.lock().crashed());
        // Torn: exactly half of the failed frame reached the file.
        assert_eq!(io.len().unwrap(), 116 + 50);
        // Sticky: everything fails from here.
        assert!(io.write_at(0, &[0u8; 4]).is_err());
        assert!(io.sync().is_err());
    }

    #[test]
    fn checkpoint_truncate_rule_arms_on_data_sync() {
        let dir = tempdir().unwrap();
        let schedule = shared_schedule(FaultSchedule::inert());
        schedule.lock().crash_at_checkpoint_truncate();
        let mut data = FaultIo::new(
            disk(&dir.path().join("d")),
            FileKind::Data,
            schedule.clone(),
        );
        let mut wal = FaultIo::new(disk(&dir.path().join("w")), FileKind::Wal, schedule.clone());
        // WAL traffic before the data sync is unaffected.
        wal.write_at(16, &[1u8; 8]).unwrap();
        data.write_at(8192, &[2u8; 8]).unwrap();
        data.sync().unwrap(); // checkpoint data durable; rule arms
        assert!(wal.write_at(0, &[0u8; 16]).is_err(), "truncation must die");
        assert!(schedule.lock().crashed());
    }

    #[test]
    fn transient_faults_are_interrupted_kind_and_retryable() {
        let dir = tempdir().unwrap();
        // read_error probability 1: every read fails transiently.
        let schedule = shared_schedule(FaultSchedule::from_seed(
            1,
            FaultConfig {
                read_error: 1.0,
                ..FaultConfig::default()
            },
        ));
        let mut io = FaultIo::new(
            disk(&dir.path().join("f")),
            FileKind::Data,
            schedule.clone(),
        );
        io.write_at(0, b"abc").unwrap();
        let mut buf = [0u8; 3];
        let err = io.read_at(0, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        // Disarm: reads work again (the fault was transient, the bytes are
        // intact on disk).
        schedule.lock().disarm();
        assert_eq!(io.read_at(0, &mut buf).unwrap(), 3);
        assert_eq!(&buf, b"abc");
    }

    #[test]
    fn write_bit_flips_persist_to_disk() {
        let dir = tempdir().unwrap();
        let schedule = shared_schedule(FaultSchedule::from_seed(
            3,
            FaultConfig {
                write_bit_flip: 1.0,
                ..FaultConfig::default()
            },
        ));
        let mut io = FaultIo::new(
            disk(&dir.path().join("f")),
            FileKind::Data,
            schedule.clone(),
        );
        io.write_at(0, &[0u8; 64]).unwrap();
        schedule.lock().disarm();
        let mut buf = [0u8; 64];
        io.read_at(0, &mut buf).unwrap();
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit must have flipped");
        assert_eq!(schedule.lock().stats().write_bit_flips, 1);
    }

    #[test]
    fn retry_policy_retries_transient_only() {
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_micros(1),
            max_delay: Duration::from_micros(4),
        };
        let mut left = 2;
        let out = policy.run(|| {
            if left > 0 {
                left -= 1;
                Err(transient_error("test"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        // Fatal errors are never retried.
        let mut calls = 0;
        let out: io::Result<()> = policy.run(|| {
            calls += 1;
            Err(fatal_crash_error())
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
        // Exhausting attempts surfaces the transient error.
        let mut calls = 0;
        let out: io::Result<()> = policy.run(|| {
            calls += 1;
            Err(transient_error("test"))
        });
        assert!(out.is_err());
        assert_eq!(calls, 3);
    }

    #[test]
    fn fault_budget_caps_probabilistic_faults() {
        let mut s = FaultSchedule::from_seed(
            5,
            FaultConfig {
                read_error: 1.0,
                ..FaultConfig::default()
            },
        )
        .with_fault_budget(2);
        let mut failures = 0;
        for i in 0..100 {
            if s.before_read(FileKind::Data, i, 8).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 2);
    }
}
