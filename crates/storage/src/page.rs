//! Page definitions: size, identifiers and small read/write helpers.

/// Size of every page in the database file, in bytes.
///
/// 8 KiB balances fan-out of B+tree nodes (hundreds of keys per node for the
/// short keys Crimson uses) against wasted space for small heap records.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within the database file. Page 0 is the file header;
/// page 1 onward hold catalog, heap and index data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel for "no page" (used for next-page pointers).
    pub const NULL: PageId = PageId(0);

    /// Byte offset of this page in the database file.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }

    /// `true` when the id is the null sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// An owned page buffer. The buffer pool hands out access to these via
/// closures; they are plain byte arrays with helper accessors.
///
/// Each page carries an in-memory **recovery LSN** (recLSN): the log-tail
/// position at the moment of the page's latest mutation, stamped by the
/// buffer pool. It marks *from where* in the log records affecting this
/// page can start, and is 0 for a page never mutated in this process. It is
/// not part of the 8 KiB on-disk payload (page layouts are unchanged); the
/// authoritative WAL-before-data bookkeeping — the LSN of the page's last
/// *logged* record — lives on the buffer pool's frame.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8]>,
    lsn: u64,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A zero-filled page.
    pub fn new() -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            lsn: 0,
        }
    }

    /// Wrap an existing full-size buffer.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        assert_eq!(
            data.len(),
            PAGE_SIZE,
            "page buffers must be PAGE_SIZE bytes"
        );
        Page {
            data: data.into_boxed_slice(),
            lsn: 0,
        }
    }

    /// The page's recovery LSN: the log-tail position at its latest
    /// mutation, 0 when never mutated in this process.
    #[inline]
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// Stamp the page's recovery LSN. Called by the buffer pool on every
    /// mutation.
    #[inline]
    pub fn set_lsn(&mut self, lsn: u64) {
        self.lsn = lsn;
    }

    /// Immutable view of the raw bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the raw bytes.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Read a `u16` at `offset` (little-endian).
    #[inline]
    pub fn read_u16(&self, offset: usize) -> u16 {
        u16::from_le_bytes([self.data[offset], self.data[offset + 1]])
    }

    /// Write a `u16` at `offset` (little-endian).
    #[inline]
    pub fn write_u16(&mut self, offset: usize, value: u16) {
        self.data[offset..offset + 2].copy_from_slice(&value.to_le_bytes());
    }

    /// Read a `u32` at `offset` (little-endian).
    #[inline]
    pub fn read_u32(&self, offset: usize) -> u32 {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.data[offset..offset + 4]);
        u32::from_le_bytes(buf)
    }

    /// Write a `u32` at `offset` (little-endian).
    #[inline]
    pub fn write_u32(&mut self, offset: usize, value: u32) {
        self.data[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Read a `u64` at `offset` (little-endian).
    #[inline]
    pub fn read_u64(&self, offset: usize) -> u64 {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.data[offset..offset + 8]);
        u64::from_le_bytes(buf)
    }

    /// Write a `u64` at `offset` (little-endian).
    #[inline]
    pub fn write_u64(&mut self, offset: usize, value: u64) {
        self.data[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Copy `src` into the page starting at `offset`.
    #[inline]
    pub fn write_bytes(&mut self, offset: usize, src: &[u8]) {
        self.data[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Borrow `len` bytes starting at `offset`.
    #[inline]
    pub fn read_bytes(&self, offset: usize, len: usize) -> &[u8] {
        &self.data[offset..offset + len]
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_offsets() {
        assert_eq!(PageId(0).offset(), 0);
        assert_eq!(PageId(3).offset(), 3 * PAGE_SIZE as u64);
        assert!(PageId::NULL.is_null());
        assert!(!PageId(1).is_null());
    }

    #[test]
    fn new_page_is_zeroed() {
        let p = Page::new();
        assert_eq!(p.bytes().len(), PAGE_SIZE);
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn integer_roundtrips() {
        let mut p = Page::new();
        p.write_u16(10, 0xBEEF);
        p.write_u32(20, 0xDEADBEEF);
        p.write_u64(30, u64::MAX - 5);
        assert_eq!(p.read_u16(10), 0xBEEF);
        assert_eq!(p.read_u32(20), 0xDEADBEEF);
        assert_eq!(p.read_u64(30), u64::MAX - 5);
    }

    #[test]
    fn byte_slices() {
        let mut p = Page::new();
        p.write_bytes(100, b"crimson");
        assert_eq!(p.read_bytes(100, 7), b"crimson");
    }

    #[test]
    #[should_panic]
    fn from_bytes_rejects_wrong_size() {
        let _ = Page::from_bytes(vec![0u8; 100]);
    }

    #[test]
    fn display_page_id() {
        assert_eq!(PageId(42).to_string(), "page#42");
    }
}
