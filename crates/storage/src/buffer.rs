//! Buffer pool: a sharded, latch-based clock (second-chance) page cache
//! between the pager and the access methods, the enforcement point of the
//! write-ahead-logging protocol, and the provider of snapshot reads for
//! concurrent readers.
//!
//! The paper argues that "simulation trees are huge, yet the portions
//! retrieved by a single query are relatively small", so queries must not
//! load whole trees into memory. The buffer pool is the mechanism that makes
//! that work: a bounded set of frames stays resident, everything else is
//! written back (when dirty) and evicted.
//!
//! ## Design
//!
//! * **Sharded page table.** Frames are indexed by a set of shard maps
//!   (page-id → frame), each behind its own short-held mutex, so concurrent
//!   readers touching different pages never contend on a single lock.
//! * **Per-frame latches.** Each frame carries a read/write latch over its
//!   page content plus an atomic pin count and reference bit. Many readers
//!   latch a frame shared; the single writer latches it exclusive only for
//!   the duration of one page mutation.
//! * **Writer/IO latch.** The pager (file I/O), the write-ahead log and the
//!   single-transaction state live behind one mutex — the *io latch*. Cache
//!   hits never touch it; misses, mutations and eviction serialize on it,
//!   which is exactly the WAL-before-data ordering anyway.
//! * **Latch order** (deadlock freedom): io latch → shard map → frame
//!   latch → mvcc registry → version map. A thread holding a later lock
//!   never acquires an earlier one.
//! * **Fixed capacity, clock eviction.** Residency never exceeds `capacity`
//!   pages globally (not per shard). The clock hand sweeps shards round-robin
//!   clearing reference bits; the first unpinned, unreferenced frame is the
//!   victim. Eviction only runs under the io latch.
//! * **`Arc<Page>` frames, zero-clone writes.** Frames hold `Arc<Page>`;
//!   flush and eviction write through a borrow of the frame's page. Mutation
//!   goes through `Arc::make_mut` (copy-on-write only when a pinned reader
//!   or an undo snapshot still holds the old revision).
//! * **Pinning.** [`BufferPool::pin`] hands out an owned [`PinnedPage`]
//!   guard that keeps the frame resident (the clock skips pinned frames) and
//!   gives lock-free read access to the page bytes for the guard's lifetime.
//!
//! ## Versioned snapshot reads (MVCC)
//!
//! Concurrent readers must never observe an in-flight transaction — and
//! must never be starved into giving up by a continuously committing
//! writer. The pool keeps **bounded per-page version chains**: when a
//! transaction first touches a page, the pristine `Arc<Page>` (the same
//! capture the undo log needs) is published as the chain's *pending*
//! before-image; at commit the pending image graduates into the chain's
//! *committed* history, stamped with the epoch range it was current for.
//! Each chain keeps at most [`BufferPool::VERSION_CHAIN_CAP`] committed
//! versions.
//!
//! A reader **pins an epoch** ([`BufferPool::pin_epoch`]) — the commit
//! sequence of the last published commit — and reads every page *as of*
//! that epoch ([`BufferPool::with_page_at`] / [`BufferPool::pin_at`]): the
//! chain entry with the smallest `valid_through >= epoch` governs; with no
//! governing entry the pending image (if the open transaction touched the
//! page) and then the live frame serve. Because a pinned epoch keeps its
//! versions alive, a multi-page read runs start to finish against one
//! frozen view and **never retries**, however fast the writer commits.
//!
//! Versions retire via **lazy GC on commit**: entries no pinned epoch can
//! govern are dropped, and a chain past its cap sheds its oldest entries,
//! raising the pool-wide [`BufferPool::version_floor`]. A reader whose
//! epoch sinks below the floor gets [`StorageError::SnapshotRetired`] and
//! re-pins — the only (cold) retry left, reachable only when a pinned
//! read outlives `VERSION_CHAIN_CAP` commits that all touch its pages.
//! When the last pin drops, all committed versions are cleared eagerly: a
//! fresh pin at the current epoch always reads live frames.
//!
//! The writer's own committed view ([`BufferPool::with_page_snapshot`] /
//! [`BufferPool::pin_snapshot`], or the [`Snapshot`] page source) is the
//! degenerate epoch `commit_seq`: only the pending before-image can
//! govern, so those paths check just the pending slot.
//!
//! Commit and rollback publish inside a **view transition**: the
//! [`BufferPool::read_generation`] counter goes odd, pending images
//! graduate (commit) or are restored into the frames (rollback), and the
//! counter goes even again. Readers no longer retry on generation changes;
//! the counter survives as a cheap "did anything commit?" key for cached
//! reader metadata (catalog roots).
//!
//! ## Transactions and WAL-before-data
//!
//! * [`BufferPool::begin_txn`] snapshots the file-header state; every
//!   subsequent `with_page_mut`/`allocate_page` captures the page's
//!   before-image on first touch (a cheap `Arc` clone).
//! * [`BufferPool::commit_txn`] appends the after-image of every dirtied
//!   page plus a commit record to the log and optionally fsyncs.
//! * [`BufferPool::rollback_txn`] restores the captured before-images in
//!   memory and rolls the header snapshot back.
//! * **Eviction** enforces WAL-before-data: a dirty page of the *active*
//!   transaction is *stolen* — its before-image is appended as an undo
//!   record and the log fsynced before the data-file write; a page whose
//!   latest committed image is not yet durable forces a log fsync first.
//! * [`BufferPool::flush`] is a **checkpoint**: fsync the log, write every
//!   dirty page and the header to the data file, fsync it, then truncate
//!   the log.
//!
//! Mutations performed outside any transaction (as the lower-level unit
//! tests and the `logging(false)` bench baseline do) bypass the log and
//! carry no crash-safety contract — exactly the pre-WAL behaviour.

use crate::error::{StorageError, StorageResult};
use crate::io::{
    fatal_crash_error, shared_schedule, FaultIo, FaultSchedule, FileKind, RetryPolicy,
    SharedFaultSchedule,
};
use crate::page::{Page, PageId};
use crate::pager::{PageVerdict, Pager};
use crate::wal::{self, CommitHandles, Lsn, RecoveryReport, Wal, WalRecordKind};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Number of page-table shards. Page ids are assigned sequentially, so a
/// simple modulo spreads consecutive pages across all shards.
const SHARD_COUNT: usize = 16;

#[inline]
fn shard_of(pid: PageId) -> usize {
    (pid.0 % SHARD_COUNT as u64) as usize
}

/// Statistics counters exposed for the repository-scale experiment (E9),
/// the interval-index page-read assertions and the WAL-overhead bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Number of page requests satisfied from the cache.
    pub hits: u64,
    /// Number of page requests that had to read from disk.
    pub misses: u64,
    /// Number of frames evicted to make room (clean or dirty).
    pub evictions: u64,
    /// Number of pages flushed by explicit flush calls.
    pub flushes: u64,
    /// Number of dirty pages written back during eviction.
    pub writebacks: u64,
    /// WAL records appended.
    pub wal_appends: u64,
    /// WAL bytes appended.
    pub wal_bytes: u64,
    /// WAL fsync calls.
    pub wal_syncs: u64,
    /// Full page images appended to the WAL (after-images + steal undos).
    pub wal_page_images: u64,
    /// Transactions committed with at least one logged page.
    pub commits: u64,
    /// Checksum failures detected on page reads (before repair).
    pub corrupt_pages: u64,
    /// Corrupt pages successfully repaired (from the WAL or from a resident
    /// frame).
    pub repaired_pages: u64,
    /// Corrupt pages that could not be repaired and were quarantined.
    pub quarantined_pages: u64,
    /// Group-commit fsync rounds that made at least one commit durable.
    pub group_commits: u64,
    /// Commit records covered by those rounds (sum of group sizes).
    pub group_commit_members: u64,
    /// Fsyncs avoided by group commit: `group_commit_members -
    /// group_commits` (every member beyond the first in a round rode a
    /// shared fsync).
    pub fsyncs_saved: u64,
    /// Snapshot-read retries observed by readers (today only the cold
    /// re-pin after [`StorageError::SnapshotRetired`]), reported via
    /// [`BufferPool::note_reader_retry`]. Under MVCC this stays flat in
    /// steady state; the stress harness asserts it.
    pub reader_retries: u64,
    /// Versioned reads served from a stored (non-live) chain entry — the
    /// reads that would have raced the writer under the old
    /// generation-retry scheme.
    pub version_reads: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; zero when no accesses happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total page requests (hits + misses) — the "page reads" a query cost.
    pub fn page_reads(&self) -> u64 {
        self.hits + self.misses
    }

    /// Total data-file page writes (checkpoint flushes + eviction
    /// write-backs) — the "page writes" a workload cost.
    pub fn page_writes(&self) -> u64 {
        self.flushes + self.writebacks
    }
}

/// Atomic counterpart of [`BufferStats`]: every counter is an `AtomicU64`,
/// so concurrent readers update hit/miss accounting without taking any
/// lock — and without losing increments, which keeps the exact cold-vs-warm
/// ratios the interval-index tests assert.
#[derive(Debug, Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    flushes: AtomicU64,
    writebacks: AtomicU64,
    corrupt_pages: AtomicU64,
    repaired_pages: AtomicU64,
    quarantined_pages: AtomicU64,
    version_reads: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> BufferStats {
        BufferStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            corrupt_pages: self.corrupt_pages.load(Ordering::Relaxed),
            repaired_pages: self.repaired_pages.load(Ordering::Relaxed),
            quarantined_pages: self.quarantined_pages.load(Ordering::Relaxed),
            version_reads: self.version_reads.load(Ordering::Relaxed),
            ..BufferStats::default()
        }
    }

    fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
        self.corrupt_pages.store(0, Ordering::Relaxed);
        self.repaired_pages.store(0, Ordering::Relaxed);
        self.quarantined_pages.store(0, Ordering::Relaxed);
        self.version_reads.store(0, Ordering::Relaxed);
    }

    #[inline]
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point at which a simulated crash can be injected, for the
/// crash-recovery test harness. Once the point trips, every subsequent disk
/// write fails as if the process had died; the test then reopens the files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Fail the `n+1`-th WAL append from now with a torn half-write.
    WalAppend(u64),
    /// Fail the `n+1`-th data-file page write from now (eviction write-back
    /// or checkpoint flush).
    DataWrite(u64),
    /// Fail the `n+1`-th WAL fsync from now — the group fsync covering every
    /// member of an in-flight commit batch.
    WalSync(u64),
    /// Fail the next checkpoint after the data file is durable but before
    /// the log is truncated.
    CheckpointTruncate,
}

/// Options controlling an incremental scrub pass (see
/// [`BufferPool::scrub`]).
#[derive(Debug, Clone, Copy)]
pub struct ScrubOptions {
    /// Pages verified per io-latch acquisition: the latch is released (and
    /// readers/writer admitted) between chunks.
    pub chunk_pages: usize,
    /// Optional sleep between chunks, throttling the scrub's I/O rate.
    pub throttle: Option<Duration>,
}

impl Default for ScrubOptions {
    fn default() -> Self {
        ScrubOptions {
            chunk_pages: 256,
            throttle: None,
        }
    }
}

/// Outcome of a scrub pass: one counter per verdict, so
/// `pages_scanned == ok + backfilled + repaired + quarantined +
/// skipped_dirty`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubStats {
    /// Pages examined (every page except the header).
    pub pages_scanned: u64,
    /// Pages whose stored checksum matched the disk bytes.
    pub pages_ok: u64,
    /// Pages with no stored checksum (v1 files, fresh allocations) whose
    /// checksum was computed and recorded.
    pub pages_backfilled: u64,
    /// Checksum-failed pages repaired from a resident frame or the WAL.
    pub pages_repaired: u64,
    /// Checksum-failed pages that could not be repaired (includes pages
    /// already quarantined before this pass).
    pub pages_quarantined: u64,
    /// Checksum-failed pages dirtied by the open transaction: skipped —
    /// memory holds the truth and commit/checkpoint will overwrite the bad
    /// sectors.
    pub pages_skipped_dirty: u64,
}

/// When the background checkpointer fires (see
/// [`BufferPool::start_checkpointer`]). Both triggers are optional; with
/// neither set the thread idles (useful for tests that drive
/// [`BufferPool::checkpoint_background`] by hand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint once the un-truncated log backlog reaches this many bytes.
    pub wal_bytes: Option<u64>,
    /// Checkpoint at least this often regardless of backlog.
    pub interval: Option<Duration>,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            wal_bytes: Some(8 * 1024 * 1024),
            interval: Some(Duration::from_secs(5)),
        }
    }
}

/// RAII handle for the background checkpoint thread: dropping it stops and
/// joins the thread. The thread holds only a `Weak` pool reference, so the
/// pool's lifetime is never extended by its own checkpointer.
pub struct CheckpointerGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for CheckpointerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for CheckpointerGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointerGuard")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

/// Latched page content of one frame.
struct FrameBody {
    page: Arc<Page>,
    dirty: bool,
    /// LSN of the last WAL record covering this frame's content (commit
    /// image or steal undo); 0 when never logged. Eviction must not write
    /// the frame to the data file until the log is durable past this point.
    rec_lsn: Lsn,
}

/// One resident page: identity and pin/reference state are atomic (checked
/// under the shard lock where it matters), the content sits behind a
/// read/write latch.
struct Frame {
    pid: PageId,
    pins: AtomicU32,
    referenced: AtomicBool,
    body: RwLock<FrameBody>,
}

impl Frame {
    fn new(pid: PageId, page: Arc<Page>, dirty: bool, pins: u32) -> Arc<Frame> {
        Arc::new(Frame {
            pid,
            pins: AtomicU32::new(pins),
            referenced: AtomicBool::new(true),
            body: RwLock::new(FrameBody {
                page,
                dirty,
                rec_lsn: 0,
            }),
        })
    }
}

/// One page-table shard: page id → slot, plus the shard's clock hand.
#[derive(Default)]
struct ShardMap {
    map: HashMap<PageId, usize>,
    slots: Vec<Arc<Frame>>,
    hand: usize,
}

impl ShardMap {
    /// Remove the frame at `idx`, keeping the map and hand consistent.
    fn remove_slot(&mut self, idx: usize) -> Arc<Frame> {
        let frame = self.slots.swap_remove(idx);
        self.map.remove(&frame.pid);
        if idx < self.slots.len() {
            let moved = self.slots[idx].pid;
            self.map.insert(moved, idx);
        }
        if self.hand >= self.slots.len() {
            self.hand = 0;
        }
        frame
    }

    fn insert(&mut self, frame: Arc<Frame>) {
        let pid = frame.pid;
        self.slots.push(frame);
        self.map.insert(pid, self.slots.len() - 1);
    }
}

/// One stored page image: `None` means the page did not exist (it was
/// allocated by a later transaction); versioned reads serve an empty page.
type VersionImage = Option<Arc<Page>>;

/// Bounded multi-version history of one page.
///
/// `committed` holds past images in ascending `valid_through` order: the
/// entry `(T, image)` is the page's content for every epoch in
/// `(prev_T, T]`, where `prev_T` is the previous entry's stamp (or the
/// pool-wide version floor minus one for the oldest entry — the floor is
/// raised whenever an older entry is dropped, so the oldest entry's range
/// is never under-covered). `pending` is the open transaction's
/// before-image — the content current *through the present commit
/// sequence* — and graduates into `committed` when the transaction
/// commits.
#[derive(Default)]
struct VersionChain {
    committed: Vec<(u64, VersionImage)>,
    pending: Option<VersionImage>,
}

impl VersionChain {
    /// The committed entry governing `epoch`: the one with the smallest
    /// `valid_through >= epoch`. `None` means the chain stores nothing for
    /// this epoch — the pending image or the live frame is current.
    fn governing(&self, epoch: u64) -> Option<&VersionImage> {
        let idx = self.committed.partition_point(|&(t, _)| t < epoch);
        self.committed.get(idx).map(|(_, image)| image)
    }

    fn is_empty(&self) -> bool {
        self.committed.is_empty() && self.pending.is_none()
    }
}

/// The epoch registry and commit sequencing — everything versioned reads
/// coordinate with the committer on. One short mutex: pinning an epoch
/// reads `commit_seq` and registers under the *same* lock GC takes, so a
/// pin can never race a commit into pinning an epoch whose versions were
/// just collected.
struct MvccState {
    /// Sequence of the last published commit. Epoch 0 is the state at
    /// open.
    commit_seq: u64,
    /// Pinned epochs → pin count. The smallest key is the GC horizon.
    epochs: BTreeMap<u64, usize>,
    /// Commit sequence → catalog root published by that commit, seeded
    /// with `(0, root-at-open)`. A pinned reader resolves its catalog from
    /// the governing (largest `seq <= epoch`) entry. GC keeps the
    /// governing entry for the oldest pin and everything newer.
    roots: BTreeMap<u64, PageId>,
}

/// Before-image captured on a transaction's first touch of a page.
struct UndoEntry {
    /// `None` for pages allocated inside the transaction (their "before"
    /// state is nonexistence).
    image: Option<Arc<Page>>,
    /// Whether the frame was already dirty (from an earlier committed but
    /// not yet checkpointed transaction) when captured.
    prior_dirty: bool,
}

struct TxnState {
    id: u64,
    /// Pages dirtied by this transaction, in id order (deterministic log).
    dirty: BTreeSet<PageId>,
    undo: HashMap<PageId, UndoEntry>,
    /// Pages whose before-image was already logged because the page was
    /// stolen (written to the data file before commit).
    stolen: HashSet<PageId>,
    /// Header snapshot at begin: (page_count, catalog_root, user_meta,
    /// checkpoint_lsn).
    header: (u64, PageId, PageId, u64),
}

/// Everything the single writer serializes on: file I/O, the log and the
/// open transaction.
struct IoState {
    pager: Pager,
    wal: Wal,
    /// Whether transactional mutations are logged. Disabled only by the
    /// bench baseline; see [`BufferPool::set_logging`].
    logging: bool,
    txn: Option<TxnState>,
    recovery: Option<RecoveryReport>,
    /// Global clock cursor: which shard the next eviction sweep starts at.
    sweep_shard: usize,
    /// Shared fault schedule, when fault injection is active. The same
    /// schedule object drives the [`FaultIo`] wrappers around the pager's
    /// and the WAL's file handles.
    fault: Option<SharedFaultSchedule>,
    /// Degraded mode: mutation entry points fail with `ReadOnly`.
    read_only: bool,
    /// Pages that failed their checksum and could not be repaired:
    /// page id → (expected CRC, found CRC). Reads fail fast with
    /// `CorruptPage` instead of re-reading the bad sectors.
    quarantined: BTreeMap<u64, (u32, u32)>,
}

impl IoState {
    /// Whether an injected sticky crash has fired: every subsequent I/O
    /// (and the next checkpoint) must keep failing until reopen.
    fn sim_crashed(&self) -> bool {
        self.fault.as_ref().is_some_and(|s| s.lock().crashed())
    }

    /// Record a fatal log/fsync failure: the writer is poisoned until
    /// reopen. Stored in the WAL's shared state so a group-commit leader
    /// (which never holds the io latch) can set it too.
    fn poison(&mut self, why: &StorageError) {
        self.wal.poison(&why.to_string());
    }

    /// Gate for mutation entry points: degraded mode and poisoning both
    /// refuse writes with a typed error.
    fn check_writable(&self) -> StorageResult<()> {
        if self.read_only {
            return Err(StorageError::ReadOnly);
        }
        if let Some(m) = self.wal.poisoned() {
            return Err(StorageError::WriterPoisoned(m));
        }
        Ok(())
    }
}

/// A sharded, latch-based, fixed-capacity clock buffer pool wrapping a
/// [`Pager`] and the database's [`Wal`]. `Sync`: any number of reader
/// threads may hit the cache, pin pages and take snapshot reads while the
/// single writer runs transactions.
pub struct BufferPool {
    shards: Vec<Mutex<ShardMap>>,
    io: Mutex<IoState>,
    /// Per-page version chains: the open transaction's pending
    /// before-image plus up to [`BufferPool::VERSION_CHAIN_CAP`] committed
    /// historical images. Versioned reads prefer a governing chain entry
    /// over the frame content.
    versions: RwLock<HashMap<PageId, VersionChain>>,
    /// Epoch registry + commit sequencing (see [`MvccState`]).
    mvcc: Mutex<MvccState>,
    /// Oldest epoch the version chains can still serve. Raised (under the
    /// version-map write lock) whenever a committed entry is dropped while
    /// an epoch below it could still be pinned; readers check it after
    /// acquiring the version-map read lock, so a passed check guarantees
    /// the epoch's entries are present for the whole lookup.
    version_floor: AtomicU64,
    /// Read-view generation: even when the committed view is stable, odd
    /// while commit/rollback publishes the version transition. Bumped by
    /// two per transition, so it doubles as a "did anything commit?"
    /// counter for snapshot readers' cached metadata.
    view_gen: AtomicU64,
    resident: AtomicUsize,
    capacity: usize,
    stats: AtomicStats,
    /// The WAL's concurrency handles: the durable-LSN watermark, the group
    /// fsync path and the poison slot — all reachable without the io latch,
    /// which is what lets `wait_durable` lead or follow a group commit while
    /// the next transaction already holds io.
    commit: CommitHandles,
    /// Parking lot for `begin_txn_blocking`: committers wait here for the
    /// single writer slot instead of spinning on `TransactionActive`.
    txn_slot: StdMutex<()>,
    txn_cv: StdCondvar,
    /// Snapshot-read retries reported by readers (see
    /// [`BufferPool::note_reader_retry`]).
    reader_retries: AtomicU64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("resident", &self.resident.load(Ordering::Relaxed))
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

/// Owned RAII guard for a pinned page: keeps the frame resident and readable
/// without holding any pool lock. Dropping the guard unpins the frame.
/// Pins served from a stored version or pending before-image carry no
/// frame (nothing to unpin; the guard owns the bytes).
pub struct PinnedPage {
    pid: PageId,
    page: Arc<Page>,
    frame: Option<Arc<Frame>>,
}

impl PinnedPage {
    /// The pinned page's id.
    pub fn page_id(&self) -> PageId {
        self.pid
    }
}

impl std::ops::Deref for PinnedPage {
    type Target = Page;
    fn deref(&self) -> &Page {
        &self.page
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        if let Some(frame) = &self.frame {
            let prev = frame.pins.fetch_sub(1, Ordering::AcqRel);
            debug_assert!(prev > 0, "unpinning a frame that is not pinned");
        }
    }
}

/// RAII guard for a pinned snapshot epoch (see [`BufferPool::pin_epoch`]).
/// While it lives, every page version needed to read as of [`Self::epoch`]
/// survives garbage collection (subject to the per-chain cap). Dropping
/// the guard unregisters the epoch; when the last pin drops, stored
/// versions are cleared eagerly.
pub struct EpochPin {
    pool: Arc<BufferPool>,
    epoch: u64,
}

impl EpochPin {
    /// The pinned commit sequence.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pool this epoch is pinned on.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }
}

impl std::fmt::Debug for EpochPin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochPin")
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        self.pool.unpin_epoch(self.epoch);
    }
}

/// Read-only page access, implemented by the pool's *current* view
/// (`&BufferPool`) and its *committed-snapshot* view ([`Snapshot`]). The
/// B+tree, heap and catalog read paths are generic over this, which is what
/// lets the same descent code serve the writer and concurrent snapshot
/// readers.
pub trait PageSource: Copy {
    /// Run `f` with read access to the page.
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R>;
    /// Pin the page, keeping its content readable without pool locks.
    fn pin_page(&self, pid: PageId) -> StorageResult<PinnedPage>;
    /// The catalog root this view should read metadata from.
    fn catalog_root(&self) -> PageId;
}

impl PageSource for &BufferPool {
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        BufferPool::with_page(self, pid, f)
    }

    fn pin_page(&self, pid: PageId) -> StorageResult<PinnedPage> {
        BufferPool::pin(self, pid)
    }

    fn catalog_root(&self) -> PageId {
        BufferPool::catalog_root(self)
    }
}

/// The committed-snapshot view of a pool: reads route through the pending
/// before-images, so an in-flight transaction is invisible. For reads
/// frozen at a *pinned epoch* (stable across commits too), see
/// [`BufferPool::pin_epoch`] and `db::EpochSnapshot`.
#[derive(Clone, Copy)]
pub struct Snapshot<'a>(pub &'a BufferPool);

impl PageSource for Snapshot<'_> {
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        self.0.with_page_snapshot(pid, f)
    }

    fn pin_page(&self, pid: PageId) -> StorageResult<PinnedPage> {
        self.0.pin_snapshot(pid)
    }

    fn catalog_root(&self) -> PageId {
        self.0.committed_catalog_root()
    }
}

impl BufferPool {
    /// Default number of resident pages (~8 MiB with 8 KiB pages).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Hard cap on committed versions kept per page chain. Commit-time GC
    /// is pin-aware — a chain holds at most one entry per live pinned
    /// epoch, so ordinary operation never reaches the cap however many
    /// commits a pin is held across. The cap only bites when more than
    /// this many *distinct* pinned epochs demand versions of one page;
    /// then the oldest pins are retired and their readers re-pin via
    /// [`StorageError::SnapshotRetired`], bounding the memory a crowd of
    /// stalled readers can pin.
    pub const VERSION_CHAIN_CAP: usize = 4;

    /// Wrap a pager with the default capacity. Opening an existing file runs
    /// crash recovery against its WAL before the pool is usable.
    pub fn new(pager: Pager) -> StorageResult<Self> {
        Self::with_capacity(pager, Self::DEFAULT_CAPACITY)
    }

    /// Wrap a pager with an explicit page capacity (minimum 8). For a
    /// freshly created file the sibling WAL is truncated; for an existing
    /// file the WAL is replayed (redo committed transactions, undo losers)
    /// before the pool is handed out.
    pub fn with_capacity(pager: Pager, capacity: usize) -> StorageResult<Self> {
        let mut pager = pager;
        let wal_file = wal::wal_path_for(pager.path());
        let (wal, recovery) = if pager.is_fresh() {
            (Wal::create(&wal_file)?, None)
        } else {
            let mut wal = Wal::open(&wal_file)?;
            let report = wal::recover(&mut pager, &mut wal)?;
            (wal, Some(report))
        };
        let capacity = capacity.max(8);
        let commit = wal.commit_handles();
        let initial_root = pager.catalog_root();
        Ok(BufferPool {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(ShardMap::default()))
                .collect(),
            io: Mutex::new(IoState {
                pager,
                wal,
                logging: true,
                txn: None,
                recovery,
                sweep_shard: 0,
                fault: None,
                read_only: false,
                quarantined: BTreeMap::new(),
            }),
            versions: RwLock::new(HashMap::new()),
            mvcc: Mutex::new(MvccState {
                commit_seq: 0,
                epochs: BTreeMap::new(),
                roots: BTreeMap::from([(0, initial_root)]),
            }),
            version_floor: AtomicU64::new(0),
            view_gen: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            capacity,
            stats: AtomicStats::default(),
            commit,
            txn_slot: StdMutex::new(()),
            txn_cv: StdCondvar::new(),
            reader_retries: AtomicU64::new(0),
        })
    }

    /// The pool's frame capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently resident (always `<= capacity`).
    pub fn resident_pages(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Number of currently pinned frames.
    pub fn pinned_frames(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .slots
                    .iter()
                    .filter(|f| f.pins.load(Ordering::Relaxed) > 0)
                    .count()
            })
            .sum()
    }

    /// The recovery outcome from opening this pool's file, if the file
    /// pre-existed (a fresh file needs no recovery).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.io.lock().recovery
    }

    /// Enable or disable write-ahead logging for subsequent transactions.
    /// Disabled logging restores the pre-WAL behaviour (no crash safety);
    /// it exists for the bench baseline. Fails while a transaction is open.
    pub fn set_logging(&self, enabled: bool) -> StorageResult<()> {
        let mut io = self.io.lock();
        if io.txn.is_some() {
            return Err(StorageError::TransactionActive);
        }
        io.logging = enabled;
        Ok(())
    }

    /// Whether transactional mutations are currently logged.
    pub fn logging(&self) -> bool {
        self.io.lock().logging
    }

    /// Inject a simulated crash (see [`CrashPoint`]). Test instrumentation
    /// for the crash-recovery suites; implemented as a [`FaultSchedule`]
    /// rule on the shared fault-injection layer.
    pub fn inject_crash(&self, point: CrashPoint) {
        let mut io = self.io.lock();
        let schedule = Self::ensure_schedule(&mut io);
        let mut schedule = schedule.lock();
        match point {
            CrashPoint::WalAppend(n) => schedule.crash_at_wal_append(n),
            CrashPoint::DataWrite(n) => schedule.crash_at_data_write(n),
            CrashPoint::WalSync(n) => schedule.crash_at_wal_sync(n),
            CrashPoint::CheckpointTruncate => schedule.crash_at_checkpoint_truncate(),
        }
    }

    /// Install `schedule` as this pool's fault-injection layer: both the
    /// pager's and the WAL's file handles are wrapped in [`FaultIo`] driven
    /// by it. Fails if a schedule is already installed (the wrappers are
    /// not stackable).
    pub fn install_fault_schedule(&self, schedule: SharedFaultSchedule) -> StorageResult<()> {
        let mut io = self.io.lock();
        if io.fault.is_some() {
            return Err(StorageError::Corrupted(
                "a fault schedule is already installed".into(),
            ));
        }
        let s = Arc::clone(&schedule);
        io.pager
            .wrap_io(move |inner| Box::new(FaultIo::new(inner, FileKind::Data, s)));
        let s = Arc::clone(&schedule);
        io.wal
            .wrap_io(move |inner| Box::new(FaultIo::new(inner, FileKind::Wal, s)));
        io.fault = Some(schedule);
        Ok(())
    }

    /// The installed fault schedule, if any (shared handle: callers may
    /// arm rules or read stats through it).
    pub fn fault_schedule(&self) -> Option<SharedFaultSchedule> {
        self.io.lock().fault.as_ref().map(Arc::clone)
    }

    /// Lazily install an inert shared schedule (used by `inject_crash` so
    /// legacy crash points ride the same mechanism).
    fn ensure_schedule(io: &mut IoState) -> SharedFaultSchedule {
        if let Some(s) = &io.fault {
            return Arc::clone(s);
        }
        let schedule = shared_schedule(FaultSchedule::inert());
        let s = Arc::clone(&schedule);
        io.pager
            .wrap_io(move |inner| Box::new(FaultIo::new(inner, FileKind::Data, s)));
        let s = Arc::clone(&schedule);
        io.wal
            .wrap_io(move |inner| Box::new(FaultIo::new(inner, FileKind::Wal, s)));
        io.fault = Some(Arc::clone(&schedule));
        schedule
    }

    /// Set the transient-I/O retry policy on both underlying files.
    pub fn set_io_retry_policy(&self, policy: RetryPolicy) {
        let mut io = self.io.lock();
        io.pager.set_retry_policy(policy);
        io.wal.set_retry_policy(policy);
    }

    /// Switch the pool into (or out of) read-only mode: mutation entry
    /// points fail with [`StorageError::ReadOnly`]. Used by the degraded
    /// open path.
    pub fn set_read_only(&self, read_only: bool) {
        self.io.lock().read_only = read_only;
    }

    /// Whether the pool is in read-only (degraded) mode.
    pub fn read_only(&self) -> bool {
        self.io.lock().read_only
    }

    /// Whether an earlier fsync failure poisoned the writer. Cleared only
    /// by reopening the database.
    pub fn is_poisoned(&self) -> bool {
        self.commit.poisoned().is_some()
    }

    /// Page ids currently quarantined (checksum failure, repair failed).
    pub fn quarantined_pages(&self) -> Vec<u64> {
        self.io.lock().quarantined.keys().copied().collect()
    }

    // ------------------------------------------------------------------
    // Read-view generation
    // ------------------------------------------------------------------

    /// The snapshot-read generation: even while the committed view is
    /// stable, odd while a commit or rollback publishes its version
    /// transition. Readers no longer retry on generation changes (pinned
    /// epochs froze their view); a reader that caches derived metadata
    /// (catalog roots) still keys the cache by this value.
    pub fn read_generation(&self) -> u64 {
        self.view_gen.load(Ordering::SeqCst)
    }

    fn begin_view_change(&self) {
        let prev = self.view_gen.fetch_add(1, Ordering::SeqCst);
        debug_assert!(prev.is_multiple_of(2), "nested view transition");
    }

    fn end_view_change(&self) {
        let prev = self.view_gen.fetch_add(1, Ordering::SeqCst);
        debug_assert!(prev % 2 == 1, "unbalanced view transition");
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction. The engine is single-writer: a second `begin`
    /// while one is open is an error, not a queue.
    pub fn begin_txn(&self) -> StorageResult<u64> {
        let mut io = self.io.lock();
        if io.txn.is_some() {
            return Err(StorageError::TransactionActive);
        }
        io.check_writable()?;
        let id = io.wal.next_txn_id();
        let header = (
            io.pager.page_count(),
            io.pager.catalog_root(),
            io.pager.user_meta(),
            io.pager.checkpoint_lsn(),
        );
        io.txn = Some(TxnState {
            id,
            dirty: BTreeSet::new(),
            undo: HashMap::new(),
            stolen: HashSet::new(),
            header,
        });
        Ok(id)
    }

    /// `true` while a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.io.lock().txn.is_some()
    }

    /// Begin a transaction, waiting for the writer slot instead of failing
    /// with [`StorageError::TransactionActive`]. Concurrent committers use
    /// this: the slot frees as soon as the previous commit leaves the io
    /// latch — before its group fsync completes — so the next transaction
    /// prepares while the leader syncs (the commit pipeline).
    pub fn begin_txn_blocking(&self) -> StorageResult<u64> {
        loop {
            match self.begin_txn() {
                Err(StorageError::TransactionActive) => {
                    let guard = self.txn_slot.lock().unwrap_or_else(|e| e.into_inner());
                    // Bounded wait: a missed wakeup costs one short timeout.
                    let _ = self.txn_cv.wait_timeout(guard, Duration::from_millis(2));
                }
                other => return other,
            }
        }
    }

    /// Wake committers parked in [`BufferPool::begin_txn_blocking`].
    fn notify_txn_slot(&self) {
        drop(self.txn_slot.lock().unwrap_or_else(|e| e.into_inner()));
        self.txn_cv.notify_all();
    }

    /// Commit the open transaction: append the after-image of every dirtied
    /// page and a commit record to the log. With `sync` the call returns
    /// only once the commit record is durable — by leading a group fsync
    /// that covers every commit enqueued so far, or by following a
    /// concurrent leader's round ([`BufferPool::wait_durable`]). Without
    /// `sync` the commit is acknowledged at its commit LSN and the caller
    /// may make it durable later. On a log failure mid-commit the
    /// transaction is rolled back in memory and the error returned.
    ///
    /// The fsync happens *outside* the io latch, so the next committer
    /// (parked in [`BufferPool::begin_txn_blocking`]) starts preparing its
    /// transaction while this one waits for durability — that overlap is
    /// the group-commit pipeline.
    pub fn commit_txn(&self, sync: bool) -> StorageResult<Lsn> {
        let result = {
            let mut io = self.io.lock();
            self.commit_in_io(&mut io)
        };
        // The writer slot freed (the txn was taken on every path but
        // `NoActiveTransaction`, where there is nothing to free).
        self.notify_txn_slot();
        let lsn = result?;
        if sync {
            self.wait_durable(lsn)?;
        }
        Ok(lsn)
    }

    /// The io-latched half of a commit: log the after-images and the commit
    /// record (write-through or enqueued for the group leader), advance the
    /// committed view. Never fsyncs.
    fn commit_in_io(&self, io: &mut IoState) -> StorageResult<Lsn> {
        let txn = io.txn.take().ok_or(StorageError::NoActiveTransaction)?;
        if txn.dirty.is_empty() {
            // A read-only transaction changed nothing: the committed view is
            // untouched, so the generation must not advance (readers would
            // pointlessly rebuild their cached catalogs).
            debug_assert!(self.versions.read().values().all(|c| c.pending.is_none()));
            return Ok(io.wal.end_lsn());
        }
        if let Err(e) = io.check_writable() {
            // An fsync failed mid-transaction (eviction write-back):
            // durability is unknown, so the commit must not be
            // acknowledged. Restore pre-transaction memory instead.
            let _ = self.rollback_with(io, txn);
            return Err(e);
        }
        if !io.logging {
            // Unlogged but dirty: nothing to log, yet the committed view
            // still advances — publish the version transition so snapshot
            // readers observe the new state.
            self.begin_view_change();
            self.publish_commit(io.pager.catalog_root());
            self.end_view_change();
            return Ok(io.wal.end_lsn());
        }
        match self.log_commit(io, &txn) {
            Ok(lsn) => {
                self.begin_view_change();
                for pid in &txn.dirty {
                    if let Some(frame) = self.lookup_frame(*pid) {
                        frame.body.write().rec_lsn = lsn;
                    }
                }
                self.publish_commit(io.pager.catalog_root());
                self.end_view_change();
                Ok(lsn)
            }
            Err(e) => {
                // The commit never reached the log; restore memory so the
                // caller sees pre-transaction state.
                let _ = self.rollback_with(io, txn);
                Err(e)
            }
        }
    }

    /// Absolute LSN up to which the log is known durable.
    pub fn durable_lsn(&self) -> Lsn {
        self.commit.durable()
    }

    /// Block until the log is durable up to `lsn` (a commit LSN returned by
    /// [`BufferPool::commit_txn`]). The caller either becomes the
    /// group-commit leader — draining the commit queue and issuing ONE
    /// fsync that covers every member — or parks on the durable-LSN
    /// watermark while a concurrent leader's round covers it. A failed
    /// group fsync poisons the writer: the leader surfaces the I/O error,
    /// every follower of the failed round gets `WriterPoisoned` — never a
    /// partially durable group.
    pub fn wait_durable(&self, lsn: Lsn) -> StorageResult<()> {
        loop {
            if self.commit.durable() >= lsn {
                return Ok(());
            }
            if let Some(m) = self.commit.poisoned() {
                return Err(StorageError::WriterPoisoned(m));
            }
            match self.commit.try_lead_sync() {
                Ok(true) => self.commit.notify_all(),
                Ok(false) => self.commit.wait_for_progress(),
                Err(e) => {
                    // A failed fsync leaves the kernel's dirty state
                    // unknown — retrying it could silently succeed against
                    // already-dropped writes. Poison the writer instead;
                    // reads stay available.
                    self.commit.poison(&e.to_string());
                    self.commit.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Roll back the open transaction: restore every captured before-image
    /// in memory and reset the header snapshot. Nothing is appended to the
    /// log (a transaction without a commit record is a loser by
    /// definition).
    pub fn rollback_txn(&self) -> StorageResult<()> {
        let result = {
            let mut io = self.io.lock();
            let txn = io.txn.take().ok_or(StorageError::NoActiveTransaction)?;
            self.rollback_with(&mut io, txn)
        };
        self.notify_txn_slot();
        result
    }

    // ------------------------------------------------------------------
    // MVCC: epoch pinning and version publication
    // ------------------------------------------------------------------

    /// Publish a commit's version transition (io latch held, inside a view
    /// change): graduate every pending before-image into its chain's
    /// committed history stamped `valid_through = commit_seq` (its epoch
    /// range ends at the pre-commit sequence), then garbage-collect
    /// **pin-aware**: a committed entry survives exactly while some
    /// registered epoch still resolves to it, so a pinned snapshot is
    /// never retired by ordinary writer progress, however many commits
    /// land while the pin is held — and a chain holds at most one entry
    /// per live pinned epoch. Only when more than
    /// [`BufferPool::VERSION_CHAIN_CAP`] *distinct* pinned epochs demand
    /// versions of one page does the hard cap win: the oldest entries are
    /// shed and the version floor rises past them, retiring the oldest
    /// pins (their readers re-pin via [`StorageError::SnapshotRetired`]).
    /// Finally the commit sequence advances and the new catalog root is
    /// recorded.
    fn publish_commit(&self, catalog_root: PageId) {
        let mut mvcc = self.mvcc.lock();
        let prev_seq = mvcc.commit_seq;
        let next_seq = prev_seq + 1;
        let min_pinned = mvcc.epochs.keys().next().copied();
        {
            let epochs = &mvcc.epochs;
            let mut versions = self.versions.write();
            let mut floor = self.version_floor.load(Ordering::Relaxed);
            // With no pin at all, nothing can read stored history (a fresh
            // pin lands at `next_seq`, which the live frames serve).
            floor = floor.max(min_pinned.unwrap_or(next_seq));
            versions.retain(|_, chain| {
                if let Some(image) = chain.pending.take() {
                    // Keep history only while somebody can still read it.
                    if min_pinned.is_some() {
                        chain.committed.push((prev_seq, image));
                    }
                }
                // An entry `(t, _)` serves epochs in `(prev_t, t]`; pins
                // are never created in the past, so an entry covering no
                // registered epoch can never be read again — drop it.
                let mut prev: Option<u64> = None;
                chain.committed.retain(|&(t, _)| {
                    let needed = match prev {
                        None => epochs.range(..=t).next().is_some(),
                        Some(p) => epochs.range(p + 1..=t).next().is_some(),
                    };
                    prev = Some(t);
                    needed
                });
                if chain.committed.len() > Self::VERSION_CHAIN_CAP {
                    // More than CAP distinct pinned epochs demand versions
                    // of this one page: the hard bound wins. Shedding the
                    // oldest entries makes their epochs unservable
                    // pool-wide; readers pinned there re-pin via
                    // `SnapshotRetired`.
                    let excess = chain.committed.len() - Self::VERSION_CHAIN_CAP;
                    floor = floor.max(chain.committed[excess - 1].0 + 1);
                    chain.committed.drain(..excess);
                }
                !chain.is_empty()
            });
            // Stored under the version-map write lock: a reader that
            // passes the floor check under the read lock is guaranteed its
            // entries stayed present for the whole lookup.
            self.version_floor.store(floor, Ordering::Relaxed);
        }
        mvcc.commit_seq = next_seq;
        mvcc.roots.insert(next_seq, catalog_root);
        // Trim the root map the same pin-aware way: keep the root each
        // registered epoch resolves to, plus the new current root.
        let mvcc = &mut *mvcc;
        let (epochs, roots) = (&mvcc.epochs, &mut mvcc.roots);
        let mut needed: std::collections::BTreeSet<u64> = epochs
            .keys()
            .filter_map(|&e| roots.range(..=e).next_back().map(|(&s, _)| s))
            .collect();
        needed.insert(next_seq);
        roots.retain(|s, _| needed.contains(s));
    }

    /// Pin the current commit sequence as a snapshot epoch. While the
    /// returned guard lives, every version needed to read *as of* that
    /// epoch survives GC — a pinned snapshot is only ever retired when
    /// more than [`BufferPool::VERSION_CHAIN_CAP`] distinct pinned epochs
    /// crowd one page's chain (see [`StorageError::SnapshotRetired`]).
    /// The sequence read and the registration happen under one lock — the
    /// same lock commit-time GC takes — so a pin never races a commit
    /// into pinning an epoch whose versions were just collected.
    pub fn pin_epoch(self: &Arc<Self>) -> EpochPin {
        let mut mvcc = self.mvcc.lock();
        let epoch = mvcc.commit_seq;
        *mvcc.epochs.entry(epoch).or_insert(0) += 1;
        EpochPin {
            pool: Arc::clone(self),
            epoch,
        }
    }

    /// Drop one pin on `epoch`. When the registry empties, all committed
    /// versions are cleared eagerly: no reader can need stored history any
    /// more, and a fresh pin lands on the current sequence, which the live
    /// frames serve.
    fn unpin_epoch(&self, epoch: u64) {
        let mut mvcc = self.mvcc.lock();
        match mvcc.epochs.get_mut(&epoch) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                mvcc.epochs.remove(&epoch);
            }
            None => debug_assert!(false, "unpinning an unregistered epoch"),
        }
        if mvcc.epochs.is_empty() {
            let commit_seq = mvcc.commit_seq;
            {
                let mut versions = self.versions.write();
                versions.retain(|_, chain| {
                    chain.committed.clear();
                    chain.pending.is_some()
                });
                self.version_floor.store(commit_seq, Ordering::Relaxed);
            }
            let keep_from = mvcc
                .roots
                .range(..=commit_seq)
                .next_back()
                .map(|(&s, _)| s)
                .unwrap_or(0);
            let tail = mvcc.roots.split_off(&keep_from);
            mvcc.roots = tail;
        }
    }

    /// Admission check for a versioned read. Callers hold the version-map
    /// lock, so a pass means the epoch's entries stay present for the
    /// whole lookup (the floor only rises under the write lock).
    fn check_epoch(&self, epoch: u64) -> StorageResult<()> {
        let floor = self.version_floor.load(Ordering::Relaxed);
        if epoch < floor {
            return Err(StorageError::SnapshotRetired { epoch, floor });
        }
        Ok(())
    }

    /// The commit sequence a new pin would get (the current epoch).
    pub fn current_epoch(&self) -> u64 {
        self.mvcc.lock().commit_seq
    }

    /// Oldest epoch versioned reads can still serve.
    pub fn version_floor(&self) -> u64 {
        self.version_floor.load(Ordering::Relaxed)
    }

    /// Number of pinned reader epochs (pin count, not distinct epochs).
    pub fn pinned_epochs(&self) -> usize {
        self.mvcc.lock().epochs.values().sum()
    }

    /// Number of pages holding any stored version state (pending or
    /// committed) — the stress harness's leak check: this returns to zero
    /// once readers drop and no transaction is open.
    pub fn version_pages(&self) -> usize {
        self.versions.read().len()
    }

    /// Total stored version entries across all chains (committed images
    /// plus pending before-images).
    pub fn version_entries(&self) -> usize {
        self.versions
            .read()
            .values()
            .map(|c| c.committed.len() + usize::from(c.pending.is_some()))
            .sum()
    }

    /// The catalog-root entry governing `epoch`: the `(commit sequence,
    /// root)` pair published by the largest `seq <= epoch` commit. The
    /// sequence doubles as a snapshot-metadata cache key — two epochs with
    /// the same governing sequence have no commit between them, so every
    /// page (hence any derived metadata) is identical.
    pub fn catalog_entry_at(&self, epoch: u64) -> StorageResult<(u64, PageId)> {
        let mvcc = self.mvcc.lock();
        let floor = self.version_floor.load(Ordering::Relaxed);
        if epoch < floor {
            return Err(StorageError::SnapshotRetired { epoch, floor });
        }
        Ok(mvcc
            .roots
            .range(..=epoch)
            .next_back()
            .map(|(&seq, &root)| (seq, root))
            .unwrap_or_else(|| {
                debug_assert!(false, "no governing catalog root for epoch {epoch}");
                (0, PageId(0))
            }))
    }

    /// Run `f` with read access to the page *as of* `epoch` (a sequence
    /// pinned via [`BufferPool::pin_epoch`]). A governing committed chain
    /// entry serves without touching the frame; otherwise the live frame
    /// is read with the chain re-checked under the frame latch — the same
    /// latch the writer publishes pending before-images under, so the read
    /// sees either the pre-mutation frame or the published image, never a
    /// torn mix.
    pub fn with_page_at<R>(
        &self,
        epoch: u64,
        pid: PageId,
        f: impl FnOnce(&Page) -> R,
    ) -> StorageResult<R> {
        {
            let versions = self.versions.read();
            self.check_epoch(epoch)?;
            if let Some(image) = versions.get(&pid).and_then(|c| c.governing(epoch)) {
                AtomicStats::bump(&self.stats.version_reads);
                return Ok(match image {
                    Some(page) => f(page),
                    None => f(&Page::new()),
                });
            }
        }
        let frame = self.load_frame(pid, false)?;
        let body = frame.body.read();
        let versions = self.versions.read();
        self.check_epoch(epoch)?;
        if let Some(chain) = versions.get(&pid) {
            if let Some(image) = chain.governing(epoch) {
                AtomicStats::bump(&self.stats.version_reads);
                return Ok(match image {
                    Some(page) => f(page),
                    None => f(&Page::new()),
                });
            }
            if let Some(pending) = &chain.pending {
                return Ok(match pending {
                    Some(image) => f(image),
                    None => f(&Page::new()),
                });
            }
        }
        Ok(f(&body.page))
    }

    /// Pin the content of `pid` *as of* `epoch` (see
    /// [`BufferPool::with_page_at`]). Chain and pending hits return a
    /// guard backed by the stored image alone — no frame to keep resident.
    pub fn pin_at(&self, epoch: u64, pid: PageId) -> StorageResult<PinnedPage> {
        {
            let versions = self.versions.read();
            self.check_epoch(epoch)?;
            if let Some(image) = versions.get(&pid).and_then(|c| c.governing(epoch)) {
                AtomicStats::bump(&self.stats.version_reads);
                let page = match image {
                    Some(page) => Arc::clone(page),
                    None => Arc::new(Page::new()),
                };
                return Ok(PinnedPage {
                    pid,
                    page,
                    frame: None,
                });
            }
        }
        let frame = self.load_frame(pid, true)?;
        // The frame latch is held across the chain check (the same rule as
        // `pin_snapshot`): dropping it first would open a window for a
        // rollback to restore the frame and clear the pending image, after
        // which the pre-restore clone would be served as committed.
        let body = frame.body.read();
        let hit = {
            let versions = self.versions.read();
            self.check_epoch(epoch).map(|()| {
                versions.get(&pid).and_then(|chain| {
                    let governed = chain.governing(epoch);
                    if governed.is_some() {
                        AtomicStats::bump(&self.stats.version_reads);
                    }
                    governed
                        .or(chain.pending.as_ref())
                        .map(|image| match image {
                            Some(page) => Arc::clone(page),
                            None => Arc::new(Page::new()),
                        })
                })
            })
        };
        match hit {
            Err(e) => {
                drop(body);
                frame.pins.fetch_sub(1, Ordering::AcqRel);
                Err(e)
            }
            Ok(Some(page)) => {
                drop(body);
                // Drop the frame pin; the stored image is self-contained.
                frame.pins.fetch_sub(1, Ordering::AcqRel);
                Ok(PinnedPage {
                    pid,
                    page,
                    frame: None,
                })
            }
            Ok(None) => {
                let page = Arc::clone(&body.page);
                drop(body);
                Ok(PinnedPage {
                    pid,
                    page,
                    frame: Some(frame),
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Page access
    // ------------------------------------------------------------------

    /// Look a frame up in its shard without counting a hit or touching the
    /// reference bit (internal bookkeeping paths).
    fn lookup_frame(&self, pid: PageId) -> Option<Arc<Frame>> {
        let shard = self.shards[shard_of(pid)].lock();
        shard.map.get(&pid).map(|&i| Arc::clone(&shard.slots[i]))
    }

    /// Look a frame up in its shard, marking it referenced and optionally
    /// pinning it (the pin increment happens under the shard lock, so it
    /// cannot race with victim selection).
    fn lookup_accessed(&self, pid: PageId, pin: bool) -> Option<Arc<Frame>> {
        let shard = self.shards[shard_of(pid)].lock();
        shard.map.get(&pid).map(|&i| {
            let frame = &shard.slots[i];
            frame.referenced.store(true, Ordering::Relaxed);
            if pin {
                frame.pins.fetch_add(1, Ordering::AcqRel);
            }
            Arc::clone(frame)
        })
    }

    /// Ensure `pid` is resident, returning its frame. Fast path: shard
    /// lookup only. Miss path: serialize on the io latch, re-check (another
    /// reader may have installed it while we waited), then read from disk
    /// and install, evicting if at capacity.
    fn load_frame(&self, pid: PageId, pin: bool) -> StorageResult<Arc<Frame>> {
        if let Some(frame) = self.lookup_accessed(pid, pin) {
            AtomicStats::bump(&self.stats.hits);
            return Ok(frame);
        }
        let mut io = self.io.lock();
        self.load_frame_in_io(&mut io, pid, pin)
    }

    /// Miss path with the io latch already held (also used by the writer's
    /// mutation path, which holds io for the transaction bookkeeping).
    fn load_frame_in_io(
        &self,
        io: &mut IoState,
        pid: PageId,
        pin: bool,
    ) -> StorageResult<Arc<Frame>> {
        if let Some(frame) = self.lookup_accessed(pid, pin) {
            AtomicStats::bump(&self.stats.hits);
            return Ok(frame);
        }
        AtomicStats::bump(&self.stats.misses);
        if let Some(&(expected, found)) = io.quarantined.get(&pid.0) {
            return Err(StorageError::CorruptPage {
                page: pid.0,
                expected,
                found,
            });
        }
        let page = match io.pager.read_page(pid) {
            Ok(page) => page,
            Err(StorageError::CorruptPage {
                page,
                expected,
                found,
            }) => {
                AtomicStats::bump(&self.stats.corrupt_pages);
                match self.try_repair(io, pid) {
                    Some(repaired) => repaired,
                    None => {
                        io.quarantined.insert(page, (expected, found));
                        AtomicStats::bump(&self.stats.quarantined_pages);
                        return Err(StorageError::CorruptPage {
                            page,
                            expected,
                            found,
                        });
                    }
                }
            }
            Err(e) => return Err(e),
        };
        let frame = Frame::new(pid, Arc::new(page), false, if pin { 1 } else { 0 });
        self.install(io, Arc::clone(&frame))?;
        Ok(frame)
    }

    /// Attempt to repair a checksum-failed page from the WAL: the latest
    /// committed after-image in the (not yet truncated) log is authoritative
    /// for the page's content. Returns the repaired page after writing it
    /// back to the data file (which also refreshes the stored checksum).
    /// Refuses to repair a page the open transaction has dirtied: the WAL
    /// image predates the transaction's (possibly stolen) writes, and the
    /// in-memory undo images already hold the truth.
    fn try_repair(&self, io: &mut IoState, pid: PageId) -> Option<Page> {
        if let Some(txn) = &io.txn {
            if txn.dirty.contains(&pid) {
                return None;
            }
        }
        let image = io.wal.latest_committed_image(pid).ok()??;
        if image.len() != crate::page::PAGE_SIZE {
            return None;
        }
        let page = Page::from_bytes(image);
        // WAL-before-data applies to repair writes too: the commit record
        // covering this image may still be waiting on a group fsync.
        io.wal.sync().ok()?;
        io.pager.write_page(pid, &page).ok()?;
        AtomicStats::bump(&self.stats.repaired_pages);
        Some(page)
    }

    /// Allocate a fresh page (resident immediately, marked dirty).
    pub fn allocate_page(&self) -> StorageResult<PageId> {
        let mut io = self.io.lock();
        io.check_writable()?;
        // Secure capacity before advancing the pager's page counter, so a
        // pinned-full pool errors out without leaking a file page.
        self.reserve(&mut io)?;
        let pid = io.pager.allocate_page()?;
        let frame = Frame::new(pid, Arc::new(Page::new()), true, 0);
        self.shards[shard_of(pid)].lock().insert(frame);
        self.resident.fetch_add(1, Ordering::Relaxed);
        if let Some(txn) = &mut io.txn {
            txn.dirty.insert(pid);
            if let std::collections::hash_map::Entry::Vacant(slot) = txn.undo.entry(pid) {
                slot.insert(UndoEntry {
                    image: None,
                    prior_dirty: false,
                });
                // Pending before-image "the page does not exist": snapshot
                // and versioned readers at pre-commit epochs serve an
                // empty page. A reused id (rollback recycled it) never
                // carries committed entries — only committed pages get
                // history, and committed ids are never reallocated.
                self.versions.write().entry(pid).or_default().pending = Some(None);
            }
        }
        Ok(pid)
    }

    /// Run `f` with read access to the page (the *current* view: inside a
    /// transaction the writer sees its own uncommitted mutations).
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        let frame = self.load_frame(pid, false)?;
        let body = frame.body.read();
        Ok(f(&body.page))
    }

    /// Run `f` with read access to the last *committed* content of the
    /// page: if the open transaction touched it, its pending before-image
    /// wins. The frame is read first and the chain second — the writer
    /// publishes the before-image (under the frame latch) before mutating,
    /// so a pending miss proves the frame content is committed.
    pub fn with_page_snapshot<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&Page) -> R,
    ) -> StorageResult<R> {
        let frame = self.load_frame(pid, false)?;
        let body = frame.body.read();
        if let Some(pending) = self
            .versions
            .read()
            .get(&pid)
            .and_then(|chain| chain.pending.as_ref())
        {
            return Ok(match pending {
                Some(image) => f(image),
                // Allocated inside the open transaction: its committed
                // content is nonexistence. No committed structure can reach
                // this page; serve an empty page for robustness.
                None => f(&Page::new()),
            });
        }
        Ok(f(&body.page))
    }

    /// Run `f` with write access to the page; the page is marked dirty and,
    /// inside a transaction, its before-image is captured on first touch
    /// (for the undo log and the version chain's pending slot).
    pub fn with_page_mut<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> StorageResult<R> {
        let mut io = self.io.lock();
        io.check_writable()?;
        let frame = self.load_frame_in_io(&mut io, pid, false)?;
        let mut body = frame.body.write();
        if let Some(txn) = &mut io.txn {
            txn.dirty.insert(pid);
            if let std::collections::hash_map::Entry::Vacant(slot) = txn.undo.entry(pid) {
                slot.insert(UndoEntry {
                    image: Some(Arc::clone(&body.page)),
                    prior_dirty: body.dirty,
                });
                // Publish the before-image for snapshot and versioned
                // readers *before* the mutation below (both happen under
                // the frame latch, so a reader holding the read latch sees
                // either none of this or all of it).
                self.versions.write().entry(pid).or_default().pending =
                    Some(Some(Arc::clone(&body.page)));
            }
        }
        body.dirty = true;
        // In-place unless a pinned reader or an undo snapshot still holds
        // the Arc (copy-on-write in that case).
        let end_lsn = io.wal.end_lsn();
        let page = Arc::make_mut(&mut body.page);
        page.set_lsn(end_lsn);
        Ok(f(page))
    }

    /// Pin a page: the returned guard keeps the frame resident and readable
    /// without holding any pool lock. Used by range scans to walk B+tree
    /// leaves without copying entries.
    pub fn pin(&self, pid: PageId) -> StorageResult<PinnedPage> {
        let frame = self.load_frame(pid, true)?;
        let page = Arc::clone(&frame.body.read().page);
        Ok(PinnedPage {
            pid,
            page,
            frame: Some(frame),
        })
    }

    /// Pin the last *committed* content of a page (see
    /// [`BufferPool::with_page_snapshot`] for the pending rule). Pending
    /// hits return a guard backed by the before-image `Arc` alone — there
    /// is no frame to keep resident, the guard owns the bytes.
    pub fn pin_snapshot(&self, pid: PageId) -> StorageResult<PinnedPage> {
        let frame = self.load_frame(pid, true)?;
        // The frame latch must be HELD across the pending check (same rule
        // as `with_page_snapshot`): dropping it first would open a window
        // for a rollback to restore the frame and clear the pending image,
        // after which the pre-restore clone would be served as "committed".
        let body = frame.body.read();
        let pending_hit = self
            .versions
            .read()
            .get(&pid)
            .and_then(|chain| chain.pending.as_ref())
            .map(|entry| match entry {
                Some(image) => Arc::clone(image),
                None => Arc::new(Page::new()),
            });
        let page = match &pending_hit {
            Some(image) => Arc::clone(image),
            None => Arc::clone(&body.page),
        };
        drop(body);
        if pending_hit.is_some() {
            // Drop the frame pin; the before-image is self-contained.
            frame.pins.fetch_sub(1, Ordering::AcqRel);
            return Ok(PinnedPage {
                pid,
                page,
                frame: None,
            });
        }
        Ok(PinnedPage {
            pid,
            page,
            frame: Some(frame),
        })
    }

    /// Sequential-fill hint: clear the frame's reference bit so the clock
    /// hand may evict it on its first sweep instead of granting the usual
    /// second chance. Bulk loaders call this on pages they have packed and
    /// will never touch again — a load larger than the pool then streams
    /// through it without flushing the hot working set (spine, catalog).
    pub fn hint_cold(&self, pid: PageId) {
        let shard = self.shards[shard_of(pid)].lock();
        if let Some(&i) = shard.map.get(&pid) {
            shard.slots[i].referenced.store(false, Ordering::Relaxed);
        }
    }

    /// The catalog root recorded in the file header (current view: inside a
    /// transaction this is the writer's own, possibly uncommitted, value).
    pub fn catalog_root(&self) -> PageId {
        self.io.lock().pager.catalog_root()
    }

    /// The catalog root of the last committed state: while a transaction is
    /// open, the value snapshotted at `begin_txn`.
    pub fn committed_catalog_root(&self) -> PageId {
        let io = self.io.lock();
        match &io.txn {
            Some(txn) => txn.header.1,
            None => io.pager.catalog_root(),
        }
    }

    /// Record the catalog root in the file header (persisted on commit and
    /// checkpoint).
    pub fn set_catalog_root(&self, pid: PageId) {
        self.io.lock().pager.set_catalog_root(pid);
    }

    /// Number of pages in the underlying file.
    pub fn page_count(&self) -> u64 {
        self.io.lock().pager.page_count()
    }

    /// Copy of the current statistics counters (buffer activity plus WAL
    /// activity).
    pub fn stats(&self) -> BufferStats {
        let mut stats = self.stats.snapshot();
        let io = self.io.lock();
        let wal = io.wal.stats();
        stats.wal_appends = wal.appends;
        stats.wal_bytes = wal.bytes;
        stats.wal_syncs = wal.syncs;
        stats.wal_page_images = wal.page_images;
        stats.commits = wal.commits;
        stats.group_commits = wal.group_rounds;
        stats.group_commit_members = wal.group_members;
        stats.fsyncs_saved = wal.group_members.saturating_sub(wal.group_rounds);
        stats.reader_retries = self.reader_retries.load(Ordering::Relaxed);
        stats
    }

    /// Reset statistics counters (useful between benchmark phases).
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.reader_retries.store(0, Ordering::Relaxed);
        self.io.lock().wal.reset_stats();
    }

    /// Report a snapshot-read retry (a reader observed a view-generation
    /// change mid-operation, or gave up with `Busy`). Counted so the stress
    /// harness and the commit bench can assert background checkpoints do
    /// not spike reader retries.
    pub fn note_reader_retry(&self) {
        AtomicStats::bump(&self.reader_retries);
    }

    /// Checkpoint: fsync the log, write all dirty pages and the header to
    /// the data file, fsync it, then truncate the log. Fails while a
    /// transaction is open (commit or roll back first).
    pub fn flush(&self) -> StorageResult<()> {
        let mut io = self.io.lock();
        if io.txn.is_some() {
            return Err(StorageError::TransactionActive);
        }
        io.check_writable()?;
        self.checkpoint(&mut io)
    }

    /// Bytes of log not yet truncated by a checkpoint (the backlog the
    /// checkpoint policy's `wal_bytes` trigger watches).
    pub fn wal_backlog_bytes(&self) -> u64 {
        let io = self.io.lock();
        io.wal.end_lsn() - io.wal.start_lsn()
    }

    /// Start the background checkpoint thread. It wakes every 25 ms, and
    /// when `policy` says a checkpoint is due runs
    /// [`BufferPool::checkpoint_background`]. Returns a guard that stops
    /// and joins the thread on drop; the thread also exits by itself once
    /// the pool is dropped (it holds only a `Weak` reference).
    pub fn start_checkpointer(self: &Arc<Self>, policy: CheckpointPolicy) -> CheckpointerGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let weak = Arc::downgrade(self);
        let handle = std::thread::Builder::new()
            .name("checkpointer".into())
            .spawn(move || {
                let mut last = Instant::now();
                while !stop_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(25));
                    let Some(pool) = weak.upgrade() else { break };
                    if pool.commit.poisoned().is_some() {
                        continue;
                    }
                    let backlog = pool.wal_backlog_bytes();
                    let due_bytes = policy.wal_bytes.is_some_and(|limit| backlog >= limit);
                    let due_time =
                        policy.interval.is_some_and(|iv| last.elapsed() >= iv) && backlog > 0;
                    if !(due_bytes || due_time) {
                        continue;
                    }
                    // Errors are not fatal here: poisoning (the only
                    // unrecoverable case) is recorded in the shared slot and
                    // surfaces to every writer; anything else retries on the
                    // next due tick.
                    let _ = pool.checkpoint_background();
                    last = Instant::now();
                }
            })
            .expect("spawn checkpointer thread");
        CheckpointerGuard {
            stop,
            handle: Some(handle),
        }
    }

    /// One background checkpoint pass, built to coexist with concurrent
    /// committers and snapshot readers:
    ///
    /// 1. **Durability first** (no io latch): lead a group-commit round so
    ///    the whole log — every commit enqueued so far — is durable. This
    ///    is the WAL-before-data gate for everything written below.
    /// 2. **Incremental pre-flush**: walk the shards one at a time, each
    ///    under a short io-latch hold, writing committed dirty frames
    ///    (`rec_lsn <= durable`, not touched by the open transaction) to
    ///    the data file. Commits and readers interleave between shards.
    /// 3. **Truncate**: if no transaction is active, take the io latch once
    ///    more for a full [`checkpoint`](Self::flush) — now cheap, the
    ///    dirty set was pre-flushed. With a transaction open, return
    ///    `Ok(false)`; the next pass retries.
    pub fn checkpoint_background(&self) -> StorageResult<bool> {
        if let Some(m) = self.commit.poisoned() {
            return Err(StorageError::WriterPoisoned(m));
        }
        // Phase 1: group-durability without the io latch.
        if let Err(e) = self.commit.lead_sync_blocking() {
            self.commit.poison(&e.to_string());
            self.commit.notify_all();
            return Err(e);
        }
        self.commit.notify_all();
        let durable = self.commit.durable();
        // Phase 2: pre-flush committed dirty frames shard by shard.
        for shard in &self.shards {
            let mut io = self.io.lock();
            if io.read_only || io.sim_crashed() {
                return Ok(false);
            }
            io.check_writable()?;
            // Snapshot the shard under io (installs and evictions hold io,
            // so the set is stable while we write).
            let frames: Vec<Arc<Frame>> = shard.lock().slots.to_vec();
            for frame in frames {
                if io
                    .txn
                    .as_ref()
                    .is_some_and(|t| t.dirty.contains(&frame.pid))
                {
                    continue;
                }
                let mut body = frame.body.write();
                if !body.dirty || body.rec_lsn > durable {
                    continue;
                }
                io.pager.write_page(frame.pid, &body.page)?;
                body.dirty = false;
                AtomicStats::bump(&self.stats.flushes);
            }
        }
        // Phase 3: full checkpoint (header + data fsync + log truncation)
        // only at a transaction-free moment.
        let mut io = self.io.lock();
        if io.txn.is_some() {
            return Ok(false);
        }
        io.check_writable()?;
        self.checkpoint(&mut io)?;
        Ok(true)
    }

    /// Drop every unpinned resident page (dirty pages are flushed first).
    /// Used by benchmarks to measure cold-cache behaviour.
    pub fn clear_cache(&self) -> StorageResult<()> {
        self.flush()?;
        let _io = self.io.lock();
        for shard in &self.shards {
            let mut shard = shard.lock();
            let mut i = 0;
            while i < shard.slots.len() {
                if shard.slots[i].pins.load(Ordering::Acquire) == 0 {
                    shard.remove_slot(i);
                    self.resident.fetch_sub(1, Ordering::Relaxed);
                } else {
                    i += 1;
                }
            }
            shard.hand = 0;
        }
        Ok(())
    }

    /// Incremental media scrub: verify every page's checksum against the
    /// disk bytes, backfilling missing checksums, repairing failures (from a
    /// resident frame or the WAL) and quarantining what cannot be repaired.
    /// Works in chunks, releasing the io latch (and optionally sleeping)
    /// between chunks so concurrent readers and the writer are not starved.
    pub fn scrub(&self, opts: ScrubOptions) -> StorageResult<ScrubStats> {
        let chunk = opts.chunk_pages.max(1) as u64;
        let mut stats = ScrubStats::default();
        let mut next: u64 = 1;
        loop {
            {
                let mut io = self.io.lock();
                let count = io.pager.page_count();
                if next >= count {
                    break;
                }
                let end = (next + chunk).min(count);
                for pid_no in next..end {
                    self.scrub_page(&mut io, PageId(pid_no), &mut stats)?;
                }
                next = end;
            }
            if let Some(pause) = opts.throttle {
                std::thread::sleep(pause);
            }
        }
        Ok(stats)
    }

    /// Verify (and if needed repair) one page under the io latch.
    fn scrub_page(
        &self,
        io: &mut IoState,
        pid: PageId,
        stats: &mut ScrubStats,
    ) -> StorageResult<()> {
        stats.pages_scanned += 1;
        if io.quarantined.contains_key(&pid.0) {
            stats.pages_quarantined += 1;
            return Ok(());
        }
        match io.pager.verify_page(pid) {
            Ok(PageVerdict::Verified) => stats.pages_ok += 1,
            Ok(PageVerdict::Unverified) => {
                io.pager.backfill_checksum(pid)?;
                stats.pages_backfilled += 1;
            }
            Err(StorageError::CorruptPage {
                page,
                expected,
                found,
            }) => {
                AtomicStats::bump(&self.stats.corrupt_pages);
                if io.txn.as_ref().is_some_and(|t| t.dirty.contains(&pid)) {
                    // The open transaction's writes live in memory (and its
                    // undo images); commit or rollback will overwrite the
                    // bad sectors. Quarantining would fail those paths.
                    stats.pages_skipped_dirty += 1;
                    return Ok(());
                }
                if !io.read_only {
                    // Memory first: a resident frame holds the logically
                    // current content (possibly newer than any WAL image).
                    if let Some(frame) = self.lookup_frame(pid) {
                        let (page, rec_lsn) = {
                            let body = frame.body.read();
                            (Arc::clone(&body.page), body.rec_lsn)
                        };
                        if rec_lsn > io.wal.durable_lsn() {
                            // WAL-before-data still applies to repair
                            // writes.
                            if let Err(e) = io.wal.sync() {
                                io.poison(&e);
                                return Err(e);
                            }
                        }
                        io.pager.write_page(pid, &page)?;
                        frame.body.write().dirty = false;
                        AtomicStats::bump(&self.stats.repaired_pages);
                        stats.pages_repaired += 1;
                        return Ok(());
                    }
                    if self.try_repair(io, pid).is_some() {
                        stats.pages_repaired += 1;
                        return Ok(());
                    }
                }
                io.quarantined.insert(page, (expected, found));
                AtomicStats::bump(&self.stats.quarantined_pages);
                stats.pages_quarantined += 1;
            }
            Err(e) => return Err(e),
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals (all called with the io latch held)
    // ------------------------------------------------------------------

    /// Append the commit group for `txn`: one after-image per dirtied page
    /// (stolen pages are re-read from the data file — their latest content
    /// lives there) and a commit record carrying the header state. Never
    /// fsyncs — durability is the commit queue's business
    /// ([`BufferPool::wait_durable`]).
    fn log_commit(&self, io: &mut IoState, txn: &TxnState) -> StorageResult<Lsn> {
        for &pid in &txn.dirty {
            let image: Arc<Page> = match self.lookup_frame(pid) {
                Some(frame) => Arc::clone(&frame.body.read().page),
                None => Arc::new(io.pager.read_page(pid)?),
            };
            io.wal
                .append_image(WalRecordKind::PageImage, txn.id, pid, image.bytes())?;
        }
        io.wal.append_commit(
            txn.id,
            io.pager.page_count(),
            io.pager.catalog_root().0,
            io.pager.user_meta().0,
        )
    }

    /// Restore a transaction's before-images in memory and roll the header
    /// snapshot back. Works even after a simulated crash (no disk writes).
    /// The whole restore happens inside one view transition: snapshot
    /// readers either still see the pending before-images or the
    /// already-restored frames — both are the same committed bytes.
    fn rollback_with(&self, io: &mut IoState, txn: TxnState) -> StorageResult<()> {
        self.begin_view_change();
        let mut deferred_installs: Vec<Arc<Frame>> = Vec::new();
        for (pid, undo) in &txn.undo {
            let stolen = txn.stolen.contains(pid);
            match &undo.image {
                Some(image) => {
                    if let Some(frame) = self.lookup_frame(*pid) {
                        let mut body = frame.body.write();
                        body.page = Arc::clone(image);
                        // Stolen pages left uncommitted content on disk; the
                        // restored image must eventually be written back.
                        body.dirty = undo.prior_dirty || stolen;
                        body.rec_lsn = 0;
                    } else if stolen {
                        // Evicted after the steal: the disk copy is
                        // uncommitted garbage; reinstall the before-image as
                        // a dirty frame.
                        deferred_installs.push(Frame::new(*pid, Arc::clone(image), true, 0));
                    }
                }
                None => {
                    // Allocated inside the transaction: forget the frame.
                    let mut shard = self.shards[shard_of(*pid)].lock();
                    if let Some(&idx) = shard.map.get(pid) {
                        debug_assert_eq!(
                            shard.slots[idx].pins.load(Ordering::Relaxed),
                            0,
                            "rolling back a pinned allocation"
                        );
                        shard.remove_slot(idx);
                        self.resident.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
        }
        // Install outside the undo iteration so evictions triggered by
        // capacity pressure see consistent state.
        let mut result = Ok(());
        for frame in deferred_installs {
            if let Err(e) = self.install(io, frame) {
                result = Err(e);
            }
        }
        io.pager
            .restore_header(txn.header.0, txn.header.1, txn.header.2, txn.header.3);
        // Drop the pending before-images (the frames above now hold the
        // same bytes); committed history stays — pinned readers still need
        // it, and the rolled-back transaction never touched it.
        self.versions.write().retain(|_, chain| {
            chain.pending = None;
            !chain.committed.is_empty()
        });
        self.end_view_change();
        result
    }

    /// Write every dirty page and the header to the data file, fsync, then
    /// truncate the log.
    fn checkpoint(&self, io: &mut IoState) -> StorageResult<()> {
        if io.sim_crashed() {
            return Err(StorageError::Io(fatal_crash_error()));
        }
        if let Err(e) = io.wal.sync() {
            io.poison(&e);
            return Err(e);
        }
        for shard in &self.shards {
            let frames: Vec<Arc<Frame>> = shard.lock().slots.to_vec();
            for frame in frames {
                let mut body = frame.body.write();
                if !body.dirty {
                    continue;
                }
                io.pager.write_page(frame.pid, &body.page)?;
                body.dirty = false;
                AtomicStats::bump(&self.stats.flushes);
            }
        }
        let end = io.wal.end_lsn();
        io.pager.set_checkpoint_lsn(end);
        if let Err(e) = io.pager.sync() {
            io.poison(&e);
            return Err(e);
        }
        // Truncate even when logging is currently disabled: a stale log
        // from an earlier logged phase must never replay over the newer
        // checkpointed data.
        io.wal.reset()?;
        Ok(())
    }

    /// Ensure a free capacity slot exists (evicting while at capacity).
    fn reserve(&self, io: &mut IoState) -> StorageResult<()> {
        while self.resident.load(Ordering::Relaxed) >= self.capacity {
            self.evict_one(io)?;
        }
        Ok(())
    }

    /// Place a frame into its shard, evicting if at capacity.
    fn install(&self, io: &mut IoState, frame: Arc<Frame>) -> StorageResult<()> {
        self.reserve(io)?;
        self.shards[shard_of(frame.pid)].lock().insert(frame);
        self.resident.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Clock sweep: walk the shards round-robin clearing reference bits
    /// until an unpinned, unreferenced frame comes up; write it back (when
    /// dirty, WAL-first) and forget it. Two full sweeps without a victim
    /// means every frame is pinned — a caller bug surfaced as an error
    /// rather than unbounded growth.
    fn evict_one(&self, io: &mut IoState) -> StorageResult<()> {
        let total = self.resident.load(Ordering::Relaxed);
        let budget = 2 * total + SHARD_COUNT;
        let mut steps = 0usize;
        while steps < budget {
            let si = io.sweep_shard % SHARD_COUNT;
            io.sweep_shard = io.sweep_shard.wrapping_add(1);
            let victim = {
                let mut shard = self.shards[si].lock();
                let n = shard.slots.len();
                if n == 0 {
                    steps += 1;
                    None
                } else {
                    let mut found = None;
                    for _ in 0..n {
                        let i = shard.hand % shard.slots.len();
                        shard.hand = (shard.hand + 1) % shard.slots.len();
                        steps += 1;
                        let frame = &shard.slots[i];
                        if frame.pins.load(Ordering::Acquire) > 0 {
                            continue;
                        }
                        if frame.referenced.swap(false, Ordering::Relaxed) {
                            continue;
                        }
                        found = Some(i);
                        break;
                    }
                    found.map(|i| shard.remove_slot(i))
                }
            };
            if let Some(frame) = victim {
                self.resident.fetch_sub(1, Ordering::Relaxed);
                if let Err(e) = self.write_back_evicted(io, &frame) {
                    // Keep the frame (and its dirty content) resident so an
                    // injected-crash test still sees consistent memory.
                    self.shards[shard_of(frame.pid)].lock().insert(frame);
                    self.resident.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
                AtomicStats::bump(&self.stats.evictions);
                return Ok(());
            }
        }
        Err(StorageError::PoolExhausted(self.capacity))
    }

    /// Write back a just-evicted frame (WAL-before-data, stealing the
    /// before-image of an uncommitted page first).
    fn write_back_evicted(&self, io: &mut IoState, frame: &Arc<Frame>) -> StorageResult<()> {
        let pid = frame.pid;
        let body = frame.body.read();
        if !body.dirty || pid.is_null() {
            return Ok(());
        }
        // Steal: an uncommitted dirty page is about to reach the data
        // file. Record the steal whether or not logging is on — runtime
        // rollback needs it to know the disk copy must be overwritten —
        // and, when logging, make the before-image durable first so
        // crash recovery can undo it too.
        let mut must_sync = false;
        let logging = io.logging;
        if let Some(txn) = &mut io.txn {
            if txn.dirty.contains(&pid) && !txn.stolen.contains(&pid) {
                if logging {
                    // A page *allocated inside* this transaction needs no
                    // undo record: its before-state is nonexistence. If the
                    // transaction loses, the page lies beyond the committed
                    // page count and recovery skips it — so a bulk load that
                    // overflows the pool streams fresh pages to disk with no
                    // log traffic and no per-eviction fsync.
                    if let Some(UndoEntry {
                        image: Some(img), ..
                    }) = txn.undo.get(&pid)
                    {
                        let before = Arc::clone(img);
                        io.wal
                            .append_image(WalRecordKind::Undo, txn.id, pid, before.bytes())?;
                        must_sync = true;
                    }
                }
                txn.stolen.insert(pid);
            }
        }
        if logging {
            // WAL-before-data: the log must cover this page's latest
            // commit record before its content reaches the data file.
            if must_sync || body.rec_lsn > io.wal.durable_lsn() {
                if let Err(e) = io.wal.sync() {
                    io.poison(&e);
                    return Err(e);
                }
            }
        }
        io.pager.write_page(pid, &body.page)?;
        AtomicStats::bump(&self.stats.writebacks);
        Ok(())
    }
}

impl Drop for BufferPool {
    /// Clean-close durability: an asynchronously acknowledged commit may
    /// still sit in the WAL's pending frame queue — drain it and fsync
    /// once, so a clean close never loses an acknowledged commit. Skipped
    /// when the writer is poisoned (a failed fsync is never retried, per
    /// the poisoning rule), in read-only mode, after a simulated crash
    /// (crash tests rely on drop-without-flush), or with a transaction
    /// still open (an uncommitted loser must not reach the disk ordering
    /// a commit implies). A failure here is ignored: recovery replays the
    /// log, and retrying the fsync could silently succeed against
    /// already-dropped kernel pages.
    fn drop(&mut self) {
        if self.commit.poisoned().is_some() {
            return;
        }
        let io = self.io.get_mut();
        if io.read_only || io.txn.is_some() || io.sim_crashed() || !io.logging {
            return;
        }
        let _ = io.wal.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    fn pool(capacity: usize) -> (tempfile::TempDir, BufferPool) {
        let dir = tempdir().unwrap();
        let pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        (dir, BufferPool::with_capacity(pager, capacity).unwrap())
    }

    #[test]
    fn write_then_read_through_cache() {
        let (_dir, pool) = pool(16);
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 99)).unwrap();
        let v = pool.with_page(pid, |p| p.read_u64(0)).unwrap();
        assert_eq!(v, 99);
        let stats = pool.stats();
        assert!(stats.hits >= 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (_dir, pool) = pool(8);
        let mut pids = Vec::new();
        for i in 0..32u64 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, i)).unwrap();
            pids.push(pid);
        }
        // With capacity 8, earlier pages were evicted; reading them again must
        // still return the written values (they were flushed on eviction).
        for (i, pid) in pids.iter().enumerate() {
            let v = pool.with_page(*pid, |p| p.read_u64(0)).unwrap();
            assert_eq!(v, i as u64);
        }
        assert!(pool.stats().evictions > 0);
        assert!(pool.stats().writebacks > 0);
        assert!(pool.stats().misses > 0);
    }

    #[test]
    fn capacity_is_respected() {
        let (_dir, pool) = pool(8);
        for _ in 0..100 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
            assert!(
                pool.resident_pages() <= 8,
                "pool exceeded its frame capacity"
            );
        }
        assert_eq!(pool.resident_pages(), 8);
        assert!(pool.stats().evictions >= 92);
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let (_dir, pool) = pool(8);
        let first = pool.allocate_page().unwrap();
        pool.with_page_mut(first, |p| p.write_u64(0, 42)).unwrap();
        let pin = pool.pin(first).unwrap();
        assert_eq!(pin.read_u64(0), 42);
        // Push far more pages than capacity through the pool; the pinned
        // frame must survive every sweep.
        for i in 0..64u64 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, i)).unwrap();
        }
        assert!(pool.resident_pages() <= 8);
        assert_eq!(pool.pinned_frames(), 1);
        // The pinned guard still reads its snapshot without a pool access.
        assert_eq!(pin.read_u64(0), 42);
        drop(pin);
        assert_eq!(pool.pinned_frames(), 0);
        // Now the frame can be evicted like any other.
        for i in 0..32u64 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, i)).unwrap();
        }
        assert!(pool.resident_pages() <= 8);
    }

    #[test]
    fn all_pinned_pool_reports_exhaustion() {
        let (_dir, pool) = pool(8);
        let mut pins = Vec::new();
        for _ in 0..8 {
            let pid = pool.allocate_page().unwrap();
            pins.push(pool.pin(pid).unwrap());
        }
        // Ninth page cannot be installed anywhere — and the failed attempt
        // must not advance the file's page counter (no leaked pages).
        let before = pool.page_count();
        let err = pool.allocate_page();
        assert!(matches!(err, Err(StorageError::PoolExhausted(_))));
        assert_eq!(
            pool.page_count(),
            before,
            "failed allocation leaked a file page"
        );
        drop(pins);
        assert!(pool.allocate_page().is_ok());
    }

    #[test]
    fn pinned_snapshot_survives_concurrent_write() {
        let (_dir, pool) = pool(8);
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
        let pin = pool.pin(pid).unwrap();
        // Copy-on-write: the mutation goes to a fresh Arc, the pin keeps its
        // snapshot.
        pool.with_page_mut(pid, |p| p.write_u64(0, 2)).unwrap();
        assert_eq!(pin.read_u64(0), 1);
        drop(pin);
        assert_eq!(pool.with_page(pid, |p| p.read_u64(0)).unwrap(), 2);
    }

    #[test]
    fn flush_persists_across_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let pid;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::new(pager).unwrap();
            pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_bytes(0, b"persist me"))
                .unwrap();
            pool.set_catalog_root(pid);
            pool.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::new(pager).unwrap();
        assert_eq!(pool.catalog_root(), pid);
        let bytes = pool
            .with_page(pid, |p| p.read_bytes(0, 10).to_vec())
            .unwrap();
        assert_eq!(&bytes, b"persist me");
    }

    #[test]
    fn clear_cache_forces_misses() {
        let (_dir, pool) = pool(16);
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 5)).unwrap();
        pool.clear_cache().unwrap();
        pool.reset_stats();
        let _ = pool.with_page(pid, |p| p.read_u64(0)).unwrap();
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().hits, 0);
    }

    #[test]
    fn hit_ratio_computation() {
        let s = BufferStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(s.page_reads(), 4);
        assert_eq!(BufferStats::default().hit_ratio(), 0.0);
    }

    // ------------------------------------------------------------------
    // Transaction semantics
    // ------------------------------------------------------------------

    #[test]
    fn committed_txn_survives_crash_without_checkpoint() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let pid;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::with_capacity(pager, 16).unwrap();
            pool.begin_txn().unwrap();
            pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, 4242)).unwrap();
            pool.commit_txn(true).unwrap();
            // Crash: no flush — the dirty page dies with the pool.
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 16).unwrap();
        let report = pool.recovery_report().expect("reopen must report recovery");
        assert_eq!(report.committed_txns, 1);
        assert!(report.pages_redone >= 1);
        assert_eq!(pool.with_page(pid, |p| p.read_u64(0)).unwrap(), 4242);
    }

    #[test]
    fn uncommitted_txn_vanishes_on_crash() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let committed;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::with_capacity(pager, 16).unwrap();
            pool.begin_txn().unwrap();
            committed = pool.allocate_page().unwrap();
            pool.with_page_mut(committed, |p| p.write_u64(0, 1))
                .unwrap();
            pool.commit_txn(true).unwrap();
            // Second transaction never commits.
            pool.begin_txn().unwrap();
            pool.with_page_mut(committed, |p| p.write_u64(0, 999))
                .unwrap();
            let extra = pool.allocate_page().unwrap();
            pool.with_page_mut(extra, |p| p.write_u64(0, 7)).unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 16).unwrap();
        assert_eq!(pool.with_page(committed, |p| p.read_u64(0)).unwrap(), 1);
        // The loser's allocation never made it into the page count.
        assert_eq!(pool.page_count(), committed.0 + 1);
    }

    #[test]
    fn rollback_restores_pages_and_header() {
        let (_dir, pool) = pool(16);
        pool.begin_txn().unwrap();
        let base = pool.allocate_page().unwrap();
        pool.with_page_mut(base, |p| p.write_u64(0, 10)).unwrap();
        pool.commit_txn(false).unwrap();
        let count_before = pool.page_count();

        pool.begin_txn().unwrap();
        pool.with_page_mut(base, |p| p.write_u64(0, 20)).unwrap();
        let fresh = pool.allocate_page().unwrap();
        pool.with_page_mut(fresh, |p| p.write_u64(0, 30)).unwrap();
        pool.set_catalog_root(fresh);
        pool.rollback_txn().unwrap();

        assert_eq!(pool.with_page(base, |p| p.read_u64(0)).unwrap(), 10);
        assert_eq!(
            pool.page_count(),
            count_before,
            "rollback must undo allocations"
        );
        assert!(
            pool.catalog_root().is_null(),
            "rollback must restore the header"
        );
    }

    #[test]
    fn steal_then_commit_persists() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let mut pids = Vec::new();
        {
            let pager = Pager::create(&path).unwrap();
            // Tiny pool: the transaction dirties far more pages than fit, so
            // most get stolen (written before commit).
            let pool = BufferPool::with_capacity(pager, 8).unwrap();
            pool.begin_txn().unwrap();
            for i in 0..64u64 {
                let pid = pool.allocate_page().unwrap();
                pool.with_page_mut(pid, |p| p.write_u64(0, i * 3)).unwrap();
                pids.push(pid);
            }
            pool.commit_txn(true).unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 8).unwrap();
        for (i, pid) in pids.iter().enumerate() {
            assert_eq!(
                pool.with_page(*pid, |p| p.read_u64(0)).unwrap(),
                i as u64 * 3
            );
        }
    }

    #[test]
    fn steal_then_crash_rolls_back() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let base;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::with_capacity(pager, 8).unwrap();
            pool.begin_txn().unwrap();
            base = pool.allocate_page().unwrap();
            pool.with_page_mut(base, |p| p.write_u64(0, 123)).unwrap();
            pool.commit_txn(true).unwrap();
            pool.flush().unwrap();
            // Loser transaction overwrites the committed page AND dirties
            // enough pages to force the overwrite onto disk (steal).
            pool.begin_txn().unwrap();
            pool.with_page_mut(base, |p| p.write_u64(0, 666)).unwrap();
            for i in 0..32u64 {
                let pid = pool.allocate_page().unwrap();
                pool.with_page_mut(pid, |p| p.write_u64(0, i)).unwrap();
            }
            assert!(pool.stats().writebacks > 0, "steal must have happened");
            // Crash without commit.
        }
        // The data file now contains uncommitted content; recovery must undo
        // it from the logged before-image.
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 8).unwrap();
        let report = pool.recovery_report().unwrap();
        assert!(report.loser_txns >= 1);
        assert!(report.pages_undone >= 1);
        assert_eq!(pool.with_page(base, |p| p.read_u64(0)).unwrap(), 123);
    }

    #[test]
    fn runtime_rollback_after_steal_restores_memory() {
        let (_dir, pool) = pool(8);
        pool.begin_txn().unwrap();
        let base = pool.allocate_page().unwrap();
        pool.with_page_mut(base, |p| p.write_u64(0, 5)).unwrap();
        pool.commit_txn(false).unwrap();
        pool.begin_txn().unwrap();
        pool.with_page_mut(base, |p| p.write_u64(0, 50)).unwrap();
        // Force the modified page out of the pool (steal).
        for _ in 0..32 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
        }
        pool.rollback_txn().unwrap();
        assert_eq!(pool.with_page(base, |p| p.read_u64(0)).unwrap(), 5);
        // And the restored content reaches disk at the next checkpoint.
        pool.flush().unwrap();
        assert_eq!(pool.with_page(base, |p| p.read_u64(0)).unwrap(), 5);
    }

    #[test]
    fn double_begin_and_stray_commit_error() {
        let (_dir, pool) = pool(8);
        pool.begin_txn().unwrap();
        assert!(matches!(
            pool.begin_txn(),
            Err(StorageError::TransactionActive)
        ));
        pool.commit_txn(false).unwrap();
        assert!(matches!(
            pool.commit_txn(false),
            Err(StorageError::NoActiveTransaction)
        ));
        assert!(matches!(
            pool.rollback_txn(),
            Err(StorageError::NoActiveTransaction)
        ));
    }

    #[test]
    fn flush_during_txn_is_rejected() {
        let (_dir, pool) = pool(8);
        pool.begin_txn().unwrap();
        assert!(matches!(pool.flush(), Err(StorageError::TransactionActive)));
        pool.rollback_txn().unwrap();
        pool.flush().unwrap();
    }

    #[test]
    fn checkpoint_truncates_the_log() {
        let (_dir, pool) = pool(16);
        pool.begin_txn().unwrap();
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 9)).unwrap();
        pool.commit_txn(true).unwrap();
        assert!(pool.stats().wal_bytes > 0);
        pool.flush().unwrap();
        pool.reset_stats();
        // A fresh commit after the checkpoint starts a new log generation.
        pool.begin_txn().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 10)).unwrap();
        pool.commit_txn(true).unwrap();
        let stats = pool.stats();
        assert!(stats.wal_appends >= 2); // image + commit
        assert_eq!(stats.commits, 1);
    }

    #[test]
    fn mutation_stamps_the_page_rec_lsn() {
        let (_dir, pool) = pool(16);
        pool.begin_txn().unwrap();
        let pid = pool.allocate_page().unwrap();
        assert_eq!(
            pool.with_page(pid, |p| p.lsn()).unwrap(),
            0,
            "fresh page: no mutation yet"
        );
        pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
        let lsn0 = pool.with_page(pid, |p| p.lsn()).unwrap();
        assert!(lsn0 > 0, "mutation must stamp a recovery LSN");
        pool.commit_txn(true).unwrap();
        // The next mutation happens at a later log-tail position.
        pool.begin_txn().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 2)).unwrap();
        let lsn1 = pool.with_page(pid, |p| p.lsn()).unwrap();
        assert!(lsn1 > lsn0, "recLSNs are monotone: {lsn1} vs {lsn0}");
        pool.commit_txn(true).unwrap();
    }

    #[test]
    fn unlogged_rollback_restores_stolen_pages() {
        let (_dir, pool) = pool(8);
        pool.set_logging(false).unwrap();
        pool.begin_txn().unwrap();
        let base = pool.allocate_page().unwrap();
        pool.with_page_mut(base, |p| p.write_u64(0, 5)).unwrap();
        pool.commit_txn(false).unwrap();
        pool.begin_txn().unwrap();
        pool.with_page_mut(base, |p| p.write_u64(0, 500)).unwrap();
        // Push the uncommitted page out of the pool (unlogged steal).
        for _ in 0..32 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
        }
        assert!(pool.stats().writebacks > 0);
        pool.rollback_txn().unwrap();
        assert_eq!(
            pool.with_page(base, |p| p.read_u64(0)).unwrap(),
            5,
            "rollback must restore a page stolen in unlogged mode"
        );
        pool.set_logging(true).unwrap();
    }

    #[test]
    fn checkpoint_truncates_a_stale_log_in_unlogged_mode() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let pid;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::with_capacity(pager, 16).unwrap();
            // Logged commit leaves an after-image of value 1 in the WAL.
            pool.begin_txn().unwrap();
            pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
            pool.commit_txn(true).unwrap();
            // Unlogged phase overwrites it and checkpoints; the stale log
            // must be truncated so it can never replay over value 2.
            pool.set_logging(false).unwrap();
            pool.begin_txn().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, 2)).unwrap();
            pool.commit_txn(false).unwrap();
            pool.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 16).unwrap();
        assert!(!pool.recovery_report().unwrap().did_work());
        assert_eq!(pool.with_page(pid, |p| p.read_u64(0)).unwrap(), 2);
    }

    #[test]
    fn unlogged_mode_skips_the_wal() {
        let (_dir, pool) = pool(16);
        pool.set_logging(false).unwrap();
        pool.begin_txn().unwrap();
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
        pool.commit_txn(true).unwrap();
        assert_eq!(pool.stats().wal_appends, 0);
        // Rollback still works in memory without the log.
        pool.begin_txn().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 2)).unwrap();
        pool.rollback_txn().unwrap();
        assert_eq!(pool.with_page(pid, |p| p.read_u64(0)).unwrap(), 1);
        pool.set_logging(true).unwrap();
    }

    #[test]
    fn injected_wal_crash_fails_commit_and_rolls_back() {
        let (_dir, pool) = pool(16);
        pool.begin_txn().unwrap();
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 77)).unwrap();
        pool.commit_txn(true).unwrap();
        pool.begin_txn().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 88)).unwrap();
        pool.inject_crash(CrashPoint::WalAppend(0));
        assert!(pool.commit_txn(true).is_err());
        // The failed commit rolled back in memory.
        assert_eq!(pool.with_page(pid, |p| p.read_u64(0)).unwrap(), 77);
        // The pool is dead for writes from here on.
        assert!(pool.flush().is_err());
    }

    // ------------------------------------------------------------------
    // Snapshot reads
    // ------------------------------------------------------------------

    #[test]
    fn snapshot_read_hides_in_flight_transaction() {
        let (_dir, pool) = pool(16);
        pool.begin_txn().unwrap();
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
        pool.commit_txn(false).unwrap();

        pool.begin_txn().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 999)).unwrap();
        // The writer sees its own mutation; a snapshot read sees the last
        // committed value.
        assert_eq!(pool.with_page(pid, |p| p.read_u64(0)).unwrap(), 999);
        assert_eq!(pool.with_page_snapshot(pid, |p| p.read_u64(0)).unwrap(), 1);
        let gen_before = pool.read_generation();
        pool.commit_txn(false).unwrap();
        assert!(pool.read_generation() > gen_before, "commit bumps the view");
        assert_eq!(
            pool.with_page_snapshot(pid, |p| p.read_u64(0)).unwrap(),
            999
        );
    }

    #[test]
    fn snapshot_read_hides_stolen_uncommitted_pages() {
        let (_dir, pool) = pool(8);
        pool.begin_txn().unwrap();
        let base = pool.allocate_page().unwrap();
        pool.with_page_mut(base, |p| p.write_u64(0, 7)).unwrap();
        pool.commit_txn(false).unwrap();
        pool.begin_txn().unwrap();
        pool.with_page_mut(base, |p| p.write_u64(0, 700)).unwrap();
        // Evict the uncommitted page to disk (steal).
        for _ in 0..32 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
        }
        assert!(pool.stats().writebacks > 0, "steal must have happened");
        // Even though the disk copy holds 700, the snapshot read serves the
        // pending before-image.
        assert_eq!(pool.with_page_snapshot(base, |p| p.read_u64(0)).unwrap(), 7);
        pool.rollback_txn().unwrap();
        assert_eq!(pool.with_page(base, |p| p.read_u64(0)).unwrap(), 7);
        assert_eq!(pool.with_page_snapshot(base, |p| p.read_u64(0)).unwrap(), 7);
    }

    #[test]
    fn snapshot_pin_serves_before_image() {
        let (_dir, pool) = pool(16);
        pool.begin_txn().unwrap();
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 11)).unwrap();
        pool.commit_txn(false).unwrap();
        pool.begin_txn().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 22)).unwrap();
        let pin = pool.pin_snapshot(pid).unwrap();
        assert_eq!(pin.read_u64(0), 11);
        assert_eq!(pin.page_id(), pid);
        // Overlay-backed pins hold no frame pin.
        assert_eq!(pool.pinned_frames(), 0);
        drop(pin);
        pool.commit_txn(false).unwrap();
        let pin = pool.pin_snapshot(pid).unwrap();
        assert_eq!(pin.read_u64(0), 22);
        assert_eq!(pool.pinned_frames(), 1);
    }

    #[test]
    fn committed_catalog_root_ignores_in_flight_change() {
        let (_dir, pool) = pool(16);
        let pid = pool.allocate_page().unwrap();
        pool.set_catalog_root(pid);
        pool.begin_txn().unwrap();
        let other = pool.allocate_page().unwrap();
        pool.set_catalog_root(other);
        assert_eq!(pool.catalog_root(), other);
        assert_eq!(pool.committed_catalog_root(), pid);
        pool.commit_txn(false).unwrap();
        assert_eq!(pool.committed_catalog_root(), other);
    }

    #[test]
    fn concurrent_readers_count_every_access() {
        use std::sync::atomic::AtomicU64;
        let (_dir, pool) = pool(64);
        let mut pids = Vec::new();
        for i in 0..32u64 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, i * 7)).unwrap();
            pids.push(pid);
        }
        pool.flush().unwrap();
        pool.reset_stats();
        let done = AtomicU64::new(0);
        const READERS: usize = 4;
        const ROUNDS: usize = 500;
        std::thread::scope(|s| {
            for t in 0..READERS {
                let pool = &pool;
                let pids = &pids;
                let done = &done;
                s.spawn(move || {
                    for r in 0..ROUNDS {
                        let idx = (t * 31 + r * 17) % pids.len();
                        let v = pool.with_page(pids[idx], |p| p.read_u64(0)).unwrap();
                        assert_eq!(v, idx as u64 * 7, "torn read");
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), (READERS * ROUNDS) as u64);
        // Atomic counters lose nothing: every access is either a hit or a
        // miss, and all pages stayed resident (no eviction pressure).
        let stats = pool.stats();
        assert_eq!(stats.page_reads(), (READERS * ROUNDS) as u64);
    }
}
