//! Buffer pool: a fixed-capacity clock (second-chance) page cache between
//! the pager and the access methods.
//!
//! The paper argues that "simulation trees are huge, yet the portions
//! retrieved by a single query are relatively small", so queries must not
//! load whole trees into memory. The buffer pool is the mechanism that makes
//! that work: a bounded set of frames stays resident, everything else is
//! written back (when dirty) and evicted.
//!
//! ## Design
//!
//! * **Fixed capacity.** Frames live in a pre-sized slot vector; residency
//!   never exceeds `capacity` pages, regardless of file size.
//! * **Clock eviction.** Each frame carries a reference bit set on access;
//!   the clock hand sweeps slots, clearing reference bits and evicting the
//!   first unpinned, unreferenced frame. This approximates LRU without
//!   maintaining a recency list on every page hit.
//! * **`Arc<Page>` frames, zero-clone writes.** Frames hold `Arc<Page>`;
//!   flush and eviction write through a borrow of the frame's page — no
//!   `Page` is ever cloned on the write-back path. Mutation goes through
//!   `Arc::make_mut`, which is in-place unless a pinned reader still holds
//!   the frame (copy-on-write in that rare case).
//! * **Pinning.** [`BufferPool::pin`] hands out a [`PinnedPage`] guard that
//!   keeps the frame resident (the clock skips pinned frames) and gives
//!   lock-free read access to the page bytes for the guard's lifetime. Range
//!   scans pin one leaf at a time instead of copying every entry out of the
//!   page under the pool lock.
//!
//! Closure-based access (`with_page` / `with_page_mut`) remains the bread
//! and butter API; all state sits behind a single `parking_lot::Mutex`,
//! which is sufficient for the engine's one-writer-at-a-time usage while
//! still being `Send + Sync`.

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId};
use crate::pager::Pager;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Statistics counters exposed for the repository-scale experiment (E9) and
/// the interval-index page-read assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Number of page requests satisfied from the cache.
    pub hits: u64,
    /// Number of page requests that had to read from disk.
    pub misses: u64,
    /// Number of frames evicted to make room (clean or dirty).
    pub evictions: u64,
    /// Number of pages flushed by explicit flush calls.
    pub flushes: u64,
    /// Number of dirty pages written back during eviction.
    pub writebacks: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; zero when no accesses happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total page requests (hits + misses) — the "page reads" a query cost.
    pub fn page_reads(&self) -> u64 {
        self.hits + self.misses
    }
}

struct Frame {
    pid: PageId,
    page: Arc<Page>,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

struct Inner {
    pager: Pager,
    /// Frame slots; `slots.len() <= capacity` always holds.
    slots: Vec<Frame>,
    /// Page id → slot index.
    map: HashMap<PageId, usize>,
    /// Clock hand position for the second-chance sweep.
    hand: usize,
    capacity: usize,
    stats: BufferStats,
}

/// A fixed-capacity clock buffer pool wrapping a [`Pager`].
pub struct BufferPool {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("BufferPool")
            .field("capacity", &inner.capacity)
            .field("resident", &inner.slots.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

/// RAII guard for a pinned page: keeps the frame resident and readable
/// without holding the pool lock. Dropping the guard unpins the frame.
pub struct PinnedPage<'a> {
    pool: &'a BufferPool,
    pid: PageId,
    page: Arc<Page>,
}

impl<'a> PinnedPage<'a> {
    /// The pinned page's id.
    pub fn page_id(&self) -> PageId {
        self.pid
    }
}

impl<'a> std::ops::Deref for PinnedPage<'a> {
    type Target = Page;
    fn deref(&self) -> &Page {
        &self.page
    }
}

impl<'a> Drop for PinnedPage<'a> {
    fn drop(&mut self) {
        let mut inner = self.pool.inner.lock();
        if let Some(&slot) = inner.map.get(&self.pid) {
            let frame = &mut inner.slots[slot];
            debug_assert!(frame.pins > 0, "unpinning a frame that is not pinned");
            frame.pins = frame.pins.saturating_sub(1);
        }
    }
}

impl BufferPool {
    /// Default number of resident pages (~8 MiB with 8 KiB pages).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Wrap a pager with the default capacity.
    pub fn new(pager: Pager) -> Self {
        Self::with_capacity(pager, Self::DEFAULT_CAPACITY)
    }

    /// Wrap a pager with an explicit page capacity (minimum 8).
    pub fn with_capacity(pager: Pager, capacity: usize) -> Self {
        let capacity = capacity.max(8);
        BufferPool {
            inner: Mutex::new(Inner {
                pager,
                slots: Vec::with_capacity(capacity.min(4096)),
                map: HashMap::new(),
                hand: 0,
                capacity,
                stats: BufferStats::default(),
            }),
        }
    }

    /// The pool's frame capacity in pages.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Number of pages currently resident (always `<= capacity`).
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// Number of currently pinned frames.
    pub fn pinned_frames(&self) -> usize {
        self.inner.lock().slots.iter().filter(|f| f.pins > 0).count()
    }

    /// Allocate a fresh page (resident immediately, marked dirty).
    pub fn allocate_page(&self) -> StorageResult<PageId> {
        let mut inner = self.inner.lock();
        // Secure a frame slot before advancing the pager's page counter, so
        // a pinned-full pool errors out without leaking a file page.
        let slot = inner.reserve_slot()?;
        let pid = inner.pager.allocate_page()?;
        let frame =
            Frame { pid, page: Arc::new(Page::new()), dirty: true, pins: 0, referenced: true };
        inner.place(frame, slot);
        Ok(pid)
    }

    /// Run `f` with read access to the page.
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let slot = inner.load(pid)?;
        Ok(f(&inner.slots[slot].page))
    }

    /// Run `f` with write access to the page; the page is marked dirty.
    pub fn with_page_mut<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let slot = inner.load(pid)?;
        let frame = &mut inner.slots[slot];
        frame.dirty = true;
        // In-place unless a pinned reader still holds the Arc (copy-on-write).
        Ok(f(Arc::make_mut(&mut frame.page)))
    }

    /// Pin a page: the returned guard keeps the frame resident and readable
    /// without holding the pool lock. Used by range scans to walk B+tree
    /// leaves without copying entries.
    pub fn pin(&self, pid: PageId) -> StorageResult<PinnedPage<'_>> {
        let mut inner = self.inner.lock();
        let slot = inner.load(pid)?;
        let frame = &mut inner.slots[slot];
        frame.pins += 1;
        let page = Arc::clone(&frame.page);
        Ok(PinnedPage { pool: self, pid, page })
    }

    /// The catalog root recorded in the file header.
    pub fn catalog_root(&self) -> PageId {
        self.inner.lock().pager.catalog_root()
    }

    /// Record the catalog root in the file header (persisted on flush).
    pub fn set_catalog_root(&self, pid: PageId) {
        self.inner.lock().pager.set_catalog_root(pid);
    }

    /// Number of pages in the underlying file.
    pub fn page_count(&self) -> u64 {
        self.inner.lock().pager.page_count()
    }

    /// Copy of the current statistics counters.
    pub fn stats(&self) -> BufferStats {
        self.inner.lock().stats
    }

    /// Reset statistics counters (useful between benchmark phases).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = BufferStats::default();
    }

    /// Write all dirty pages and the header to disk and fsync. Pages are
    /// written through a borrow of the resident frame — nothing is cloned
    /// and no intermediate id list is collected.
    pub fn flush(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let Inner { pager, slots, stats, .. } = &mut *inner;
        for frame in slots.iter_mut() {
            if frame.dirty {
                pager.write_page(frame.pid, &frame.page)?;
                frame.dirty = false;
                stats.flushes += 1;
            }
        }
        inner.pager.sync()?;
        Ok(())
    }

    /// Drop every unpinned resident page (dirty pages are flushed first).
    /// Used by benchmarks to measure cold-cache behaviour.
    pub fn clear_cache(&self) -> StorageResult<()> {
        self.flush()?;
        let mut inner = self.inner.lock();
        let Inner { slots, map, hand, .. } = &mut *inner;
        slots.retain(|f| f.pins > 0);
        map.clear();
        for (i, frame) in slots.iter().enumerate() {
            map.insert(frame.pid, i);
        }
        *hand = 0;
        Ok(())
    }
}

impl Inner {
    /// Ensure `pid` is resident, returning its slot index.
    fn load(&mut self, pid: PageId) -> StorageResult<usize> {
        if let Some(&slot) = self.map.get(&pid) {
            self.stats.hits += 1;
            self.slots[slot].referenced = true;
            return Ok(slot);
        }
        self.stats.misses += 1;
        let page = self.pager.read_page(pid)?;
        let frame = Frame { pid, page: Arc::new(page), dirty: false, pins: 0, referenced: true };
        self.install(frame)
    }

    /// Free up a slot for a new frame: `None` while below capacity (append),
    /// otherwise the index of a just-evicted victim.
    fn reserve_slot(&mut self) -> StorageResult<Option<usize>> {
        if self.slots.len() < self.capacity {
            return Ok(None);
        }
        let victim = self.find_victim()?;
        self.evict_slot(victim)?;
        Ok(Some(victim))
    }

    /// Put a frame into a reserved slot (or append) and index it.
    fn place(&mut self, frame: Frame, slot: Option<usize>) -> usize {
        let pid = frame.pid;
        let slot = match slot {
            Some(i) => {
                self.slots[i] = frame;
                i
            }
            None => {
                self.slots.push(frame);
                self.slots.len() - 1
            }
        };
        self.map.insert(pid, slot);
        slot
    }

    /// Place a frame into the pool, evicting if at capacity.
    fn install(&mut self, frame: Frame) -> StorageResult<usize> {
        let slot = self.reserve_slot()?;
        Ok(self.place(frame, slot))
    }

    /// Clock sweep: clear reference bits until an unpinned, unreferenced
    /// frame comes up. Two full sweeps without a victim means every frame is
    /// pinned — a caller bug surfaced as an error rather than unbounded
    /// growth.
    fn find_victim(&mut self) -> StorageResult<usize> {
        let len = self.slots.len();
        debug_assert!(len > 0);
        for _ in 0..2 * len {
            let i = self.hand;
            self.hand = (self.hand + 1) % len;
            let frame = &mut self.slots[i];
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            return Ok(i);
        }
        Err(StorageError::PoolExhausted(self.capacity))
    }

    /// Write back (when dirty) and forget the frame in `slot`. The slot
    /// itself is left for the caller to refill.
    fn evict_slot(&mut self, slot: usize) -> StorageResult<()> {
        let frame = &self.slots[slot];
        debug_assert_eq!(frame.pins, 0, "evicting a pinned frame");
        if frame.dirty {
            self.pager.write_page(frame.pid, &frame.page)?;
            self.stats.writebacks += 1;
        }
        self.stats.evictions += 1;
        self.map.remove(&frame.pid);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    fn pool(capacity: usize) -> (tempfile::TempDir, BufferPool) {
        let dir = tempdir().unwrap();
        let pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        (dir, BufferPool::with_capacity(pager, capacity))
    }

    #[test]
    fn write_then_read_through_cache() {
        let (_dir, pool) = pool(16);
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 99)).unwrap();
        let v = pool.with_page(pid, |p| p.read_u64(0)).unwrap();
        assert_eq!(v, 99);
        let stats = pool.stats();
        assert!(stats.hits >= 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (_dir, pool) = pool(8);
        let mut pids = Vec::new();
        for i in 0..32u64 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, i)).unwrap();
            pids.push(pid);
        }
        // With capacity 8, earlier pages were evicted; reading them again must
        // still return the written values (they were flushed on eviction).
        for (i, pid) in pids.iter().enumerate() {
            let v = pool.with_page(*pid, |p| p.read_u64(0)).unwrap();
            assert_eq!(v, i as u64);
        }
        assert!(pool.stats().evictions > 0);
        assert!(pool.stats().writebacks > 0);
        assert!(pool.stats().misses > 0);
    }

    #[test]
    fn capacity_is_respected() {
        let (_dir, pool) = pool(8);
        for _ in 0..100 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
            assert!(pool.resident_pages() <= 8, "pool exceeded its frame capacity");
        }
        assert_eq!(pool.resident_pages(), 8);
        assert!(pool.stats().evictions >= 92);
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let (_dir, pool) = pool(8);
        let first = pool.allocate_page().unwrap();
        pool.with_page_mut(first, |p| p.write_u64(0, 42)).unwrap();
        let pin = pool.pin(first).unwrap();
        assert_eq!(pin.read_u64(0), 42);
        // Push far more pages than capacity through the pool; the pinned
        // frame must survive every sweep.
        for i in 0..64u64 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, i)).unwrap();
        }
        assert!(pool.resident_pages() <= 8);
        assert_eq!(pool.pinned_frames(), 1);
        // The pinned guard still reads its snapshot without a pool access.
        assert_eq!(pin.read_u64(0), 42);
        drop(pin);
        assert_eq!(pool.pinned_frames(), 0);
        // Now the frame can be evicted like any other.
        for i in 0..32u64 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, i)).unwrap();
        }
        assert!(pool.resident_pages() <= 8);
    }

    #[test]
    fn all_pinned_pool_reports_exhaustion() {
        let (_dir, pool) = pool(8);
        let mut pins = Vec::new();
        for _ in 0..8 {
            let pid = pool.allocate_page().unwrap();
            pins.push(pool.pin(pid).unwrap());
        }
        // Ninth page cannot be installed anywhere — and the failed attempt
        // must not advance the file's page counter (no leaked pages).
        let before = pool.page_count();
        let err = pool.allocate_page();
        assert!(matches!(err, Err(StorageError::PoolExhausted(_))));
        assert_eq!(pool.page_count(), before, "failed allocation leaked a file page");
        drop(pins);
        assert!(pool.allocate_page().is_ok());
    }

    #[test]
    fn pinned_snapshot_survives_concurrent_write() {
        let (_dir, pool) = pool(8);
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
        let pin = pool.pin(pid).unwrap();
        // Copy-on-write: the mutation goes to a fresh Arc, the pin keeps its
        // snapshot.
        pool.with_page_mut(pid, |p| p.write_u64(0, 2)).unwrap();
        assert_eq!(pin.read_u64(0), 1);
        drop(pin);
        assert_eq!(pool.with_page(pid, |p| p.read_u64(0)).unwrap(), 2);
    }

    #[test]
    fn flush_persists_across_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let pid;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::new(pager);
            pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_bytes(0, b"persist me")).unwrap();
            pool.set_catalog_root(pid);
            pool.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::new(pager);
        assert_eq!(pool.catalog_root(), pid);
        let bytes = pool.with_page(pid, |p| p.read_bytes(0, 10).to_vec()).unwrap();
        assert_eq!(&bytes, b"persist me");
    }

    #[test]
    fn clear_cache_forces_misses() {
        let (_dir, pool) = pool(16);
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 5)).unwrap();
        pool.clear_cache().unwrap();
        pool.reset_stats();
        let _ = pool.with_page(pid, |p| p.read_u64(0)).unwrap();
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().hits, 0);
    }

    #[test]
    fn hit_ratio_computation() {
        let s = BufferStats { hits: 3, misses: 1, ..Default::default() };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(s.page_reads(), 4);
        assert_eq!(BufferStats::default().hit_ratio(), 0.0);
    }
}
