//! Buffer pool: a fixed-capacity clock (second-chance) page cache between
//! the pager and the access methods, and the enforcement point of the
//! write-ahead-logging protocol.
//!
//! The paper argues that "simulation trees are huge, yet the portions
//! retrieved by a single query are relatively small", so queries must not
//! load whole trees into memory. The buffer pool is the mechanism that makes
//! that work: a bounded set of frames stays resident, everything else is
//! written back (when dirty) and evicted.
//!
//! ## Design
//!
//! * **Fixed capacity.** Frames live in a pre-sized slot vector; residency
//!   never exceeds `capacity` pages, regardless of file size.
//! * **Clock eviction.** Each frame carries a reference bit set on access;
//!   the clock hand sweeps slots, clearing reference bits and evicting the
//!   first unpinned, unreferenced frame. This approximates LRU without
//!   maintaining a recency list on every page hit.
//! * **`Arc<Page>` frames, zero-clone writes.** Frames hold `Arc<Page>`;
//!   flush and eviction write through a borrow of the frame's page — no
//!   `Page` is ever cloned on the write-back path. Mutation goes through
//!   `Arc::make_mut`, which is in-place unless a pinned reader still holds
//!   the frame (copy-on-write in that rare case).
//! * **Pinning.** [`BufferPool::pin`] hands out a [`PinnedPage`] guard that
//!   keeps the frame resident (the clock skips pinned frames) and gives
//!   lock-free read access to the page bytes for the guard's lifetime.
//!
//! ## Transactions and WAL-before-data
//!
//! The pool owns the [`Wal`] and the state of the (single) active
//! transaction:
//!
//! * [`BufferPool::begin_txn`] snapshots the file-header state; every
//!   subsequent `with_page_mut`/`allocate_page` captures the page's
//!   before-image on first touch (a cheap `Arc` clone — copy-on-write does
//!   the actual copy only when the page is then mutated).
//! * [`BufferPool::commit_txn`] appends the after-image of every dirtied
//!   page plus a commit record to the log ("group" logging — one image per
//!   distinct page, however many operations touched it) and optionally
//!   fsyncs.
//! * [`BufferPool::rollback_txn`] restores the captured before-images in
//!   memory and rolls the header snapshot back.
//! * **Eviction** enforces WAL-before-data: a dirty page of the *active*
//!   transaction is *stolen* — its before-image is appended as an undo
//!   record and the log fsynced before the data-file write; a page whose
//!   latest committed image is not yet durable forces a log fsync first.
//!   Either way the log always covers a data write before it happens.
//! * [`BufferPool::flush`] is a **checkpoint**: fsync the log, write every
//!   dirty page and the header to the data file, fsync it, then truncate
//!   the log.
//!
//! Mutations performed outside any transaction (as the lower-level unit
//! tests and the `logging(false)` bench baseline do) bypass the log and
//! carry no crash-safety contract — exactly the pre-WAL behaviour.
//!
//! Closure-based access (`with_page` / `with_page_mut`) remains the bread
//! and butter API; all state sits behind a single `parking_lot::Mutex`,
//! which is sufficient for the engine's one-writer-at-a-time usage while
//! still being `Send + Sync`.

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId};
use crate::pager::Pager;
use crate::wal::{self, Lsn, RecoveryReport, Wal, WalRecordKind};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Statistics counters exposed for the repository-scale experiment (E9),
/// the interval-index page-read assertions and the WAL-overhead bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Number of page requests satisfied from the cache.
    pub hits: u64,
    /// Number of page requests that had to read from disk.
    pub misses: u64,
    /// Number of frames evicted to make room (clean or dirty).
    pub evictions: u64,
    /// Number of pages flushed by explicit flush calls.
    pub flushes: u64,
    /// Number of dirty pages written back during eviction.
    pub writebacks: u64,
    /// WAL records appended.
    pub wal_appends: u64,
    /// WAL bytes appended.
    pub wal_bytes: u64,
    /// WAL fsync calls.
    pub wal_syncs: u64,
    /// Transactions committed with at least one logged page.
    pub commits: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; zero when no accesses happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total page requests (hits + misses) — the "page reads" a query cost.
    pub fn page_reads(&self) -> u64 {
        self.hits + self.misses
    }

    /// Total data-file page writes (checkpoint flushes + eviction
    /// write-backs) — the "page writes" a workload cost.
    pub fn page_writes(&self) -> u64 {
        self.flushes + self.writebacks
    }
}

/// A point at which a simulated crash can be injected, for the
/// crash-recovery test harness. Once the point trips, every subsequent disk
/// write fails as if the process had died; the test then reopens the files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Fail the `n+1`-th WAL append from now with a torn half-write.
    WalAppend(u64),
    /// Fail the `n+1`-th data-file page write from now (eviction write-back
    /// or checkpoint flush).
    DataWrite(u64),
    /// Fail the next checkpoint after the data file is durable but before
    /// the log is truncated.
    CheckpointTruncate,
}

struct Frame {
    pid: PageId,
    page: Arc<Page>,
    dirty: bool,
    pins: u32,
    referenced: bool,
    /// LSN of the last WAL record covering this frame's content (commit
    /// image or steal undo); 0 when never logged. Eviction must not write
    /// the frame to the data file until the log is durable past this point.
    rec_lsn: Lsn,
}

/// Before-image captured on a transaction's first touch of a page.
struct UndoEntry {
    /// `None` for pages allocated inside the transaction (their "before"
    /// state is nonexistence).
    image: Option<Arc<Page>>,
    /// Whether the frame was already dirty (from an earlier committed but
    /// not yet checkpointed transaction) when captured.
    prior_dirty: bool,
}

struct TxnState {
    id: u64,
    /// Pages dirtied by this transaction, in id order (deterministic log).
    dirty: BTreeSet<PageId>,
    undo: HashMap<PageId, UndoEntry>,
    /// Pages whose before-image was already logged because the page was
    /// stolen (written to the data file before commit).
    stolen: HashSet<PageId>,
    /// Header snapshot at begin: (page_count, catalog_root, user_meta,
    /// checkpoint_lsn).
    header: (u64, PageId, PageId, u64),
}

struct Inner {
    pager: Pager,
    wal: Wal,
    /// Frame slots; `slots.len() <= capacity` always holds.
    slots: Vec<Frame>,
    /// Page id → slot index.
    map: HashMap<PageId, usize>,
    /// Clock hand position for the second-chance sweep.
    hand: usize,
    capacity: usize,
    stats: BufferStats,
    /// Whether transactional mutations are logged. Disabled only by the
    /// bench baseline; see [`BufferPool::set_logging`].
    logging: bool,
    txn: Option<TxnState>,
    recovery: Option<RecoveryReport>,
    /// Fault injection: fail after this many more data-file page writes.
    data_writes_until_crash: Option<u64>,
    /// Fault injection: fail the next checkpoint before truncating the log.
    checkpoint_truncate_crash: bool,
    crashed: bool,
}

/// A fixed-capacity clock buffer pool wrapping a [`Pager`] and the
/// database's [`Wal`].
pub struct BufferPool {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("BufferPool")
            .field("capacity", &inner.capacity)
            .field("resident", &inner.slots.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

/// RAII guard for a pinned page: keeps the frame resident and readable
/// without holding the pool lock. Dropping the guard unpins the frame.
pub struct PinnedPage<'a> {
    pool: &'a BufferPool,
    pid: PageId,
    page: Arc<Page>,
}

impl<'a> PinnedPage<'a> {
    /// The pinned page's id.
    pub fn page_id(&self) -> PageId {
        self.pid
    }
}

impl<'a> std::ops::Deref for PinnedPage<'a> {
    type Target = Page;
    fn deref(&self) -> &Page {
        &self.page
    }
}

impl<'a> Drop for PinnedPage<'a> {
    fn drop(&mut self) {
        let mut inner = self.pool.inner.lock();
        if let Some(&slot) = inner.map.get(&self.pid) {
            let frame = &mut inner.slots[slot];
            debug_assert!(frame.pins > 0, "unpinning a frame that is not pinned");
            frame.pins = frame.pins.saturating_sub(1);
        }
    }
}

impl BufferPool {
    /// Default number of resident pages (~8 MiB with 8 KiB pages).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Wrap a pager with the default capacity. Opening an existing file runs
    /// crash recovery against its WAL before the pool is usable.
    pub fn new(pager: Pager) -> StorageResult<Self> {
        Self::with_capacity(pager, Self::DEFAULT_CAPACITY)
    }

    /// Wrap a pager with an explicit page capacity (minimum 8). For a
    /// freshly created file the sibling WAL is truncated; for an existing
    /// file the WAL is replayed (redo committed transactions, undo losers)
    /// before the pool is handed out.
    pub fn with_capacity(pager: Pager, capacity: usize) -> StorageResult<Self> {
        let mut pager = pager;
        let wal_file = wal::wal_path_for(pager.path());
        let (wal, recovery) = if pager.is_fresh() {
            (Wal::create(&wal_file)?, None)
        } else {
            let mut wal = Wal::open(&wal_file)?;
            let report = wal::recover(&mut pager, &mut wal)?;
            (wal, Some(report))
        };
        let capacity = capacity.max(8);
        Ok(BufferPool {
            inner: Mutex::new(Inner {
                pager,
                wal,
                slots: Vec::with_capacity(capacity.min(4096)),
                map: HashMap::new(),
                hand: 0,
                capacity,
                stats: BufferStats::default(),
                logging: true,
                txn: None,
                recovery,
                data_writes_until_crash: None,
                checkpoint_truncate_crash: false,
                crashed: false,
            }),
        })
    }

    /// The pool's frame capacity in pages.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Number of pages currently resident (always `<= capacity`).
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// Number of currently pinned frames.
    pub fn pinned_frames(&self) -> usize {
        self.inner
            .lock()
            .slots
            .iter()
            .filter(|f| f.pins > 0)
            .count()
    }

    /// The recovery outcome from opening this pool's file, if the file
    /// pre-existed (a fresh file needs no recovery).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.inner.lock().recovery
    }

    /// Enable or disable write-ahead logging for subsequent transactions.
    /// Disabled logging restores the pre-WAL behaviour (no crash safety);
    /// it exists for the bench baseline. Fails while a transaction is open.
    pub fn set_logging(&self, enabled: bool) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        if inner.txn.is_some() {
            return Err(StorageError::TransactionActive);
        }
        inner.logging = enabled;
        Ok(())
    }

    /// Whether transactional mutations are currently logged.
    pub fn logging(&self) -> bool {
        self.inner.lock().logging
    }

    /// Inject a simulated crash (see [`CrashPoint`]). Test instrumentation
    /// for the crash-recovery suites.
    pub fn inject_crash(&self, point: CrashPoint) {
        let mut inner = self.inner.lock();
        match point {
            CrashPoint::WalAppend(n) => inner.wal.inject_crash_after_appends(n),
            CrashPoint::DataWrite(n) => inner.data_writes_until_crash = Some(n),
            CrashPoint::CheckpointTruncate => inner.checkpoint_truncate_crash = true,
        }
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction. The engine is single-writer: a second `begin`
    /// while one is open is an error, not a queue.
    pub fn begin_txn(&self) -> StorageResult<u64> {
        let mut inner = self.inner.lock();
        if inner.txn.is_some() {
            return Err(StorageError::TransactionActive);
        }
        let id = inner.wal.next_txn_id();
        let header = (
            inner.pager.page_count(),
            inner.pager.catalog_root(),
            inner.pager.user_meta(),
            inner.pager.checkpoint_lsn(),
        );
        inner.txn = Some(TxnState {
            id,
            dirty: BTreeSet::new(),
            undo: HashMap::new(),
            stolen: HashSet::new(),
            header,
        });
        Ok(id)
    }

    /// `true` while a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.inner.lock().txn.is_some()
    }

    /// Commit the open transaction: append the after-image of every dirtied
    /// page and a commit record to the log; `sync` additionally fsyncs
    /// (group fsync — one call covers the whole transaction). On a log
    /// failure mid-commit the transaction is rolled back in memory and the
    /// error returned.
    pub fn commit_txn(&self, sync: bool) -> StorageResult<Lsn> {
        let mut inner = self.inner.lock();
        let txn = inner.txn.take().ok_or(StorageError::NoActiveTransaction)?;
        if !inner.logging || txn.dirty.is_empty() {
            return Ok(inner.wal.end_lsn());
        }
        match inner.log_commit(&txn, sync) {
            Ok(lsn) => {
                for pid in &txn.dirty {
                    if let Some(&slot) = inner.map.get(pid) {
                        inner.slots[slot].rec_lsn = lsn;
                    }
                }
                Ok(lsn)
            }
            Err(e) => {
                // The commit never became durable; restore memory so the
                // caller sees pre-transaction state.
                let _ = inner.rollback_with(txn);
                Err(e)
            }
        }
    }

    /// Roll back the open transaction: restore every captured before-image
    /// in memory and reset the header snapshot. Nothing is appended to the
    /// log (a transaction without a commit record is a loser by
    /// definition).
    pub fn rollback_txn(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let txn = inner.txn.take().ok_or(StorageError::NoActiveTransaction)?;
        inner.rollback_with(txn)
    }

    // ------------------------------------------------------------------
    // Page access
    // ------------------------------------------------------------------

    /// Allocate a fresh page (resident immediately, marked dirty).
    pub fn allocate_page(&self) -> StorageResult<PageId> {
        let mut inner = self.inner.lock();
        // Secure a frame slot before advancing the pager's page counter, so
        // a pinned-full pool errors out without leaking a file page.
        let slot = inner.reserve_slot()?;
        let pid = inner.pager.allocate_page()?;
        let frame = Frame {
            pid,
            page: Arc::new(Page::new()),
            dirty: true,
            pins: 0,
            referenced: true,
            rec_lsn: 0,
        };
        inner.place(frame, slot);
        if let Some(txn) = &mut inner.txn {
            txn.dirty.insert(pid);
            txn.undo.entry(pid).or_insert(UndoEntry {
                image: None,
                prior_dirty: false,
            });
        }
        Ok(pid)
    }

    /// Run `f` with read access to the page.
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let slot = inner.load(pid)?;
        Ok(f(&inner.slots[slot].page))
    }

    /// Run `f` with write access to the page; the page is marked dirty and,
    /// inside a transaction, its before-image is captured on first touch.
    pub fn with_page_mut<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let slot = inner.load(pid)?;
        let Inner {
            slots, txn, wal, ..
        } = &mut *inner;
        let frame = &mut slots[slot];
        if let Some(txn) = txn {
            txn.dirty.insert(pid);
            txn.undo.entry(pid).or_insert_with(|| UndoEntry {
                image: Some(Arc::clone(&frame.page)),
                prior_dirty: frame.dirty,
            });
        }
        frame.dirty = true;
        // In-place unless a pinned reader or an undo snapshot still holds
        // the Arc (copy-on-write in that case).
        let page = Arc::make_mut(&mut frame.page);
        page.set_lsn(wal.end_lsn());
        Ok(f(page))
    }

    /// Pin a page: the returned guard keeps the frame resident and readable
    /// without holding the pool lock. Used by range scans to walk B+tree
    /// leaves without copying entries.
    pub fn pin(&self, pid: PageId) -> StorageResult<PinnedPage<'_>> {
        let mut inner = self.inner.lock();
        let slot = inner.load(pid)?;
        let frame = &mut inner.slots[slot];
        frame.pins += 1;
        let page = Arc::clone(&frame.page);
        Ok(PinnedPage {
            pool: self,
            pid,
            page,
        })
    }

    /// The catalog root recorded in the file header.
    pub fn catalog_root(&self) -> PageId {
        self.inner.lock().pager.catalog_root()
    }

    /// Record the catalog root in the file header (persisted on commit and
    /// checkpoint).
    pub fn set_catalog_root(&self, pid: PageId) {
        self.inner.lock().pager.set_catalog_root(pid);
    }

    /// Number of pages in the underlying file.
    pub fn page_count(&self) -> u64 {
        self.inner.lock().pager.page_count()
    }

    /// Copy of the current statistics counters (buffer activity plus WAL
    /// activity).
    pub fn stats(&self) -> BufferStats {
        let inner = self.inner.lock();
        let mut stats = inner.stats;
        let wal = inner.wal.stats();
        stats.wal_appends = wal.appends;
        stats.wal_bytes = wal.bytes;
        stats.wal_syncs = wal.syncs;
        stats.commits = wal.commits;
        stats
    }

    /// Reset statistics counters (useful between benchmark phases).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        inner.stats = BufferStats::default();
        inner.wal.reset_stats();
    }

    /// Checkpoint: fsync the log, write all dirty pages and the header to
    /// the data file, fsync it, then truncate the log. Fails while a
    /// transaction is open (commit or roll back first).
    pub fn flush(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        if inner.txn.is_some() {
            return Err(StorageError::TransactionActive);
        }
        inner.checkpoint()
    }

    /// Drop every unpinned resident page (dirty pages are flushed first).
    /// Used by benchmarks to measure cold-cache behaviour.
    pub fn clear_cache(&self) -> StorageResult<()> {
        self.flush()?;
        let mut inner = self.inner.lock();
        let Inner {
            slots, map, hand, ..
        } = &mut *inner;
        slots.retain(|f| f.pins > 0);
        map.clear();
        for (i, frame) in slots.iter().enumerate() {
            map.insert(frame.pid, i);
        }
        *hand = 0;
        Ok(())
    }
}

impl Inner {
    fn sim_crashed(&self) -> bool {
        self.crashed || self.wal.crashed()
    }

    /// Fault-injection gate in front of every data-file page write.
    fn data_write_gate(&mut self) -> StorageResult<()> {
        if self.sim_crashed() {
            return Err(wal::simulated_crash());
        }
        if let Some(n) = self.data_writes_until_crash {
            if n == 0 {
                self.crashed = true;
                return Err(wal::simulated_crash());
            }
            self.data_writes_until_crash = Some(n - 1);
        }
        Ok(())
    }

    /// Append the commit group for `txn`: one after-image per dirtied page
    /// (stolen pages are re-read from the data file — their latest content
    /// lives there) and a commit record carrying the header state.
    fn log_commit(&mut self, txn: &TxnState, sync: bool) -> StorageResult<Lsn> {
        for &pid in &txn.dirty {
            let image: Arc<Page> = match self.map.get(&pid) {
                Some(&slot) => Arc::clone(&self.slots[slot].page),
                None => Arc::new(self.pager.read_page(pid)?),
            };
            self.wal
                .append_image(WalRecordKind::PageImage, txn.id, pid, image.bytes())?;
        }
        let lsn = self.wal.append_commit(
            txn.id,
            self.pager.page_count(),
            self.pager.catalog_root().0,
            self.pager.user_meta().0,
        )?;
        if sync {
            self.wal.sync()?;
        }
        Ok(lsn)
    }

    /// Restore a transaction's before-images in memory and roll the header
    /// snapshot back. Works even after a simulated crash (no disk writes).
    fn rollback_with(&mut self, txn: TxnState) -> StorageResult<()> {
        let mut deferred_installs: Vec<Frame> = Vec::new();
        for (pid, undo) in &txn.undo {
            let stolen = txn.stolen.contains(pid);
            match &undo.image {
                Some(image) => {
                    if let Some(&slot) = self.map.get(pid) {
                        let frame = &mut self.slots[slot];
                        frame.page = Arc::clone(image);
                        // Stolen pages left uncommitted content on disk; the
                        // restored image must eventually be written back.
                        frame.dirty = undo.prior_dirty || stolen;
                        frame.rec_lsn = 0;
                    } else if stolen {
                        // Evicted after the steal: the disk copy is
                        // uncommitted garbage; reinstall the before-image as
                        // a dirty frame.
                        deferred_installs.push(Frame {
                            pid: *pid,
                            page: Arc::clone(image),
                            dirty: true,
                            pins: 0,
                            referenced: true,
                            rec_lsn: 0,
                        });
                    }
                }
                None => {
                    // Allocated inside the transaction: forget the frame.
                    // The slot is orphaned under the NULL sentinel and gets
                    // recycled by the clock sweep.
                    if let Some(slot) = self.map.remove(pid) {
                        let frame = &mut self.slots[slot];
                        debug_assert_eq!(frame.pins, 0, "rolling back a pinned allocation");
                        frame.pid = PageId::NULL;
                        frame.page = Arc::new(Page::new());
                        frame.dirty = false;
                        frame.referenced = false;
                        frame.rec_lsn = 0;
                    }
                }
            }
        }
        // Install outside the undo iteration so evictions triggered by
        // capacity pressure see consistent state.
        let mut result = Ok(());
        for frame in deferred_installs {
            if let Err(e) = self.install(frame) {
                result = Err(e);
            }
        }
        self.pager
            .restore_header(txn.header.0, txn.header.1, txn.header.2, txn.header.3);
        result
    }

    /// Write every dirty page and the header to the data file, fsync, then
    /// truncate the log.
    fn checkpoint(&mut self) -> StorageResult<()> {
        if self.sim_crashed() {
            return Err(wal::simulated_crash());
        }
        self.wal.sync()?;
        for slot in 0..self.slots.len() {
            if !self.slots[slot].dirty {
                continue;
            }
            self.data_write_gate()?;
            let Inner {
                pager,
                slots,
                stats,
                ..
            } = &mut *self;
            let frame = &mut slots[slot];
            pager.write_page(frame.pid, &frame.page)?;
            frame.dirty = false;
            stats.flushes += 1;
        }
        self.pager.set_checkpoint_lsn(self.wal.end_lsn());
        self.pager.sync()?;
        if self.checkpoint_truncate_crash {
            self.crashed = true;
            return Err(wal::simulated_crash());
        }
        // Truncate even when logging is currently disabled: a stale log
        // from an earlier logged phase must never replay over the newer
        // checkpointed data.
        self.wal.reset()?;
        Ok(())
    }

    /// Ensure `pid` is resident, returning its slot index.
    fn load(&mut self, pid: PageId) -> StorageResult<usize> {
        if let Some(&slot) = self.map.get(&pid) {
            self.stats.hits += 1;
            self.slots[slot].referenced = true;
            return Ok(slot);
        }
        self.stats.misses += 1;
        let page = self.pager.read_page(pid)?;
        let frame = Frame {
            pid,
            page: Arc::new(page),
            dirty: false,
            pins: 0,
            referenced: true,
            rec_lsn: 0,
        };
        self.install(frame)
    }

    /// Free up a slot for a new frame: `None` while below capacity (append),
    /// otherwise the index of a just-evicted victim.
    fn reserve_slot(&mut self) -> StorageResult<Option<usize>> {
        if self.slots.len() < self.capacity {
            return Ok(None);
        }
        let victim = self.find_victim()?;
        self.evict_slot(victim)?;
        Ok(Some(victim))
    }

    /// Put a frame into a reserved slot (or append) and index it.
    fn place(&mut self, frame: Frame, slot: Option<usize>) -> usize {
        let pid = frame.pid;
        let slot = match slot {
            Some(i) => {
                self.slots[i] = frame;
                i
            }
            None => {
                self.slots.push(frame);
                self.slots.len() - 1
            }
        };
        self.map.insert(pid, slot);
        slot
    }

    /// Place a frame into the pool, evicting if at capacity.
    fn install(&mut self, frame: Frame) -> StorageResult<usize> {
        let slot = self.reserve_slot()?;
        Ok(self.place(frame, slot))
    }

    /// Clock sweep: clear reference bits until an unpinned, unreferenced
    /// frame comes up. Two full sweeps without a victim means every frame is
    /// pinned — a caller bug surfaced as an error rather than unbounded
    /// growth.
    fn find_victim(&mut self) -> StorageResult<usize> {
        let len = self.slots.len();
        debug_assert!(len > 0);
        for _ in 0..2 * len {
            let i = self.hand;
            self.hand = (self.hand + 1) % len;
            let frame = &mut self.slots[i];
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            return Ok(i);
        }
        Err(StorageError::PoolExhausted(self.capacity))
    }

    /// Write back (when dirty, WAL-first) and forget the frame in `slot`.
    /// The slot itself is left for the caller to refill.
    fn evict_slot(&mut self, slot: usize) -> StorageResult<()> {
        let (pid, dirty) = {
            let frame = &self.slots[slot];
            debug_assert_eq!(frame.pins, 0, "evicting a pinned frame");
            (frame.pid, frame.dirty)
        };
        if dirty && !pid.is_null() {
            // Steal: an uncommitted dirty page is about to reach the data
            // file. Record the steal whether or not logging is on — runtime
            // rollback needs it to know the disk copy must be overwritten —
            // and, when logging, make the before-image durable first so
            // crash recovery can undo it too.
            let mut must_sync = false;
            if let Some(txn) = &mut self.txn {
                if txn.dirty.contains(&pid) && !txn.stolen.contains(&pid) {
                    if self.logging {
                        let before: Arc<Page> = match txn.undo.get(&pid) {
                            Some(UndoEntry {
                                image: Some(img), ..
                            }) => Arc::clone(img),
                            _ => Arc::new(Page::new()),
                        };
                        self.wal
                            .append_image(WalRecordKind::Undo, txn.id, pid, before.bytes())?;
                        must_sync = true;
                    }
                    txn.stolen.insert(pid);
                }
            }
            if self.logging {
                // WAL-before-data: the log must cover this page's latest
                // commit record before its content reaches the data file.
                if must_sync || self.slots[slot].rec_lsn > self.wal.durable_lsn() {
                    self.wal.sync()?;
                }
            }
            self.data_write_gate()?;
            let Inner {
                pager,
                slots,
                stats,
                ..
            } = &mut *self;
            pager.write_page(pid, &slots[slot].page)?;
            stats.writebacks += 1;
        }
        self.stats.evictions += 1;
        if self.map.get(&pid) == Some(&slot) {
            self.map.remove(&pid);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    fn pool(capacity: usize) -> (tempfile::TempDir, BufferPool) {
        let dir = tempdir().unwrap();
        let pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        (dir, BufferPool::with_capacity(pager, capacity).unwrap())
    }

    #[test]
    fn write_then_read_through_cache() {
        let (_dir, pool) = pool(16);
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 99)).unwrap();
        let v = pool.with_page(pid, |p| p.read_u64(0)).unwrap();
        assert_eq!(v, 99);
        let stats = pool.stats();
        assert!(stats.hits >= 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (_dir, pool) = pool(8);
        let mut pids = Vec::new();
        for i in 0..32u64 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, i)).unwrap();
            pids.push(pid);
        }
        // With capacity 8, earlier pages were evicted; reading them again must
        // still return the written values (they were flushed on eviction).
        for (i, pid) in pids.iter().enumerate() {
            let v = pool.with_page(*pid, |p| p.read_u64(0)).unwrap();
            assert_eq!(v, i as u64);
        }
        assert!(pool.stats().evictions > 0);
        assert!(pool.stats().writebacks > 0);
        assert!(pool.stats().misses > 0);
    }

    #[test]
    fn capacity_is_respected() {
        let (_dir, pool) = pool(8);
        for _ in 0..100 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
            assert!(
                pool.resident_pages() <= 8,
                "pool exceeded its frame capacity"
            );
        }
        assert_eq!(pool.resident_pages(), 8);
        assert!(pool.stats().evictions >= 92);
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let (_dir, pool) = pool(8);
        let first = pool.allocate_page().unwrap();
        pool.with_page_mut(first, |p| p.write_u64(0, 42)).unwrap();
        let pin = pool.pin(first).unwrap();
        assert_eq!(pin.read_u64(0), 42);
        // Push far more pages than capacity through the pool; the pinned
        // frame must survive every sweep.
        for i in 0..64u64 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, i)).unwrap();
        }
        assert!(pool.resident_pages() <= 8);
        assert_eq!(pool.pinned_frames(), 1);
        // The pinned guard still reads its snapshot without a pool access.
        assert_eq!(pin.read_u64(0), 42);
        drop(pin);
        assert_eq!(pool.pinned_frames(), 0);
        // Now the frame can be evicted like any other.
        for i in 0..32u64 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, i)).unwrap();
        }
        assert!(pool.resident_pages() <= 8);
    }

    #[test]
    fn all_pinned_pool_reports_exhaustion() {
        let (_dir, pool) = pool(8);
        let mut pins = Vec::new();
        for _ in 0..8 {
            let pid = pool.allocate_page().unwrap();
            pins.push(pool.pin(pid).unwrap());
        }
        // Ninth page cannot be installed anywhere — and the failed attempt
        // must not advance the file's page counter (no leaked pages).
        let before = pool.page_count();
        let err = pool.allocate_page();
        assert!(matches!(err, Err(StorageError::PoolExhausted(_))));
        assert_eq!(
            pool.page_count(),
            before,
            "failed allocation leaked a file page"
        );
        drop(pins);
        assert!(pool.allocate_page().is_ok());
    }

    #[test]
    fn pinned_snapshot_survives_concurrent_write() {
        let (_dir, pool) = pool(8);
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
        let pin = pool.pin(pid).unwrap();
        // Copy-on-write: the mutation goes to a fresh Arc, the pin keeps its
        // snapshot.
        pool.with_page_mut(pid, |p| p.write_u64(0, 2)).unwrap();
        assert_eq!(pin.read_u64(0), 1);
        drop(pin);
        assert_eq!(pool.with_page(pid, |p| p.read_u64(0)).unwrap(), 2);
    }

    #[test]
    fn flush_persists_across_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let pid;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::new(pager).unwrap();
            pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_bytes(0, b"persist me"))
                .unwrap();
            pool.set_catalog_root(pid);
            pool.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::new(pager).unwrap();
        assert_eq!(pool.catalog_root(), pid);
        let bytes = pool
            .with_page(pid, |p| p.read_bytes(0, 10).to_vec())
            .unwrap();
        assert_eq!(&bytes, b"persist me");
    }

    #[test]
    fn clear_cache_forces_misses() {
        let (_dir, pool) = pool(16);
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 5)).unwrap();
        pool.clear_cache().unwrap();
        pool.reset_stats();
        let _ = pool.with_page(pid, |p| p.read_u64(0)).unwrap();
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().hits, 0);
    }

    #[test]
    fn hit_ratio_computation() {
        let s = BufferStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(s.page_reads(), 4);
        assert_eq!(BufferStats::default().hit_ratio(), 0.0);
    }

    // ------------------------------------------------------------------
    // Transaction semantics
    // ------------------------------------------------------------------

    #[test]
    fn committed_txn_survives_crash_without_checkpoint() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let pid;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::with_capacity(pager, 16).unwrap();
            pool.begin_txn().unwrap();
            pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, 4242)).unwrap();
            pool.commit_txn(true).unwrap();
            // Crash: no flush — the dirty page dies with the pool.
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 16).unwrap();
        let report = pool.recovery_report().expect("reopen must report recovery");
        assert_eq!(report.committed_txns, 1);
        assert!(report.pages_redone >= 1);
        assert_eq!(pool.with_page(pid, |p| p.read_u64(0)).unwrap(), 4242);
    }

    #[test]
    fn uncommitted_txn_vanishes_on_crash() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let committed;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::with_capacity(pager, 16).unwrap();
            pool.begin_txn().unwrap();
            committed = pool.allocate_page().unwrap();
            pool.with_page_mut(committed, |p| p.write_u64(0, 1))
                .unwrap();
            pool.commit_txn(true).unwrap();
            // Second transaction never commits.
            pool.begin_txn().unwrap();
            pool.with_page_mut(committed, |p| p.write_u64(0, 999))
                .unwrap();
            let extra = pool.allocate_page().unwrap();
            pool.with_page_mut(extra, |p| p.write_u64(0, 7)).unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 16).unwrap();
        assert_eq!(pool.with_page(committed, |p| p.read_u64(0)).unwrap(), 1);
        // The loser's allocation never made it into the page count.
        assert_eq!(pool.page_count(), committed.0 + 1);
    }

    #[test]
    fn rollback_restores_pages_and_header() {
        let (_dir, pool) = pool(16);
        pool.begin_txn().unwrap();
        let base = pool.allocate_page().unwrap();
        pool.with_page_mut(base, |p| p.write_u64(0, 10)).unwrap();
        pool.commit_txn(false).unwrap();
        let count_before = pool.page_count();

        pool.begin_txn().unwrap();
        pool.with_page_mut(base, |p| p.write_u64(0, 20)).unwrap();
        let fresh = pool.allocate_page().unwrap();
        pool.with_page_mut(fresh, |p| p.write_u64(0, 30)).unwrap();
        pool.set_catalog_root(fresh);
        pool.rollback_txn().unwrap();

        assert_eq!(pool.with_page(base, |p| p.read_u64(0)).unwrap(), 10);
        assert_eq!(
            pool.page_count(),
            count_before,
            "rollback must undo allocations"
        );
        assert!(
            pool.catalog_root().is_null(),
            "rollback must restore the header"
        );
    }

    #[test]
    fn steal_then_commit_persists() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let mut pids = Vec::new();
        {
            let pager = Pager::create(&path).unwrap();
            // Tiny pool: the transaction dirties far more pages than fit, so
            // most get stolen (written before commit).
            let pool = BufferPool::with_capacity(pager, 8).unwrap();
            pool.begin_txn().unwrap();
            for i in 0..64u64 {
                let pid = pool.allocate_page().unwrap();
                pool.with_page_mut(pid, |p| p.write_u64(0, i * 3)).unwrap();
                pids.push(pid);
            }
            pool.commit_txn(true).unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 8).unwrap();
        for (i, pid) in pids.iter().enumerate() {
            assert_eq!(
                pool.with_page(*pid, |p| p.read_u64(0)).unwrap(),
                i as u64 * 3
            );
        }
    }

    #[test]
    fn steal_then_crash_rolls_back() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let base;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::with_capacity(pager, 8).unwrap();
            pool.begin_txn().unwrap();
            base = pool.allocate_page().unwrap();
            pool.with_page_mut(base, |p| p.write_u64(0, 123)).unwrap();
            pool.commit_txn(true).unwrap();
            pool.flush().unwrap();
            // Loser transaction overwrites the committed page AND dirties
            // enough pages to force the overwrite onto disk (steal).
            pool.begin_txn().unwrap();
            pool.with_page_mut(base, |p| p.write_u64(0, 666)).unwrap();
            for i in 0..32u64 {
                let pid = pool.allocate_page().unwrap();
                pool.with_page_mut(pid, |p| p.write_u64(0, i)).unwrap();
            }
            assert!(pool.stats().writebacks > 0, "steal must have happened");
            // Crash without commit.
        }
        // The data file now contains uncommitted content; recovery must undo
        // it from the logged before-image.
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 8).unwrap();
        let report = pool.recovery_report().unwrap();
        assert!(report.loser_txns >= 1);
        assert!(report.pages_undone >= 1);
        assert_eq!(pool.with_page(base, |p| p.read_u64(0)).unwrap(), 123);
    }

    #[test]
    fn runtime_rollback_after_steal_restores_memory() {
        let (_dir, pool) = pool(8);
        pool.begin_txn().unwrap();
        let base = pool.allocate_page().unwrap();
        pool.with_page_mut(base, |p| p.write_u64(0, 5)).unwrap();
        pool.commit_txn(false).unwrap();
        pool.begin_txn().unwrap();
        pool.with_page_mut(base, |p| p.write_u64(0, 50)).unwrap();
        // Force the modified page out of the pool (steal).
        for _ in 0..32 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
        }
        pool.rollback_txn().unwrap();
        assert_eq!(pool.with_page(base, |p| p.read_u64(0)).unwrap(), 5);
        // And the restored content reaches disk at the next checkpoint.
        pool.flush().unwrap();
        assert_eq!(pool.with_page(base, |p| p.read_u64(0)).unwrap(), 5);
    }

    #[test]
    fn double_begin_and_stray_commit_error() {
        let (_dir, pool) = pool(8);
        pool.begin_txn().unwrap();
        assert!(matches!(
            pool.begin_txn(),
            Err(StorageError::TransactionActive)
        ));
        pool.commit_txn(false).unwrap();
        assert!(matches!(
            pool.commit_txn(false),
            Err(StorageError::NoActiveTransaction)
        ));
        assert!(matches!(
            pool.rollback_txn(),
            Err(StorageError::NoActiveTransaction)
        ));
    }

    #[test]
    fn flush_during_txn_is_rejected() {
        let (_dir, pool) = pool(8);
        pool.begin_txn().unwrap();
        assert!(matches!(pool.flush(), Err(StorageError::TransactionActive)));
        pool.rollback_txn().unwrap();
        pool.flush().unwrap();
    }

    #[test]
    fn checkpoint_truncates_the_log() {
        let (_dir, pool) = pool(16);
        pool.begin_txn().unwrap();
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 9)).unwrap();
        pool.commit_txn(true).unwrap();
        assert!(pool.stats().wal_bytes > 0);
        pool.flush().unwrap();
        pool.reset_stats();
        // A fresh commit after the checkpoint starts a new log generation.
        pool.begin_txn().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 10)).unwrap();
        pool.commit_txn(true).unwrap();
        let stats = pool.stats();
        assert!(stats.wal_appends >= 2); // image + commit
        assert_eq!(stats.commits, 1);
    }

    #[test]
    fn mutation_stamps_the_page_rec_lsn() {
        let (_dir, pool) = pool(16);
        pool.begin_txn().unwrap();
        let pid = pool.allocate_page().unwrap();
        assert_eq!(
            pool.with_page(pid, |p| p.lsn()).unwrap(),
            0,
            "fresh page: no mutation yet"
        );
        pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
        let lsn0 = pool.with_page(pid, |p| p.lsn()).unwrap();
        assert!(lsn0 > 0, "mutation must stamp a recovery LSN");
        pool.commit_txn(true).unwrap();
        // The next mutation happens at a later log-tail position.
        pool.begin_txn().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 2)).unwrap();
        let lsn1 = pool.with_page(pid, |p| p.lsn()).unwrap();
        assert!(lsn1 > lsn0, "recLSNs are monotone: {lsn1} vs {lsn0}");
        pool.commit_txn(true).unwrap();
    }

    #[test]
    fn unlogged_rollback_restores_stolen_pages() {
        let (_dir, pool) = pool(8);
        pool.set_logging(false).unwrap();
        pool.begin_txn().unwrap();
        let base = pool.allocate_page().unwrap();
        pool.with_page_mut(base, |p| p.write_u64(0, 5)).unwrap();
        pool.commit_txn(false).unwrap();
        pool.begin_txn().unwrap();
        pool.with_page_mut(base, |p| p.write_u64(0, 500)).unwrap();
        // Push the uncommitted page out of the pool (unlogged steal).
        for _ in 0..32 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
        }
        assert!(pool.stats().writebacks > 0);
        pool.rollback_txn().unwrap();
        assert_eq!(
            pool.with_page(base, |p| p.read_u64(0)).unwrap(),
            5,
            "rollback must restore a page stolen in unlogged mode"
        );
        pool.set_logging(true).unwrap();
    }

    #[test]
    fn checkpoint_truncates_a_stale_log_in_unlogged_mode() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let pid;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::with_capacity(pager, 16).unwrap();
            // Logged commit leaves an after-image of value 1 in the WAL.
            pool.begin_txn().unwrap();
            pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
            pool.commit_txn(true).unwrap();
            // Unlogged phase overwrites it and checkpoints; the stale log
            // must be truncated so it can never replay over value 2.
            pool.set_logging(false).unwrap();
            pool.begin_txn().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, 2)).unwrap();
            pool.commit_txn(false).unwrap();
            pool.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 16).unwrap();
        assert!(!pool.recovery_report().unwrap().did_work());
        assert_eq!(pool.with_page(pid, |p| p.read_u64(0)).unwrap(), 2);
    }

    #[test]
    fn unlogged_mode_skips_the_wal() {
        let (_dir, pool) = pool(16);
        pool.set_logging(false).unwrap();
        pool.begin_txn().unwrap();
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 1)).unwrap();
        pool.commit_txn(true).unwrap();
        assert_eq!(pool.stats().wal_appends, 0);
        // Rollback still works in memory without the log.
        pool.begin_txn().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 2)).unwrap();
        pool.rollback_txn().unwrap();
        assert_eq!(pool.with_page(pid, |p| p.read_u64(0)).unwrap(), 1);
        pool.set_logging(true).unwrap();
    }

    #[test]
    fn injected_wal_crash_fails_commit_and_rolls_back() {
        let (_dir, pool) = pool(16);
        pool.begin_txn().unwrap();
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 77)).unwrap();
        pool.commit_txn(true).unwrap();
        pool.begin_txn().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 88)).unwrap();
        pool.inject_crash(CrashPoint::WalAppend(0));
        assert!(pool.commit_txn(true).is_err());
        // The failed commit rolled back in memory.
        assert_eq!(pool.with_page(pid, |p| p.read_u64(0)).unwrap(), 77);
        // The pool is dead for writes from here on.
        assert!(pool.flush().is_err());
    }
}
