//! Buffer pool: an LRU page cache between the pager and the access methods.
//!
//! The paper argues that "simulation trees are huge, yet the portions
//! retrieved by a single query are relatively small", so queries must not
//! load whole trees into memory. The buffer pool is the mechanism that makes
//! that work: access methods ask for pages through closures and only a fixed
//! number of hot pages stay resident; everything else is written back and
//! evicted in LRU order.
//!
//! Access is closure-based (`with_page` / `with_page_mut`) rather than
//! guard-based to keep lifetimes simple; all state sits behind a single
//! `parking_lot::Mutex`, which is sufficient for the engine's
//! one-writer-at-a-time usage while still being `Send + Sync`.

use crate::error::StorageResult;
use crate::page::{Page, PageId};
use crate::pager::Pager;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Statistics counters exposed for the repository-scale experiment (E9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Number of page requests satisfied from the cache.
    pub hits: u64,
    /// Number of page requests that had to read from disk.
    pub misses: u64,
    /// Number of dirty pages written back due to eviction.
    pub evictions: u64,
    /// Number of pages flushed by explicit flush calls.
    pub flushes: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; zero when no accesses happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page: Page,
    dirty: bool,
    last_used: u64,
}

struct Inner {
    pager: Pager,
    frames: HashMap<PageId, Frame>,
    capacity: usize,
    clock: u64,
    stats: BufferStats,
}

/// An LRU buffer pool wrapping a [`Pager`].
pub struct BufferPool {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("BufferPool")
            .field("capacity", &inner.capacity)
            .field("resident", &inner.frames.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl BufferPool {
    /// Default number of resident pages (~8 MiB with 8 KiB pages).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Wrap a pager with the default capacity.
    pub fn new(pager: Pager) -> Self {
        Self::with_capacity(pager, Self::DEFAULT_CAPACITY)
    }

    /// Wrap a pager with an explicit page capacity (minimum 8).
    pub fn with_capacity(pager: Pager, capacity: usize) -> Self {
        BufferPool {
            inner: Mutex::new(Inner {
                pager,
                frames: HashMap::new(),
                capacity: capacity.max(8),
                clock: 0,
                stats: BufferStats::default(),
            }),
        }
    }

    /// Allocate a fresh page (resident immediately, marked dirty).
    pub fn allocate_page(&self) -> StorageResult<PageId> {
        let mut inner = self.inner.lock();
        let pid = inner.pager.allocate_page()?;
        inner.clock += 1;
        let clock = inner.clock;
        inner.frames.insert(pid, Frame { page: Page::new(), dirty: true, last_used: clock });
        inner.evict_if_needed()?;
        Ok(pid)
    }

    /// Run `f` with read access to the page.
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        inner.load(pid)?;
        inner.clock += 1;
        let clock = inner.clock;
        let frame = inner.frames.get_mut(&pid).expect("frame was just loaded");
        frame.last_used = clock;
        let result = f(&frame.page);
        inner.evict_if_needed()?;
        Ok(result)
    }

    /// Run `f` with write access to the page; the page is marked dirty.
    pub fn with_page_mut<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        inner.load(pid)?;
        inner.clock += 1;
        let clock = inner.clock;
        let frame = inner.frames.get_mut(&pid).expect("frame was just loaded");
        frame.last_used = clock;
        frame.dirty = true;
        let result = f(&mut frame.page);
        inner.evict_if_needed()?;
        Ok(result)
    }

    /// The catalog root recorded in the file header.
    pub fn catalog_root(&self) -> PageId {
        self.inner.lock().pager.catalog_root()
    }

    /// Record the catalog root in the file header (persisted on flush).
    pub fn set_catalog_root(&self, pid: PageId) {
        self.inner.lock().pager.set_catalog_root(pid);
    }

    /// Number of pages in the underlying file.
    pub fn page_count(&self) -> u64 {
        self.inner.lock().pager.page_count()
    }

    /// Copy of the current statistics counters.
    pub fn stats(&self) -> BufferStats {
        self.inner.lock().stats
    }

    /// Reset statistics counters (useful between benchmark phases).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = BufferStats::default();
    }

    /// Write all dirty pages and the header to disk and fsync.
    pub fn flush(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let dirty: Vec<PageId> =
            inner.frames.iter().filter(|(_, f)| f.dirty).map(|(pid, _)| *pid).collect();
        for pid in dirty {
            let page = inner.frames[&pid].page.clone();
            inner.pager.write_page(pid, &page)?;
            inner.frames.get_mut(&pid).expect("present").dirty = false;
            inner.stats.flushes += 1;
        }
        inner.pager.sync()?;
        Ok(())
    }

    /// Drop every clean resident page (dirty pages are flushed first). Used
    /// by benchmarks to measure cold-cache behaviour.
    pub fn clear_cache(&self) -> StorageResult<()> {
        self.flush()?;
        let mut inner = self.inner.lock();
        inner.frames.clear();
        Ok(())
    }
}

impl Inner {
    fn load(&mut self, pid: PageId) -> StorageResult<()> {
        if self.frames.contains_key(&pid) {
            self.stats.hits += 1;
            return Ok(());
        }
        self.stats.misses += 1;
        let page = self.pager.read_page(pid)?;
        self.clock += 1;
        let clock = self.clock;
        self.frames.insert(pid, Frame { page, dirty: false, last_used: clock });
        Ok(())
    }

    fn evict_if_needed(&mut self) -> StorageResult<()> {
        while self.frames.len() > self.capacity {
            // Find the least recently used frame.
            let victim = self
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(pid, _)| *pid)
                .expect("frames is non-empty");
            let frame = self.frames.remove(&victim).expect("victim exists");
            if frame.dirty {
                self.pager.write_page(victim, &frame.page)?;
                self.stats.evictions += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    fn pool(capacity: usize) -> (tempfile::TempDir, BufferPool) {
        let dir = tempdir().unwrap();
        let pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        (dir, BufferPool::with_capacity(pager, capacity))
    }

    #[test]
    fn write_then_read_through_cache() {
        let (_dir, pool) = pool(16);
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 99)).unwrap();
        let v = pool.with_page(pid, |p| p.read_u64(0)).unwrap();
        assert_eq!(v, 99);
        let stats = pool.stats();
        assert!(stats.hits >= 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (_dir, pool) = pool(8);
        let mut pids = Vec::new();
        for i in 0..32u64 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_u64(0, i)).unwrap();
            pids.push(pid);
        }
        // With capacity 8, earlier pages were evicted; reading them again must
        // still return the written values (they were flushed on eviction).
        for (i, pid) in pids.iter().enumerate() {
            let v = pool.with_page(*pid, |p| p.read_u64(0)).unwrap();
            assert_eq!(v, i as u64);
        }
        assert!(pool.stats().evictions > 0);
        assert!(pool.stats().misses > 0);
    }

    #[test]
    fn flush_persists_across_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let pid;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::new(pager);
            pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| p.write_bytes(0, b"persist me")).unwrap();
            pool.set_catalog_root(pid);
            pool.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::new(pager);
        assert_eq!(pool.catalog_root(), pid);
        let bytes = pool.with_page(pid, |p| p.read_bytes(0, 10).to_vec()).unwrap();
        assert_eq!(&bytes, b"persist me");
    }

    #[test]
    fn clear_cache_forces_misses() {
        let (_dir, pool) = pool(16);
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(0, 5)).unwrap();
        pool.clear_cache().unwrap();
        pool.reset_stats();
        let _ = pool.with_page(pid, |p| p.read_u64(0)).unwrap();
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().hits, 0);
    }

    #[test]
    fn hit_ratio_computation() {
        let s = BufferStats { hits: 3, misses: 1, ..Default::default() };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(BufferStats::default().hit_ratio(), 0.0);
    }
}
