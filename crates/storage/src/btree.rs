//! Disk-resident B+tree over order-preserving byte keys.
//!
//! The tree stores `(key: Vec<u8>, value: u64)` pairs. Keys are produced by
//! [`crate::value::Value::encode_key`] (possibly with a record-id suffix for
//! non-unique indexes), values are packed [`crate::heap::RecordId`]s or
//! application integers. Leaves are chained left-to-right so range scans —
//! the access path behind Crimson's "all nodes whose cumulative time exceeds
//! t" sampling query — are sequential leaf walks.
//!
//! Duplicate keys are permitted; uniqueness is enforced one level up (in
//! [`crate::db::Database`]) where the semantics of the index are known.
//! Deletion removes entries without rebalancing: the Crimson workload is
//! load-once/query-many, so space reclamation is not worth the complexity
//! (documented trade-off, see DESIGN.md).

use crate::buffer::{BufferPool, PageSource, PinnedPage};
use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};

const TYPE_LEAF: u8 = 0;
const TYPE_INTERNAL: u8 = 1;

// Serialized layout:
//   0       node type (u8)
//   1..3    key count (u16)
//   3..11   leaf: next leaf page id / internal: leftmost child page id
//   11..    entries
// Leaf entry:      key_len u16 | key bytes | value u64
// Internal entry:  key_len u16 | key bytes | child u64
const NODE_HEADER: usize = 11;

/// Maximum key length accepted by the tree. Chosen so that even pathological
/// keys leave room for a handful of entries per node.
pub const MAX_KEY_SIZE: usize = 1024;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<Vec<u8>>,
        values: Vec<u64>,
        next: PageId,
    },
    Internal {
        keys: Vec<Vec<u8>>,
        children: Vec<PageId>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } => {
                NODE_HEADER + keys.iter().map(|k| 2 + k.len() + 8).sum::<usize>()
            }
            Node::Internal { keys, .. } => {
                NODE_HEADER + keys.iter().map(|k| 2 + k.len() + 8).sum::<usize>()
            }
        }
    }

    fn key_count(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Internal { keys, .. } => keys.len(),
        }
    }

    fn write_to(&self, page: &mut Page) {
        match self {
            Node::Leaf { keys, values, next } => {
                page.bytes_mut()[0] = TYPE_LEAF;
                page.write_u16(1, keys.len() as u16);
                page.write_u64(3, next.0);
                let mut off = NODE_HEADER;
                for (k, v) in keys.iter().zip(values) {
                    page.write_u16(off, k.len() as u16);
                    off += 2;
                    page.write_bytes(off, k);
                    off += k.len();
                    page.write_u64(off, *v);
                    off += 8;
                }
            }
            Node::Internal { keys, children } => {
                page.bytes_mut()[0] = TYPE_INTERNAL;
                page.write_u16(1, keys.len() as u16);
                page.write_u64(3, children[0].0);
                let mut off = NODE_HEADER;
                for (k, c) in keys.iter().zip(children.iter().skip(1)) {
                    page.write_u16(off, k.len() as u16);
                    off += 2;
                    page.write_bytes(off, k);
                    off += k.len();
                    page.write_u64(off, c.0);
                    off += 8;
                }
            }
        }
    }

    fn read_from(page: &Page) -> StorageResult<Node> {
        let node_type = page.bytes()[0];
        let count = page.read_u16(1) as usize;
        let mut off = NODE_HEADER;
        match node_type {
            TYPE_LEAF => {
                let next = PageId(page.read_u64(3));
                let mut keys = Vec::with_capacity(count);
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    let klen = page.read_u16(off) as usize;
                    off += 2;
                    if off + klen + 8 > PAGE_SIZE {
                        return Err(StorageError::Corrupted("leaf entry overruns page".into()));
                    }
                    keys.push(page.read_bytes(off, klen).to_vec());
                    off += klen;
                    values.push(page.read_u64(off));
                    off += 8;
                }
                Ok(Node::Leaf { keys, values, next })
            }
            TYPE_INTERNAL => {
                let mut children = Vec::with_capacity(count + 1);
                children.push(PageId(page.read_u64(3)));
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    let klen = page.read_u16(off) as usize;
                    off += 2;
                    if off + klen + 8 > PAGE_SIZE {
                        return Err(StorageError::Corrupted(
                            "internal entry overruns page".into(),
                        ));
                    }
                    keys.push(page.read_bytes(off, klen).to_vec());
                    off += klen;
                    children.push(PageId(page.read_u64(off)));
                    off += 8;
                }
                Ok(Node::Internal { keys, children })
            }
            other => Err(StorageError::Corrupted(format!(
                "unknown B+tree node type {other}"
            ))),
        }
    }
}

/// A B+tree rooted at a page in the database file.
#[derive(Debug, Clone)]
pub struct BTree {
    root: PageId,
}

/// Result of inserting into a subtree: `Split` carries the separator key and
/// the page id of the newly created right sibling.
enum InsertResult {
    Done,
    Split(Vec<u8>, PageId),
}

impl BTree {
    /// Create an empty tree (a single empty leaf).
    pub fn create(pool: &BufferPool) -> StorageResult<Self> {
        let root = pool.allocate_page()?;
        let node = Node::Leaf {
            keys: Vec::new(),
            values: Vec::new(),
            next: PageId::NULL,
        };
        write_node(pool, root, &node)?;
        Ok(BTree { root })
    }

    /// Open an existing tree given its root page (as stored in the catalog).
    pub fn open(root: PageId) -> Self {
        BTree { root }
    }

    /// The current root page id (persist this in the catalog; it changes when
    /// the root splits).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Insert a key/value pair. Duplicate keys are allowed and kept in
    /// insertion order among equals.
    pub fn insert(&mut self, pool: &BufferPool, key: &[u8], value: u64) -> StorageResult<()> {
        if key.len() > MAX_KEY_SIZE {
            return Err(StorageError::RecordTooLarge(key.len()));
        }
        match self.insert_rec(pool, self.root, key, value)? {
            InsertResult::Done => Ok(()),
            InsertResult::Split(sep, right) => {
                // Grow the tree by one level.
                let new_root = pool.allocate_page()?;
                let node = Node::Internal {
                    keys: vec![sep],
                    children: vec![self.root, right],
                };
                write_node(pool, new_root, &node)?;
                self.root = new_root;
                Ok(())
            }
        }
    }

    fn insert_rec(
        &self,
        pool: &BufferPool,
        page: PageId,
        key: &[u8],
        value: u64,
    ) -> StorageResult<InsertResult> {
        match read_node(pool, page)? {
            Node::Leaf {
                mut keys,
                mut values,
                next,
            } => {
                // Upper bound keeps equal keys in insertion order.
                let pos = keys.partition_point(|k| k.as_slice() <= key);
                keys.insert(pos, key.to_vec());
                values.insert(pos, value);
                let node = Node::Leaf { keys, values, next };
                if node.serialized_size() <= PAGE_SIZE {
                    write_node(pool, page, &node)?;
                    return Ok(InsertResult::Done);
                }
                // Split: move the upper half to a new right sibling.
                let (keys, values, next) = match node {
                    Node::Leaf { keys, values, next } => (keys, values, next),
                    Node::Internal { .. } => unreachable!("node was constructed as a leaf"),
                };
                let mid = keys.len() / 2;
                let right_keys = keys[mid..].to_vec();
                let right_values = values[mid..].to_vec();
                let left_keys = keys[..mid].to_vec();
                let left_values = values[..mid].to_vec();
                let right_page = pool.allocate_page()?;
                let sep = right_keys[0].clone();
                let right_node = Node::Leaf {
                    keys: right_keys,
                    values: right_values,
                    next,
                };
                let left_node = Node::Leaf {
                    keys: left_keys,
                    values: left_values,
                    next: right_page,
                };
                write_node(pool, right_page, &right_node)?;
                write_node(pool, page, &left_node)?;
                Ok(InsertResult::Split(sep, right_page))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                let child = children[idx];
                match self.insert_rec(pool, child, key, value)? {
                    InsertResult::Done => Ok(InsertResult::Done),
                    InsertResult::Split(sep, right) => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        let node = Node::Internal { keys, children };
                        if node.serialized_size() <= PAGE_SIZE {
                            write_node(pool, page, &node)?;
                            return Ok(InsertResult::Done);
                        }
                        let (keys, children) = match node {
                            Node::Internal { keys, children } => (keys, children),
                            Node::Leaf { .. } => unreachable!("node was constructed as internal"),
                        };
                        let mid = keys.len() / 2;
                        let promote = keys[mid].clone();
                        let right_keys = keys[mid + 1..].to_vec();
                        let right_children = children[mid + 1..].to_vec();
                        let left_keys = keys[..mid].to_vec();
                        let left_children = children[..mid + 1].to_vec();
                        let right_page = pool.allocate_page()?;
                        write_node(
                            pool,
                            right_page,
                            &Node::Internal {
                                keys: right_keys,
                                children: right_children,
                            },
                        )?;
                        write_node(
                            pool,
                            page,
                            &Node::Internal {
                                keys: left_keys,
                                children: left_children,
                            },
                        )?;
                        Ok(InsertResult::Split(promote, right_page))
                    }
                }
            }
        }
    }

    /// Look up the first value stored under exactly `key`.
    ///
    /// The descent and the leaf probe both read entries in place through the
    /// page source — no node is materialized and no key bytes are copied.
    /// Generic over [`PageSource`], so the same descent serves the writer's
    /// current view and concurrent snapshot readers.
    pub fn get<S: PageSource>(&self, pool: S, key: &[u8]) -> StorageResult<Option<u64>> {
        let leaf = self.descend_in_place(pool, key, false)?;
        pool.with_page(leaf, |p| {
            let count = p.read_u16(1) as usize;
            let mut off = NODE_HEADER;
            for _ in 0..count {
                let klen = p.read_u16(off) as usize;
                off += 2;
                if off + klen + 8 > PAGE_SIZE {
                    return Err(StorageError::Corrupted("leaf entry overruns page".into()));
                }
                let entry_key = p.read_bytes(off, klen);
                if entry_key == key {
                    return Ok(Some(p.read_u64(off + klen)));
                }
                if entry_key > key {
                    return Ok(None);
                }
                off += klen + 8;
            }
            Ok(None)
        })?
    }

    /// Collect every value stored under exactly `key`.
    pub fn get_all<S: PageSource>(&self, pool: S, key: &[u8]) -> StorageResult<Vec<u64>> {
        let mut out = Vec::new();
        let upper = {
            let mut k = key.to_vec();
            k.push(0x00);
            k
        };
        // Equal keys are contiguous, so a bounded range scan collects them.
        for item in self.range(pool, Some(key), Some(&upper))? {
            let (k, v) = item?;
            if k == key {
                out.push(v);
            }
        }
        Ok(out)
    }

    /// `true` if at least one entry has exactly `key`.
    pub fn contains<S: PageSource>(&self, pool: S, key: &[u8]) -> StorageResult<bool> {
        Ok(self.get(pool, key)?.is_some())
    }

    /// Remove *one* entry matching `key` (and `value`, when given). Returns
    /// `true` if an entry was removed. Nodes are not rebalanced.
    pub fn delete(&self, pool: &BufferPool, key: &[u8], value: Option<u64>) -> StorageResult<bool> {
        // Walk to the leaf, tracking the path (root never shrinks here).
        let mut page = self.root;
        loop {
            let node = read_node(pool, page)?;
            match node {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    page = children[idx];
                }
                Node::Leaf {
                    mut keys,
                    mut values,
                    next,
                } => {
                    let start = keys.partition_point(|k| k.as_slice() < key);
                    let mut found = None;
                    for i in start..keys.len() {
                        if keys[i] != key {
                            break;
                        }
                        if value.is_none() || value == Some(values[i]) {
                            found = Some(i);
                            break;
                        }
                    }
                    let Some(i) = found else { return Ok(false) };
                    keys.remove(i);
                    values.remove(i);
                    write_node(pool, page, &Node::Leaf { keys, values, next })?;
                    return Ok(true);
                }
            }
        }
    }

    /// Visit the first entry with `low ≤ key < high`, calling `f` on the
    /// borrowed in-page key bytes and the value. `None` when the range is
    /// empty. The allocation-free point probe for covering-key indexes:
    /// nothing is pinned beyond the call and no key bytes are copied.
    pub fn first_in_range<S: PageSource, R>(
        &self,
        pool: S,
        low: &[u8],
        high: &[u8],
        f: impl FnOnce(&[u8], u64) -> R,
    ) -> StorageResult<Option<R>> {
        let mut page = self.descend_in_place(pool, low, true)?;
        let mut f = Some(f);
        loop {
            enum Step<R> {
                Found(Option<R>),
                Next(PageId),
            }
            let step = pool.with_page(page, |p| -> StorageResult<Step<R>> {
                if p.bytes()[0] != TYPE_LEAF {
                    return Err(StorageError::Corrupted(
                        "leaf chain contains an internal node".into(),
                    ));
                }
                let count = p.read_u16(1) as usize;
                let next = PageId(p.read_u64(3));
                let mut off = NODE_HEADER;
                for _ in 0..count {
                    let klen = p.read_u16(off) as usize;
                    off += 2;
                    if off + klen + 8 > PAGE_SIZE {
                        return Err(StorageError::Corrupted("leaf entry overruns page".into()));
                    }
                    let key = p.read_bytes(off, klen);
                    if key >= low {
                        if key >= high {
                            return Ok(Step::Found(None));
                        }
                        let value = p.read_u64(off + klen);
                        let f = f.take().expect("first_in_range visits at most one entry");
                        return Ok(Step::Found(Some(f(key, value))));
                    }
                    off += klen + 8;
                }
                if next.is_null() {
                    Ok(Step::Found(None))
                } else {
                    Ok(Step::Next(next))
                }
            })??;
            match step {
                Step::Found(result) => return Ok(result),
                Step::Next(next) => page = next,
            }
        }
    }

    /// Range scan over `low..high` (byte-wise, low inclusive, high exclusive).
    /// `None` bounds mean unbounded.
    ///
    /// The iterator pins one leaf frame at a time and decodes entries lazily
    /// from the pinned page: no leaf is ever materialized into a key vector,
    /// entries before `low` are compared in place without allocating, and
    /// the scan stops at the first key past `high` without touching the rest
    /// of the leaf chain.
    pub fn range<S: PageSource>(
        &self,
        pool: S,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
    ) -> StorageResult<RangeIter<S>> {
        let start_page = match low {
            // Lower-bound descent: when duplicates of `low` straddle a split,
            // the leftmost leaf that can contain `low` must be visited.
            Some(key) => self.descend_in_place(pool, key, true)?,
            None => self.leftmost_leaf(pool)?,
        };
        let cursor = LeafCursor::pin(pool, start_page)?;
        Ok(RangeIter {
            pool,
            cursor: Some(cursor),
            low: low.map(|k| k.to_vec()),
            high: high.map(|k| k.to_vec()),
            exhausted: false,
        })
    }

    /// Number of entries in the tree (full scan).
    pub fn len<S: PageSource>(&self, pool: S) -> StorageResult<usize> {
        let mut count = 0usize;
        for item in self.range(pool, None, None)? {
            item?;
            count += 1;
        }
        Ok(count)
    }

    /// `true` when the tree holds no entries.
    pub fn is_empty<S: PageSource>(&self, pool: S) -> StorageResult<bool> {
        Ok(self.len(pool)? == 0)
    }

    /// Height of the tree (1 = a single leaf). Used by the labeling ablation
    /// to report index depth.
    pub fn height<S: PageSource>(&self, pool: S) -> StorageResult<usize> {
        let mut h = 1usize;
        let mut page = self.root;
        loop {
            match read_node(pool, page)? {
                Node::Leaf { .. } => return Ok(h),
                Node::Internal { children, .. } => {
                    page = children[0];
                    h += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Bulk loading
    // ------------------------------------------------------------------

    /// Build a tree from a strictly ascending run of `(key, value)` entries,
    /// packing leaves bottom-up at the given fill factor. Equivalent to
    /// [`BTree::create`] followed by [`BTree::bulk_append`].
    pub fn bulk_build<K, I>(pool: &BufferPool, fill: f64, entries: I) -> StorageResult<Self>
    where
        K: AsRef<[u8]>,
        I: IntoIterator<Item = (K, u64)>,
    {
        let mut tree = BTree::create(pool)?;
        tree.bulk_append(pool, fill, entries)?;
        Ok(tree)
    }

    /// Append a sorted run of `(key, value)` entries bottom-up.
    ///
    /// Keys must be strictly ascending and sort after every key already in
    /// the tree; violations return [`StorageError::BulkOutOfOrder`] /
    /// [`StorageError::DuplicateKey`]. A violation at the *first* entry is
    /// detected before any page is written, but a mid-run violation aborts
    /// an append that has already rewritten pages — run inside a
    /// transaction (as every [`crate::db::Database`] bulk path does) so the
    /// error rolls the partial run back. Instead of one root-to-leaf
    /// descent and a whole-node rewrite per entry, the
    /// run is packed into fresh leaves at `fill` × the page's entry capacity
    /// and the internal levels are stitched together bottom-up; only the
    /// rightmost spine of the existing tree is rewritten, and every other
    /// page is dirtied exactly once, freshly packed. On an empty tree this
    /// is a full bulk build. Returns the number of entries appended.
    pub fn bulk_append<K, I>(
        &mut self,
        pool: &BufferPool,
        fill: f64,
        entries: I,
    ) -> StorageResult<usize>
    where
        K: AsRef<[u8]>,
        I: IntoIterator<Item = (K, u64)>,
    {
        let mut loader = BulkLoader::seed(pool, self.root)?;
        loader.set_fill(fill);
        for (key, value) in entries {
            loader.push(key.as_ref(), value)?;
        }
        let (root, pushed) = loader.finish()?;
        self.root = root;
        Ok(pushed)
    }

    /// The largest key currently in the tree (a rightmost-spine walk), or
    /// `None` when the tree is empty. Used to decide whether a sorted run
    /// can be bulk-appended.
    pub fn last_key<S: PageSource>(&self, pool: S) -> StorageResult<Option<Vec<u8>>> {
        let mut page = self.root;
        loop {
            enum Step {
                Leaf(Option<Vec<u8>>),
                Child(PageId),
            }
            let step = pool.with_page(page, |p| -> StorageResult<Step> {
                let count = p.read_u16(1) as usize;
                let is_leaf = p.bytes()[0] == TYPE_LEAF;
                let mut off = NODE_HEADER;
                let mut last_key = None;
                let mut last_child = PageId(p.read_u64(3));
                for _ in 0..count {
                    let klen = p.read_u16(off) as usize;
                    off += 2;
                    if off + klen + 8 > PAGE_SIZE {
                        return Err(StorageError::Corrupted("entry overruns page".into()));
                    }
                    if is_leaf {
                        last_key = Some(p.read_bytes(off, klen).to_vec());
                    } else {
                        last_child = PageId(p.read_u64(off + klen));
                    }
                    off += klen + 8;
                }
                if is_leaf {
                    Ok(Step::Leaf(last_key))
                } else {
                    Ok(Step::Child(last_child))
                }
            })??;
            match step {
                Step::Leaf(key) => return Ok(key),
                Step::Child(child) => page = child,
            }
        }
    }

    /// Walk from the root to the leaf responsible for `key`, scanning
    /// internal entries in place (no per-level key materialization).
    ///
    /// With `lower = false` the child chosen follows `partition_point(k <=
    /// key)` (point lookups); with `lower = true` it follows
    /// `partition_point(k < key)`, landing on the leftmost leaf that can
    /// contain `key` — required when duplicates of `key` straddle a split.
    fn descend_in_place<S: PageSource>(
        &self,
        pool: S,
        key: &[u8],
        lower: bool,
    ) -> StorageResult<PageId> {
        let mut page = self.root;
        loop {
            let next = pool.with_page(page, |p| -> StorageResult<Option<PageId>> {
                match p.bytes()[0] {
                    TYPE_LEAF => Ok(None),
                    TYPE_INTERNAL => {
                        let count = p.read_u16(1) as usize;
                        let mut child = PageId(p.read_u64(3));
                        let mut off = NODE_HEADER;
                        for _ in 0..count {
                            let klen = p.read_u16(off) as usize;
                            off += 2;
                            if off + klen + 8 > PAGE_SIZE {
                                return Err(StorageError::Corrupted(
                                    "internal entry overruns page".into(),
                                ));
                            }
                            let entry_key = p.read_bytes(off, klen);
                            let descend_right = if lower {
                                entry_key < key
                            } else {
                                entry_key <= key
                            };
                            if !descend_right {
                                break;
                            }
                            child = PageId(p.read_u64(off + klen));
                            off += klen + 8;
                        }
                        Ok(Some(child))
                    }
                    other => Err(StorageError::Corrupted(format!(
                        "unknown B+tree node type {other}"
                    ))),
                }
            })??;
            match next {
                None => return Ok(page),
                Some(child) => page = child,
            }
        }
    }

    fn leftmost_leaf<S: PageSource>(&self, pool: S) -> StorageResult<PageId> {
        let mut page = self.root;
        loop {
            match read_node(pool, page)? {
                Node::Leaf { .. } => return Ok(page),
                Node::Internal { children, .. } => page = children[0],
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bottom-up bulk loader
// ---------------------------------------------------------------------------

/// One level of the bottom-up bulk builder: the page currently being packed
/// at that height. Entries are accumulated in the exact on-page byte layout
/// (`key_len u16 | key | u64`), so finalizing a page is a single block copy.
struct BulkLevel {
    /// Page the pending entries will be written to (already allocated).
    page: PageId,
    /// Serialized entries, identical to the on-page layout.
    buf: Vec<u8>,
    /// Entries in `buf`.
    count: usize,
    /// Internal levels: the node's leftmost child (the header pointer).
    /// Unused (NULL) at the leaf level, where the header pointer chains
    /// siblings instead.
    leftmost: PageId,
}

/// Bottom-up builder packing a sorted run into B+tree pages.
///
/// `levels[0]` is the leaf level. Seeding loads the rightmost spine of the
/// existing tree into the level builders, so an append continues exactly
/// where the tree ends: the spine pages are rewritten in place (their left
/// siblings keep pointing at them) and every other page is written exactly
/// once, when it is full or at `finish`.
struct BulkLoader<'a> {
    pool: &'a BufferPool,
    levels: Vec<BulkLevel>,
    /// Per-page entry-byte budget: `fill × (PAGE_SIZE - NODE_HEADER)`.
    budget: usize,
    /// Last key admitted (strict-order validation); starts as the largest
    /// key already in the tree.
    last_key: Vec<u8>,
    have_last: bool,
    /// Entries pushed so far.
    pushed: usize,
    /// Root of the seeded tree (returned unchanged when nothing is pushed).
    seed_root: PageId,
}

impl<'a> BulkLoader<'a> {
    /// Minimum accepted fill factor; lower values would degenerate into one
    /// entry per page.
    const MIN_FILL: f64 = 0.1;

    fn seed(pool: &'a BufferPool, root: PageId) -> StorageResult<BulkLoader<'a>> {
        // Walk the rightmost spine top-down, then reverse so levels[0] is
        // the leaf level.
        let mut spine: Vec<(PageId, BulkLevel, bool)> = Vec::new();
        let mut last_key = Vec::new();
        let mut have_last = false;
        let mut page = root;
        loop {
            let (level, is_leaf, next_child) =
                pool.with_page(page, |p| -> StorageResult<(BulkLevel, bool, PageId)> {
                    let is_leaf = match p.bytes()[0] {
                        TYPE_LEAF => true,
                        TYPE_INTERNAL => false,
                        other => {
                            return Err(StorageError::Corrupted(format!(
                                "unknown B+tree node type {other}"
                            )))
                        }
                    };
                    let count = p.read_u16(1) as usize;
                    let header_ptr = PageId(p.read_u64(3));
                    let mut off = NODE_HEADER;
                    let mut last_child = header_ptr;
                    for _ in 0..count {
                        let klen = p.read_u16(off) as usize;
                        off += 2;
                        if off + klen + 8 > PAGE_SIZE {
                            return Err(StorageError::Corrupted("entry overruns page".into()));
                        }
                        if is_leaf {
                            last_key.clear();
                            last_key.extend_from_slice(p.read_bytes(off, klen));
                            have_last = true;
                        } else {
                            last_child = PageId(p.read_u64(off + klen));
                        }
                        off += klen + 8;
                    }
                    if is_leaf && !header_ptr.is_null() {
                        return Err(StorageError::Corrupted(
                            "rightmost leaf has a right sibling".into(),
                        ));
                    }
                    let level = BulkLevel {
                        page: PageId::NULL, // patched below
                        buf: p.read_bytes(NODE_HEADER, off - NODE_HEADER).to_vec(),
                        count,
                        leftmost: if is_leaf { PageId::NULL } else { header_ptr },
                    };
                    Ok((level, is_leaf, last_child))
                })??;
            let mut level = level;
            level.page = page;
            spine.push((page, level, is_leaf));
            if is_leaf {
                break;
            }
            page = next_child;
        }
        let levels: Vec<BulkLevel> = spine.into_iter().rev().map(|(_, l, _)| l).collect();
        Ok(BulkLoader {
            pool,
            levels,
            budget: PAGE_SIZE - NODE_HEADER, // patched by `with_fill`
            last_key,
            have_last,
            pushed: 0,
            seed_root: root,
        })
    }

    fn set_fill(&mut self, fill: f64) {
        let fill = fill.clamp(Self::MIN_FILL, 1.0);
        self.budget = ((PAGE_SIZE - NODE_HEADER) as f64 * fill) as usize;
    }

    fn push(&mut self, key: &[u8], value: u64) -> StorageResult<()> {
        if key.len() > MAX_KEY_SIZE {
            return Err(StorageError::RecordTooLarge(key.len()));
        }
        if self.have_last {
            match self.last_key.as_slice().cmp(key) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => {
                    return Err(StorageError::DuplicateKey(format!(
                        "bulk load repeats key {key:?}"
                    )));
                }
                std::cmp::Ordering::Greater => {
                    return Err(StorageError::BulkOutOfOrder(format!(
                        "key {key:?} sorts before the previous key {:?}",
                        self.last_key
                    )));
                }
            }
        }
        let entry_size = 2 + key.len() + 8;
        if self.levels[0].count > 0 && self.levels[0].buf.len() + entry_size > self.budget {
            self.roll_leaf(key)?;
        }
        let leaf = &mut self.levels[0];
        leaf.buf
            .extend_from_slice(&(key.len() as u16).to_le_bytes());
        leaf.buf.extend_from_slice(key);
        leaf.buf.extend_from_slice(&value.to_le_bytes());
        leaf.count += 1;
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.have_last = true;
        self.pushed += 1;
        Ok(())
    }

    /// Finalize the full leaf, start its successor (chained via the leaf's
    /// next pointer) and promote the separator — the first key of the new
    /// leaf — one level up.
    fn roll_leaf(&mut self, first_key: &[u8]) -> StorageResult<()> {
        let new_page = self.pool.allocate_page()?;
        let old_page = self.levels[0].page;
        self.flush_page(0, new_page)?;
        let leaf = &mut self.levels[0];
        leaf.page = new_page;
        leaf.buf.clear();
        leaf.count = 0;
        self.promote(1, old_page, first_key, new_page)
    }

    /// Register a page split at `level - 1` with its parent: `old_page` kept
    /// its entries, `new_page` continues them, `sep` is the smallest key in
    /// `new_page`'s subtree.
    fn promote(
        &mut self,
        level: usize,
        old_page: PageId,
        sep: &[u8],
        new_page: PageId,
    ) -> StorageResult<()> {
        if self.levels.len() == level {
            // The child level outgrew a single page for the first time: a
            // new top level whose leftmost child is the page everything so
            // far was packed into.
            let page = self.pool.allocate_page()?;
            self.levels.push(BulkLevel {
                page,
                buf: Vec::new(),
                count: 0,
                leftmost: old_page,
            });
        }
        let entry_size = 2 + sep.len() + 8;
        if self.levels[level].count > 0 && self.levels[level].buf.len() + entry_size > self.budget {
            // This internal page is full too: finalize it, start a fresh one
            // whose leftmost child is `new_page`, and promote the separator
            // further up (it moves up, exactly as in a top-down split).
            let fresh = self.pool.allocate_page()?;
            let old_internal = self.levels[level].page;
            let leftmost = self.levels[level].leftmost;
            self.flush_page(level, leftmost)?;
            let node = &mut self.levels[level];
            node.page = fresh;
            node.buf.clear();
            node.count = 0;
            node.leftmost = new_page;
            return self.promote(level + 1, old_internal, sep, fresh);
        }
        let node = &mut self.levels[level];
        node.buf
            .extend_from_slice(&(sep.len() as u16).to_le_bytes());
        node.buf.extend_from_slice(sep);
        node.buf.extend_from_slice(&new_page.0.to_le_bytes());
        node.count += 1;
        Ok(())
    }

    /// Write the level's pending page: type byte, count, header pointer
    /// (next sibling for leaves, leftmost child for internal nodes) and the
    /// accumulated entry bytes, in one page mutation.
    fn flush_page(&self, level: usize, header_ptr: PageId) -> StorageResult<()> {
        let l = &self.levels[level];
        debug_assert!(NODE_HEADER + l.buf.len() <= PAGE_SIZE);
        debug_assert!(l.count < u16::MAX as usize);
        self.pool.with_page_mut(l.page, |p| {
            p.bytes_mut()[0] = if level == 0 { TYPE_LEAF } else { TYPE_INTERNAL };
            p.write_u16(1, l.count as u16);
            p.write_u64(3, header_ptr.0);
            p.write_bytes(NODE_HEADER, &l.buf);
        })?;
        // Bulk-packed pages are write-once: hint the clock hand that they
        // can be evicted without a second chance, so a load larger than the
        // pool streams through it instead of flushing the working set.
        self.pool.hint_cold(l.page);
        Ok(())
    }

    /// Finalize every level bottom-up and return the new root and the
    /// number of entries appended. When nothing was pushed, no page was (or
    /// is) touched and the seeded root is returned unchanged.
    fn finish(self) -> StorageResult<(PageId, usize)> {
        if self.pushed == 0 {
            return Ok((self.seed_root, 0));
        }
        for level in 0..self.levels.len() {
            let header_ptr = if level == 0 {
                PageId::NULL
            } else {
                self.levels[level].leftmost
            };
            self.flush_page(level, header_ptr)?;
        }
        let root = self.levels.last().expect("at least the leaf level").page;
        Ok((root, self.pushed))
    }
}

/// Position within one pinned leaf page. [`PinnedPage`] is an owned guard,
/// so the cursor carries no borrow of the pool.
struct LeafCursor {
    page: PinnedPage,
    /// Total entries in the leaf.
    count: usize,
    /// Index of the next entry to decode.
    index: usize,
    /// Byte offset of the next entry.
    offset: usize,
    /// Right sibling in the leaf chain.
    next: PageId,
}

impl LeafCursor {
    fn pin<S: PageSource>(pool: S, pid: PageId) -> StorageResult<LeafCursor> {
        let page = pool.pin_page(pid)?;
        if page.bytes()[0] != TYPE_LEAF {
            return Err(StorageError::Corrupted(
                "leaf chain contains an internal node".into(),
            ));
        }
        let count = page.read_u16(1) as usize;
        let next = PageId(page.read_u64(3));
        Ok(LeafCursor {
            page,
            count,
            index: 0,
            offset: NODE_HEADER,
            next,
        })
    }

    /// Borrow the next entry's key and value without copying, advancing the
    /// cursor. `None` when the leaf is exhausted.
    fn advance(&mut self) -> StorageResult<Option<(&[u8], u64)>> {
        if self.index >= self.count {
            return Ok(None);
        }
        let klen = self.page.read_u16(self.offset) as usize;
        let key_off = self.offset + 2;
        if key_off + klen + 8 > PAGE_SIZE {
            return Err(StorageError::Corrupted("leaf entry overruns page".into()));
        }
        let value = self.page.read_u64(key_off + klen);
        self.index += 1;
        self.offset = key_off + klen + 8;
        Ok(Some((self.page.read_bytes(key_off, klen), value)))
    }
}

/// Iterator over a key range, walking the leaf chain one pinned frame at a
/// time. Only yielded keys are copied out of the page. Generic over the
/// [`PageSource`], so the same scan serves the writer's current view and
/// concurrent snapshot readers.
pub struct RangeIter<S: PageSource> {
    pool: S,
    cursor: Option<LeafCursor>,
    low: Option<Vec<u8>>,
    high: Option<Vec<u8>>,
    exhausted: bool,
}

impl<S: PageSource> RangeIter<S> {
    fn step(&mut self) -> StorageResult<Option<(Vec<u8>, u64)>> {
        loop {
            let Some(cursor) = self.cursor.as_mut() else {
                self.exhausted = true;
                return Ok(None);
            };
            match cursor.advance()? {
                None => {
                    // Leaf exhausted: move to the right sibling (unpinning
                    // the current leaf by replacing the cursor).
                    let next = cursor.next;
                    self.cursor = if next.is_null() {
                        None
                    } else {
                        Some(LeafCursor::pin(self.pool, next)?)
                    };
                }
                Some((key, value)) => {
                    if let Some(low) = &self.low {
                        if key < low.as_slice() {
                            continue;
                        }
                    }
                    if let Some(high) = &self.high {
                        if key >= high.as_slice() {
                            self.exhausted = true;
                            let item = None;
                            // Drop the pin before returning.
                            self.cursor = None;
                            return Ok(item);
                        }
                    }
                    let item = (key.to_vec(), value);
                    // Keys are sorted: once one passes `low`, all later ones
                    // do; skip the comparison from here on.
                    self.low = None;
                    return Ok(Some(item));
                }
            }
        }
    }
}

impl<S: PageSource> Iterator for RangeIter<S> {
    type Item = StorageResult<(Vec<u8>, u64)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.exhausted {
            return None;
        }
        match self.step() {
            Ok(Some(item)) => Some(Ok(item)),
            Ok(None) => None,
            Err(e) => {
                self.exhausted = true;
                self.cursor = None;
                Some(Err(e))
            }
        }
    }
}

fn read_node<S: PageSource>(pool: S, page: PageId) -> StorageResult<Node> {
    pool.with_page(page, Node::read_from)?
}

fn write_node(pool: &BufferPool, page: PageId, node: &Node) -> StorageResult<()> {
    debug_assert!(
        node.serialized_size() <= PAGE_SIZE,
        "node does not fit in a page"
    );
    debug_assert!(node.key_count() < u16::MAX as usize);
    pool.with_page_mut(page, |p| node.write_to(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;
    use crate::value::Value;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use tempfile::tempdir;

    fn pool() -> (tempfile::TempDir, BufferPool) {
        let dir = tempdir().unwrap();
        let pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        (dir, BufferPool::with_capacity(pager, 256).unwrap())
    }

    #[test]
    fn empty_tree() {
        let (_d, pool) = pool();
        let tree = BTree::create(&pool).unwrap();
        assert!(tree.is_empty(&pool).unwrap());
        assert_eq!(tree.get(&pool, b"anything").unwrap(), None);
        assert_eq!(tree.height(&pool).unwrap(), 1);
    }

    #[test]
    fn insert_and_get_small() {
        let (_d, pool) = pool();
        let mut tree = BTree::create(&pool).unwrap();
        for (i, key) in ["delta", "alpha", "charlie", "bravo"].iter().enumerate() {
            tree.insert(&pool, key.as_bytes(), i as u64).unwrap();
        }
        assert_eq!(tree.get(&pool, b"alpha").unwrap(), Some(1));
        assert_eq!(tree.get(&pool, b"delta").unwrap(), Some(0));
        assert_eq!(tree.get(&pool, b"echo").unwrap(), None);
        assert_eq!(tree.len(&pool).unwrap(), 4);
    }

    #[test]
    fn insert_many_causes_splits_and_stays_sorted() {
        let (_d, pool) = pool();
        let mut tree = BTree::create(&pool).unwrap();
        let mut keys: Vec<u64> = (0..5000).collect();
        let mut rng = StdRng::seed_from_u64(7);
        keys.shuffle(&mut rng);
        for &k in &keys {
            tree.insert(&pool, &Value::Int(k as i64).key_bytes(), k)
                .unwrap();
        }
        assert!(
            tree.height(&pool).unwrap() > 1,
            "5000 keys must split the root"
        );
        assert_eq!(tree.len(&pool).unwrap(), 5000);
        // Point lookups.
        for k in [0u64, 1, 777, 2500, 4999] {
            assert_eq!(
                tree.get(&pool, &Value::Int(k as i64).key_bytes()).unwrap(),
                Some(k)
            );
        }
        // Full scan is sorted.
        let all: Vec<(Vec<u8>, u64)> = tree
            .range(&pool, None, None)
            .unwrap()
            .collect::<StorageResult<_>>()
            .unwrap();
        assert_eq!(all.len(), 5000);
        for w in all.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // Values follow the key order (keys encode the value).
        for (i, (_, v)) in all.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn range_scan_bounds() {
        let (_d, pool) = pool();
        let mut tree = BTree::create(&pool).unwrap();
        for k in 0..1000i64 {
            tree.insert(&pool, &Value::Int(k).key_bytes(), k as u64)
                .unwrap();
        }
        let low = Value::Int(100).key_bytes();
        let high = Value::Int(200).key_bytes();
        let hits: Vec<u64> = tree
            .range(&pool, Some(&low), Some(&high))
            .unwrap()
            .map(|r| r.unwrap().1)
            .collect();
        assert_eq!(hits, (100..200).map(|v| v as u64).collect::<Vec<_>>());
        // Unbounded low.
        let hits: Vec<u64> = tree
            .range(&pool, None, Some(&Value::Int(5).key_bytes()))
            .unwrap()
            .map(|r| r.unwrap().1)
            .collect();
        assert_eq!(hits, vec![0, 1, 2, 3, 4]);
        // Unbounded high.
        let hits: Vec<u64> = tree
            .range(&pool, Some(&Value::Int(995).key_bytes()), None)
            .unwrap()
            .map(|r| r.unwrap().1)
            .collect();
        assert_eq!(hits, vec![995, 996, 997, 998, 999]);
        // Empty range.
        let hits: Vec<u64> = tree
            .range(
                &pool,
                Some(&Value::Int(500).key_bytes()),
                Some(&Value::Int(500).key_bytes()),
            )
            .unwrap()
            .map(|r| r.unwrap().1)
            .collect();
        assert!(hits.is_empty());
    }

    #[test]
    fn duplicate_keys_all_retrievable() {
        let (_d, pool) = pool();
        let mut tree = BTree::create(&pool).unwrap();
        for v in 0..50u64 {
            tree.insert(&pool, b"same-key", v).unwrap();
        }
        tree.insert(&pool, b"other", 99).unwrap();
        let all = tree.get_all(&pool, b"same-key").unwrap();
        assert_eq!(all.len(), 50);
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_eq!(tree.get_all(&pool, b"other").unwrap(), vec![99]);
        assert_eq!(tree.get_all(&pool, b"missing").unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn float_keys_range_scan_matches_numeric_order() {
        let (_d, pool) = pool();
        let mut tree = BTree::create(&pool).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut times: Vec<f64> = (0..2000).map(|i| i as f64 * 0.01).collect();
        times.shuffle(&mut rng);
        for (i, t) in times.iter().enumerate() {
            tree.insert(&pool, &Value::Float(*t).key_bytes(), i as u64)
                .unwrap();
        }
        // "All nodes with time >= 15.0" — the paper's sampling predicate.
        let low = Value::Float(15.0).key_bytes();
        let count = tree.range(&pool, Some(&low), None).unwrap().count();
        assert_eq!(count, 500); // times 15.00..19.99
    }

    #[test]
    fn delete_removes_single_entry() {
        let (_d, pool) = pool();
        let mut tree = BTree::create(&pool).unwrap();
        for k in 0..100i64 {
            tree.insert(&pool, &Value::Int(k).key_bytes(), k as u64)
                .unwrap();
        }
        assert!(tree
            .delete(&pool, &Value::Int(42).key_bytes(), None)
            .unwrap());
        assert_eq!(tree.get(&pool, &Value::Int(42).key_bytes()).unwrap(), None);
        assert!(!tree
            .delete(&pool, &Value::Int(42).key_bytes(), None)
            .unwrap());
        assert_eq!(tree.len(&pool).unwrap(), 99);
        // Delete by (key, value) pair among duplicates.
        tree.insert(&pool, b"dup", 1).unwrap();
        tree.insert(&pool, b"dup", 2).unwrap();
        assert!(tree.delete(&pool, b"dup", Some(2)).unwrap());
        assert_eq!(tree.get_all(&pool, b"dup").unwrap(), vec![1]);
    }

    #[test]
    fn oversized_key_rejected() {
        let (_d, pool) = pool();
        let mut tree = BTree::create(&pool).unwrap();
        let big = vec![1u8; MAX_KEY_SIZE + 1];
        assert!(tree.insert(&pool, &big, 0).is_err());
    }

    #[test]
    fn persists_across_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let root;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::with_capacity(pager, 64).unwrap();
            let mut tree = BTree::create(&pool).unwrap();
            for k in 0..3000i64 {
                tree.insert(&pool, &Value::Int(k).key_bytes(), (k * 2) as u64)
                    .unwrap();
            }
            root = tree.root();
            pool.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 64).unwrap();
        let tree = BTree::open(root);
        assert_eq!(
            tree.get(&pool, &Value::Int(1234).key_bytes()).unwrap(),
            Some(2468)
        );
        assert_eq!(tree.len(&pool).unwrap(), 3000);
    }

    #[test]
    fn long_string_keys() {
        let (_d, pool) = pool();
        let mut tree = BTree::create(&pool).unwrap();
        for i in 0..200 {
            let key = format!("{}{:04}", "x".repeat(300), i);
            tree.insert(&pool, key.as_bytes(), i as u64).unwrap();
        }
        assert_eq!(tree.len(&pool).unwrap(), 200);
        let key = format!("{}{:04}", "x".repeat(300), 150);
        assert_eq!(tree.get(&pool, key.as_bytes()).unwrap(), Some(150));
        assert!(tree.height(&pool).unwrap() >= 2);
    }

    // ------------------------------------------------------------------
    // Bulk loading
    // ------------------------------------------------------------------

    fn int_entries(range: std::ops::Range<i64>) -> Vec<(Vec<u8>, u64)> {
        range
            .map(|k| (Value::Int(k).key_bytes(), k as u64))
            .collect()
    }

    fn assert_full_scan(pool: &BufferPool, tree: &BTree, expected: &[(Vec<u8>, u64)]) {
        let all: Vec<(Vec<u8>, u64)> = tree
            .range(pool, None, None)
            .unwrap()
            .collect::<StorageResult<_>>()
            .unwrap();
        assert_eq!(all, expected);
    }

    #[test]
    fn bulk_build_empty_input() {
        let (_d, pool) = pool();
        let before = pool.page_count();
        let tree = BTree::bulk_build(&pool, 1.0, Vec::<(Vec<u8>, u64)>::new()).unwrap();
        assert!(tree.is_empty(&pool).unwrap());
        assert_eq!(tree.height(&pool).unwrap(), 1);
        assert_eq!(tree.last_key(&pool).unwrap(), None);
        // Only the (empty) root leaf was allocated.
        assert_eq!(pool.page_count(), before + 1);
    }

    #[test]
    fn bulk_build_single_key() {
        let (_d, pool) = pool();
        let tree = BTree::bulk_build(&pool, 1.0, vec![(b"only".to_vec(), 7u64)]).unwrap();
        assert_eq!(tree.get(&pool, b"only").unwrap(), Some(7));
        assert_eq!(tree.len(&pool).unwrap(), 1);
        assert_eq!(tree.height(&pool).unwrap(), 1);
        assert_eq!(tree.last_key(&pool).unwrap(), Some(b"only".to_vec()));
    }

    #[test]
    fn bulk_build_matches_insert_built_tree() {
        let (_d, pool) = pool();
        let entries = int_entries(0..5000);
        let bulk = BTree::bulk_build(&pool, 1.0, entries.clone()).unwrap();
        let mut inserted = BTree::create(&pool).unwrap();
        for (k, v) in &entries {
            inserted.insert(&pool, k, *v).unwrap();
        }
        let from_bulk: Vec<(Vec<u8>, u64)> = bulk
            .range(&pool, None, None)
            .unwrap()
            .collect::<StorageResult<_>>()
            .unwrap();
        let from_insert: Vec<(Vec<u8>, u64)> = inserted
            .range(&pool, None, None)
            .unwrap()
            .collect::<StorageResult<_>>()
            .unwrap();
        assert_eq!(from_bulk, from_insert);
        // Point lookups and bounded ranges behave identically.
        for probe in [0i64, 1, 2499, 4999] {
            assert_eq!(
                bulk.get(&pool, &Value::Int(probe).key_bytes()).unwrap(),
                Some(probe as u64)
            );
        }
        assert_eq!(
            bulk.get(&pool, &Value::Int(5000).key_bytes()).unwrap(),
            None
        );
        let low = Value::Int(100).key_bytes();
        let high = Value::Int(200).key_bytes();
        let hits: Vec<u64> = bulk
            .range(&pool, Some(&low), Some(&high))
            .unwrap()
            .map(|r| r.unwrap().1)
            .collect();
        assert_eq!(hits, (100..200u64).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_build_exact_leaf_capacity_boundaries() {
        // Entries sized so an exact number fit per leaf: key 12 bytes + 2
        // length + 8 value = 22 bytes; (PAGE_SIZE - NODE_HEADER) / 22 = 371.
        let per_leaf = (PAGE_SIZE - NODE_HEADER) / 22;
        for n in [
            per_leaf - 1,
            per_leaf,
            per_leaf + 1,
            2 * per_leaf,
            2 * per_leaf + 1,
        ] {
            let (_d, pool) = pool();
            let entries: Vec<(Vec<u8>, u64)> = (0..n)
                .map(|i| (format!("key-{i:08}").into_bytes(), i as u64))
                .collect();
            let tree = BTree::bulk_build(&pool, 1.0, entries.clone()).unwrap();
            assert_full_scan(&pool, &tree, &entries);
            let expected_height = if n <= per_leaf { 1 } else { 2 };
            assert_eq!(tree.height(&pool).unwrap(), expected_height, "n = {n}");
        }
    }

    #[test]
    fn bulk_build_fill_factors_change_page_count() {
        let mut heights = Vec::new();
        let mut pages = Vec::new();
        for fill in [0.5, 0.75, 1.0] {
            let (_d, pool) = pool();
            let before = pool.page_count();
            let entries = int_entries(0..20_000);
            let tree = BTree::bulk_build(&pool, fill, entries.clone()).unwrap();
            assert_eq!(tree.len(&pool).unwrap(), 20_000, "fill {fill}");
            assert_full_scan(&pool, &tree, &entries);
            heights.push(tree.height(&pool).unwrap());
            pages.push(pool.page_count() - before);
        }
        // Lower fill factors spread the same entries over more pages.
        assert!(pages[0] > pages[1], "0.5 must use more pages than 0.75");
        assert!(pages[1] > pages[2], "0.75 must use more pages than 1.0");
        // Half-full leaves need roughly twice the pages of packed ones.
        assert!(pages[0] as f64 >= 1.8 * pages[2] as f64);
        assert!(heights.iter().all(|&h| h >= 2));
    }

    #[test]
    fn bulk_build_rejects_unsorted_and_duplicates() {
        let (_d, pool) = pool();
        let unsorted = vec![(b"b".to_vec(), 1u64), (b"a".to_vec(), 2u64)];
        assert!(matches!(
            BTree::bulk_build(&pool, 1.0, unsorted),
            Err(StorageError::BulkOutOfOrder(_))
        ));
        let dup = vec![(b"a".to_vec(), 1u64), (b"a".to_vec(), 2u64)];
        assert!(matches!(
            BTree::bulk_build(&pool, 1.0, dup),
            Err(StorageError::DuplicateKey(_))
        ));
        // Oversized keys are rejected like on the insert path.
        let big = vec![(vec![1u8; MAX_KEY_SIZE + 1], 1u64)];
        assert!(matches!(
            BTree::bulk_build(&pool, 1.0, big),
            Err(StorageError::RecordTooLarge(_))
        ));
    }

    #[test]
    fn bulk_append_extends_existing_tree() {
        let (_d, pool) = pool();
        let mut tree = BTree::bulk_build(&pool, 0.9, int_entries(0..3000)).unwrap();
        let appended = tree
            .bulk_append(&pool, 0.9, int_entries(3000..6000))
            .unwrap();
        assert_eq!(appended, 3000);
        assert_full_scan(&pool, &tree, &int_entries(0..6000));
        assert_eq!(
            tree.last_key(&pool).unwrap(),
            Some(Value::Int(5999).key_bytes())
        );
        // A run whose first entry does not sort after the existing keys is
        // rejected before any page is touched.
        assert!(matches!(
            tree.bulk_append(&pool, 0.9, int_entries(100..200)),
            Err(StorageError::BulkOutOfOrder(_))
        ));
        assert!(matches!(
            tree.bulk_append(&pool, 0.9, int_entries(5999..6001)),
            Err(StorageError::DuplicateKey(_))
        ));
        assert_full_scan(&pool, &tree, &int_entries(0..6000));
        // Ordinary inserts still work on a bulk-built tree.
        tree.insert(&pool, &Value::Int(-1).key_bytes(), 999)
            .unwrap();
        assert_eq!(
            tree.get(&pool, &Value::Int(-1).key_bytes()).unwrap(),
            Some(999)
        );
        assert_eq!(tree.len(&pool).unwrap(), 6001);
    }

    #[test]
    fn bulk_append_onto_insert_built_tree() {
        let (_d, pool) = pool();
        let mut tree = BTree::create(&pool).unwrap();
        // Insert in shuffled order so the spine is a realistic split product.
        let mut keys: Vec<i64> = (0..2000).collect();
        let mut rng = StdRng::seed_from_u64(3);
        keys.shuffle(&mut rng);
        for &k in &keys {
            tree.insert(&pool, &Value::Int(k).key_bytes(), k as u64)
                .unwrap();
        }
        tree.bulk_append(&pool, 1.0, int_entries(2000..4000))
            .unwrap();
        assert_full_scan(&pool, &tree, &int_entries(0..4000));
        assert!(tree.height(&pool).unwrap() >= 2);
    }

    #[test]
    fn bulk_build_persists_across_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let root;
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::with_capacity(pager, 64).unwrap();
            let tree = BTree::bulk_build(&pool, 0.8, int_entries(0..10_000)).unwrap();
            root = tree.root();
            pool.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::with_capacity(pager, 64).unwrap();
        let tree = BTree::open(root);
        assert_eq!(tree.len(&pool).unwrap(), 10_000);
        assert_eq!(
            tree.get(&pool, &Value::Int(1234).key_bytes()).unwrap(),
            Some(1234)
        );
    }

    #[test]
    fn bulk_build_under_eviction_pressure() {
        // A pool far smaller than the output forces constant eviction while
        // packing; the cold hints must not break correctness.
        let dir = tempdir().unwrap();
        let pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        let pool = BufferPool::with_capacity(pager, 8).unwrap();
        let entries = int_entries(0..20_000);
        let tree = BTree::bulk_build(&pool, 1.0, entries.clone()).unwrap();
        assert!(pool.stats().evictions > 0);
        assert_full_scan(&pool, &tree, &entries);
    }

    #[test]
    fn small_buffer_pool_still_correct() {
        // Forces constant eviction during index build.
        let dir = tempdir().unwrap();
        let pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        let pool = BufferPool::with_capacity(pager, 8).unwrap();
        let mut tree = BTree::create(&pool).unwrap();
        for k in 0..2000i64 {
            tree.insert(&pool, &Value::Int(k).key_bytes(), k as u64)
                .unwrap();
        }
        for k in [0i64, 999, 1500, 1999] {
            assert_eq!(
                tree.get(&pool, &Value::Int(k).key_bytes()).unwrap(),
                Some(k as u64)
            );
        }
        assert!(pool.stats().evictions > 0);
    }
}
