//! Table schemas and typed rows.

use crate::error::{StorageError, StorageResult};
use crate::value::{Value, ValueType};
use serde::{Deserialize, Serialize};

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (unique within the table).
    pub name: String,
    /// Column type.
    pub value_type: ValueType,
    /// Whether NULL cells are allowed (default: true).
    pub nullable: bool,
}

impl ColumnDef {
    /// A nullable column.
    pub fn new(name: impl Into<String>, value_type: ValueType) -> Self {
        ColumnDef {
            name: name.into(),
            value_type,
            nullable: true,
        }
    }

    /// A NOT NULL column.
    pub fn not_null(name: impl Into<String>, value_type: ValueType) -> Self {
        ColumnDef {
            name: name.into(),
            value_type,
            nullable: false,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Create a schema from column definitions.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    /// The column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the named column.
    pub fn column_index(&self, name: &str) -> StorageResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    /// Validate that `values` conforms to this schema.
    pub fn validate(&self, values: &[Value]) -> StorageResult<()> {
        if values.len() != self.columns.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "expected {} values, got {}",
                self.columns.len(),
                values.len()
            )));
        }
        for (col, value) in self.columns.iter().zip(values) {
            match value.value_type() {
                None => {
                    if !col.nullable {
                        return Err(StorageError::SchemaMismatch(format!(
                            "column `{}` is NOT NULL",
                            col.name
                        )));
                    }
                }
                Some(t) if t != col.value_type => {
                    return Err(StorageError::SchemaMismatch(format!(
                        "column `{}` expects {:?}, got {:?}",
                        col.name, col.value_type, t
                    )));
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Encode a validated row into record bytes.
    pub fn encode_row(&self, values: &[Value]) -> StorageResult<Vec<u8>> {
        let mut out = Vec::with_capacity(values.len() * 12);
        self.encode_row_into(values, &mut out)?;
        Ok(out)
    }

    /// Encode a validated row into a caller-supplied buffer (cleared first).
    /// The bulk-load path encodes every row through one reusable buffer, so
    /// a million-row load performs no per-row allocation here.
    pub fn encode_row_into(&self, values: &[Value], out: &mut Vec<u8>) -> StorageResult<()> {
        self.validate(values)?;
        out.clear();
        for v in values {
            v.encode_cell(out);
        }
        Ok(())
    }

    /// Decode record bytes into a [`Row`].
    pub fn decode_row(&self, bytes: &[u8]) -> StorageResult<Row> {
        let mut values = Vec::with_capacity(self.columns.len());
        let mut pos = 0usize;
        for _ in &self.columns {
            let (v, p) = Value::decode_cell(bytes, pos)?;
            values.push(v);
            pos = p;
        }
        if pos != bytes.len() {
            return Err(StorageError::Corrupted(format!(
                "row has {} trailing bytes",
                bytes.len() - pos
            )));
        }
        Ok(Row { values })
    }
}

/// A decoded row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Cell values in schema column order.
    pub values: Vec<Value>,
}

impl Row {
    /// Create a row from values (not yet validated against any schema).
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Cell at position `idx`.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Cell in the named column of `schema`.
    pub fn get_named<'a>(&'a self, schema: &Schema, name: &str) -> StorageResult<&'a Value> {
        let idx = schema.column_index(name)?;
        self.values
            .get(idx)
            .ok_or_else(|| StorageError::SchemaMismatch(format!("row is missing column `{name}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn species_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("name", ValueType::Text),
            ColumnDef::new("sequence", ValueType::Text),
            ColumnDef::not_null("node_id", ValueType::Int),
            ColumnDef::new("time", ValueType::Float),
        ])
    }

    #[test]
    fn encode_decode_roundtrip() {
        let schema = species_schema();
        let values = vec![
            Value::text("Bha"),
            Value::text("ACGT"),
            Value::Int(42),
            Value::Float(2.25),
        ];
        let bytes = schema.encode_row(&values).unwrap();
        let row = schema.decode_row(&bytes).unwrap();
        assert_eq!(row.values, values);
        assert_eq!(row.get_named(&schema, "node_id").unwrap(), &Value::Int(42));
    }

    #[test]
    fn null_handling() {
        let schema = species_schema();
        let values = vec![Value::text("Bha"), Value::Null, Value::Int(1), Value::Null];
        let bytes = schema.encode_row(&values).unwrap();
        let row = schema.decode_row(&bytes).unwrap();
        assert!(row.values[1].is_null());
        // NOT NULL column rejects NULL.
        let bad = vec![Value::Null, Value::Null, Value::Int(1), Value::Null];
        assert!(matches!(
            schema.encode_row(&bad),
            Err(StorageError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn wrong_arity_rejected() {
        let schema = species_schema();
        assert!(schema.encode_row(&[Value::text("x")]).is_err());
    }

    #[test]
    fn wrong_type_rejected() {
        let schema = species_schema();
        let values = vec![Value::Int(5), Value::Null, Value::Int(1), Value::Null];
        assert!(matches!(
            schema.encode_row(&values),
            Err(StorageError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn unknown_column_errors() {
        let schema = species_schema();
        assert!(schema.column_index("nope").is_err());
        assert_eq!(schema.column_index("time").unwrap(), 3);
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let schema = Schema::new(vec![ColumnDef::new("a", ValueType::Int)]);
        let mut bytes = schema.encode_row(&[Value::Int(1)]).unwrap();
        bytes.push(0xAB);
        assert!(schema.decode_row(&bytes).is_err());
    }

    #[test]
    fn empty_schema() {
        let schema = Schema::new(vec![]);
        assert!(schema.is_empty());
        let bytes = schema.encode_row(&[]).unwrap();
        assert!(bytes.is_empty());
        assert_eq!(schema.decode_row(&bytes).unwrap().values.len(), 0);
    }
}
