//! Write-ahead log: the durability and atomicity substrate of the engine.
//!
//! The WAL lives in a sibling file (`<db>.wal`) next to the database file and
//! records, per transaction, full physical page images plus a commit record.
//! Recovery is ARIES-lite, simplified by the engine's single-writer design
//! (at most one transaction is ever active):
//!
//! * **Redo.** At commit, the after-image of every page the transaction
//!   dirtied is appended, followed by a [`WalRecordKind::Commit`] record
//!   carrying the file-header state (page count, catalog root). One fsync
//!   covers every commit record written since the previous fsync ("group
//!   fsync"); implicit auto-commits defer the fsync to the next explicit
//!   commit, eviction or checkpoint.
//! * **Undo.** Dirty pages of the *active* transaction may be stolen
//!   (written to the data file before commit) under memory pressure. Before
//!   the data write, the page's before-image is appended as a
//!   [`WalRecordKind::Undo`] record and the log is fsynced — the
//!   WAL-before-data rule. Recovery restores stolen pages of transactions
//!   that never committed.
//! * **Checkpoint.** [`crate::buffer::BufferPool::flush`] writes every dirty
//!   page and the header to the data file, fsyncs it, then truncates the log.
//!   Replaying a log that was already checkpointed is harmless because redo
//!   applies full page images (idempotent).
//!
//! Because every record carries a full page image, recovery reduces to: for
//! each page, the *last* applicable record in log order — the last committed
//! after-image or the last loser before-image, whichever comes later — is the
//! page's true content. (A loser's before-image equals the committed state at
//! its transaction start, so it supersedes any earlier committed image, and a
//! later committed image supersedes an aborted steal.)
//!
//! ## The commit queue
//!
//! The log is split into three coordination domains so that committers never
//! serialize behind each other's fsyncs:
//!
//! * the **enqueue side** ([`WalQueue`]): appends — always made under the
//!   buffer pool's io latch, which is what keeps the log in commit order —
//!   encode their frame and push it onto a pending queue, advancing the
//!   logical `end` LSN. When no group-commit leader holds the file, the
//!   appender opportunistically drains the queue through to the file
//!   ("write-through"), so single-threaded behaviour — including where
//!   write errors surface — is identical to a direct write.
//! * the **file side** ([`WalFile`]): the file handle, its `flushed` cursor
//!   and the write/fsync machinery, behind its own mutex. Whoever holds it
//!   is the group-commit *leader*: it drains every pending frame (one
//!   `write_at` per frame, in enqueue order) and issues ONE fsync that
//!   durably covers every commit record drained so far.
//! * the **shared side** ([`WalShared`]): the durable-LSN watermark,
//!   fsync/group accounting, the poison slot and the follower parking lot.
//!   Followers of a group commit block on the watermark (bounded condvar
//!   waits), never on the fsync itself.
//!
//! Lock order is `io latch → WalFile → WalQueue`; the leader takes only the
//! file and queue locks, so it can never deadlock against a committer
//! holding the io latch.
//!
//! ## On-disk format
//!
//! File header (16 bytes): magic `CRIMWAL1`, then the base LSN (`u64`). LSNs
//! are monotone byte positions `base + file_offset`; truncating the log at a
//! checkpoint advances the base so LSNs never move backwards.
//!
//! Each record is framed as `[len: u32][crc32: u32][body]` with the CRC taken
//! over the body. A torn tail (short frame or CRC mismatch) ends the scan:
//! everything after the last intact record is discarded on open, which is
//! exactly the atomicity contract — an interrupted append never surfaces a
//! half-written transaction.

use crate::error::{StorageError, StorageResult};
use crate::io::{DiskIo, RetryPolicy, StorageIo};
use crate::page::{PageId, PAGE_SIZE};
use crate::pager::Pager;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::OpenOptions;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard, TryLockError};
use std::time::Duration;

const WAL_MAGIC: &[u8; 8] = b"CRIMWAL1";
const WAL_HEADER: u64 = 16;
const FRAME_HEADER: usize = 8;

/// Log sequence number: a monotone byte position in the log. LSN 0 is "never
/// logged".
pub type Lsn = u64;

/// Lock a std mutex, ignoring poisoning: every guarded structure here is
/// kept consistent before any operation that could panic, and a poisoned
/// commit path must keep failing loudly through the WAL poison slot, not by
/// propagating lock panics.
fn lock<T>(m: &StdMutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Kinds of log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecordKind {
    /// After-image of a page, logged at commit time.
    PageImage,
    /// Before-image of a page, logged when an uncommitted dirty page is
    /// stolen (written to the data file under memory pressure).
    Undo,
    /// Transaction commit, carrying the file-header state to restore.
    Commit,
}

impl WalRecordKind {
    fn to_u8(self) -> u8 {
        match self {
            WalRecordKind::PageImage => 1,
            WalRecordKind::Undo => 2,
            WalRecordKind::Commit => 3,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => WalRecordKind::PageImage,
            2 => WalRecordKind::Undo,
            3 => WalRecordKind::Commit,
            _ => return None,
        })
    }
}

/// A decoded record header (images are read lazily during recovery — see
/// [`Wal::read_image_at`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RecordMeta {
    /// What kind of record this is.
    pub kind: WalRecordKind,
    /// Transaction the record belongs to.
    pub txn: u64,
    /// Page the record describes (images/undos) or `0` for commits.
    pub pid: u64,
    /// For commits: the file page count at commit time.
    pub page_count: u64,
    /// For commits: the catalog root page at commit time.
    pub catalog_root: u64,
    /// For commits: the user metadata page at commit time.
    pub user_meta: u64,
    /// File offset of the page image payload (images/undos).
    pub image_offset: u64,
}

/// Counters describing WAL activity since the last [`reset`](Wal::reset) of
/// statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Bytes appended (frames + payloads).
    pub bytes: u64,
    /// fsync calls issued on the log file.
    pub syncs: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Full page images appended (commit after-images + steal undo images).
    /// `bytes / (page_images × PAGE_SIZE)` is the log-bytes-per-data-byte
    /// ratio the bulk-load bench budgets (≤ 1.1×).
    pub page_images: u64,
    /// Group-commit fsync rounds that covered at least one commit record.
    pub group_rounds: u64,
    /// Commit records made durable across those rounds (the sum of group
    /// sizes; `group_members - group_rounds` is the number of fsyncs group
    /// commit saved).
    pub group_members: u64,
}

/// Outcome of crash recovery, reported by
/// [`crate::db::Database::recovery_report`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Bytes of log scanned.
    pub wal_bytes: u64,
    /// Intact records found.
    pub records: u64,
    /// Committed transactions whose effects were replayed.
    pub committed_txns: u64,
    /// Uncommitted (loser) transactions rolled back.
    pub loser_txns: u64,
    /// Pages restored from committed after-images.
    pub pages_redone: u64,
    /// Pages restored from loser before-images.
    pub pages_undone: u64,
    /// `true` when the log ended in a torn (partially written) record.
    pub torn_tail: bool,
}

impl RecoveryReport {
    /// `true` when recovery changed anything on disk.
    pub fn did_work(&self) -> bool {
        self.pages_redone + self.pages_undone > 0
    }
}

/// One encoded record waiting in the commit queue: framed bytes not yet
/// written to the log file.
struct PendingFrame {
    bytes: Vec<u8>,
    /// 1 when the frame is a commit record (group-size accounting).
    commits: u64,
}

/// The in-memory tail of the log: frames enqueued (under the io latch) but
/// not yet written to the file. Guarded by its own short-lived mutex so
/// enqueues never block behind a leader's in-flight group fsync.
#[derive(Default)]
struct WalQueue {
    frames: VecDeque<PendingFrame>,
}

/// The log file and its write cursor. Holding its mutex makes a thread the
/// group-commit leader: only the leader writes or fsyncs the file.
struct WalFile {
    io: Box<dyn StorageIo>,
    retry: RetryPolicy,
    /// Absolute LSN of file offset 0.
    base: Lsn,
    /// Absolute LSN up to which frames have been written to the file.
    flushed: Lsn,
    /// Commit records written to the file since the last fsync.
    unsynced_commits: u64,
}

/// State shared between committers and the group-commit leader without any
/// file or io lock: the durable watermark, sync accounting, the poison slot
/// and the follower parking lot.
pub(crate) struct WalShared {
    /// Absolute LSN up to which the log is known durable (fsynced).
    durable: AtomicU64,
    syncs: AtomicU64,
    group_rounds: AtomicU64,
    group_members: AtomicU64,
    /// First fatal log failure, if any. Once set, every writer surfaces
    /// `WriterPoisoned`; readers keep serving committed memory.
    poisoned: StdMutex<Option<String>>,
    wait_lock: StdMutex<()>,
    wait_cv: Condvar,
}

impl WalShared {
    fn new(durable: Lsn) -> Arc<WalShared> {
        Arc::new(WalShared {
            durable: AtomicU64::new(durable),
            syncs: AtomicU64::new(0),
            group_rounds: AtomicU64::new(0),
            group_members: AtomicU64::new(0),
            poisoned: StdMutex::new(None),
            wait_lock: StdMutex::new(()),
            wait_cv: Condvar::new(),
        })
    }

    pub(crate) fn durable(&self) -> Lsn {
        self.durable.load(Ordering::Acquire)
    }

    pub(crate) fn poisoned(&self) -> Option<String> {
        lock(&self.poisoned).clone()
    }

    /// Record the first fatal failure (first writer wins).
    pub(crate) fn poison(&self, why: &str) {
        let mut slot = lock(&self.poisoned);
        if slot.is_none() {
            *slot = Some(why.to_string());
        }
    }

    /// Wake every follower parked on the durable watermark.
    pub(crate) fn notify_all(&self) {
        drop(lock(&self.wait_lock));
        self.wait_cv.notify_all();
    }

    /// Park until the leader makes progress. The wait is bounded so a lost
    /// wakeup costs at most one short timeout, not a hang.
    pub(crate) fn wait_for_progress(&self) {
        let guard = lock(&self.wait_lock);
        let _ = self.wait_cv.wait_timeout(guard, Duration::from_millis(2));
    }
}

/// Write every pending frame to the file, in enqueue order, one `write_at`
/// per frame at the `flushed` cursor. On failure the frame goes back to the
/// queue front: the cursor has not advanced, so a later drain retries the
/// same frame at the same offset (a torn transient write is repaired by its
/// own retry, and `flushed + pending` always accounts for `end`).
fn drain_into(f: &mut WalFile, queue: &StdMutex<WalQueue>) -> StorageResult<()> {
    loop {
        let Some(frame) = lock(queue).frames.pop_front() else {
            return Ok(());
        };
        let offset = f.flushed - f.base;
        let retry = f.retry;
        let io = &mut f.io;
        if let Err(e) = retry.run(|| io.write_at(offset, &frame.bytes)) {
            lock(queue).frames.push_front(frame);
            return Err(e.into());
        }
        f.flushed += frame.bytes.len() as u64;
        f.unsynced_commits += frame.commits;
    }
}

/// Fsync the file if the durable watermark is behind the flushed cursor,
/// then publish the new watermark and the group accounting. fsync failures
/// are *not* retried: after a failed fsync the kernel may have dropped the
/// dirty pages, so a retry that succeeds proves nothing.
fn sync_flushed(f: &mut WalFile, shared: &WalShared) -> StorageResult<()> {
    if shared.durable() < f.flushed {
        f.io.sync()?;
        shared.syncs.fetch_add(1, Ordering::Relaxed);
        if f.unsynced_commits > 0 {
            shared.group_rounds.fetch_add(1, Ordering::Relaxed);
            shared
                .group_members
                .fetch_add(f.unsynced_commits, Ordering::Relaxed);
            f.unsynced_commits = 0;
        }
        shared.durable.store(f.flushed, Ordering::Release);
    }
    Ok(())
}

/// The WAL's concurrency handles, cloneable onto the buffer pool so
/// `wait_durable` can lead or follow a group commit without the io latch.
#[derive(Clone)]
pub(crate) struct CommitHandles {
    file: Arc<StdMutex<WalFile>>,
    queue: Arc<StdMutex<WalQueue>>,
    shared: Arc<WalShared>,
}

impl CommitHandles {
    pub(crate) fn durable(&self) -> Lsn {
        self.shared.durable()
    }

    pub(crate) fn poisoned(&self) -> Option<String> {
        self.shared.poisoned()
    }

    pub(crate) fn poison(&self, why: &str) {
        self.shared.poison(why);
    }

    pub(crate) fn notify_all(&self) {
        self.shared.notify_all();
    }

    pub(crate) fn wait_for_progress(&self) {
        self.shared.wait_for_progress();
    }

    /// Try to become the group-commit leader. `Ok(true)`: led a round
    /// (drained the queue and fsynced whatever was behind the watermark).
    /// `Ok(false)`: another leader holds the file — park and re-check.
    /// `Err`: the round failed; the caller decides about poisoning.
    pub(crate) fn try_lead_sync(&self) -> StorageResult<bool> {
        let mut f = match self.file.try_lock() {
            Ok(f) => f,
            Err(TryLockError::WouldBlock) => return Ok(false),
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
        };
        drain_into(&mut f, &self.queue)?;
        sync_flushed(&mut f, &self.shared)?;
        Ok(true)
    }

    /// Lead a group-commit round, waiting for the file if another leader
    /// holds it (background-checkpoint path).
    pub(crate) fn lead_sync_blocking(&self) -> StorageResult<()> {
        let mut f = lock(&self.file);
        drain_into(&mut f, &self.queue)?;
        sync_flushed(&mut f, &self.shared)
    }
}

/// The write-ahead log.
pub struct Wal {
    file: Arc<StdMutex<WalFile>>,
    queue: Arc<StdMutex<WalQueue>>,
    shared: Arc<WalShared>,
    path: PathBuf,
    /// Mirror of the file-side base LSN (changes only at open/reset, which
    /// both hold the file lock).
    base: Lsn,
    /// Absolute end-of-log LSN: the next *enqueue* position. Advanced under
    /// the io latch, which serializes appends and keeps the log in commit
    /// order.
    end: Lsn,
    next_txn: u64,
    /// Enqueue-side counters; fsync and group counters live in `shared`.
    stats: WalStats,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("end", &self.end)
            .field("durable", &self.shared.durable())
            .finish()
    }
}

/// The WAL path for a database file: the same path with `.wal` appended
/// (`repo.crimson` → `repo.crimson.wal`).
pub fn wal_path_for(db_path: &Path) -> PathBuf {
    let mut os = db_path.as_os_str().to_owned();
    os.push(".wal");
    PathBuf::from(os)
}

impl Wal {
    fn from_parts(io: Box<dyn StorageIo>, path: PathBuf, base: Lsn) -> Self {
        let start = base + WAL_HEADER;
        Wal {
            file: Arc::new(StdMutex::new(WalFile {
                io,
                retry: RetryPolicy::default(),
                base,
                flushed: start,
                unsynced_commits: 0,
            })),
            queue: Arc::new(StdMutex::new(WalQueue::default())),
            shared: WalShared::new(start),
            path,
            base,
            end: start,
            next_txn: 1,
            stats: WalStats::default(),
        }
    }

    /// Create a fresh (empty) log, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let wal = Self::from_parts(Box::new(DiskIo::new(file)), path, 0);
        {
            let mut f = lock(&wal.file);
            write_header(&mut f, 0)?;
        }
        Ok(wal)
    }

    /// Open an existing log (creating an empty one when absent), dropping any
    /// torn tail so subsequent appends start after the last intact record.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        if !path.exists() {
            return Self::create(path);
        }
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut io: Box<dyn StorageIo> = Box::new(DiskIo::new(file));
        let len = io.len()?;
        if len < WAL_HEADER {
            // Interrupted creation: start over.
            drop(io);
            return Self::create(path);
        }
        let mut header = [0u8; WAL_HEADER as usize];
        let n = io.read_at(0, &mut header)?;
        if n < WAL_HEADER as usize {
            return Err(StorageError::Corrupted(
                "write-ahead log header too short".to_string(),
            ));
        }
        if &header[0..8] != WAL_MAGIC {
            return Err(StorageError::InvalidDatabase(
                "write-ahead log has a bad magic number".to_string(),
            ));
        }
        let base = u64::from_le_bytes(header[8..16].try_into().expect("16-byte header"));
        let mut wal = Self::from_parts(io, path, base);
        // Position end after the last intact record and drop any torn tail.
        let (metas, _torn) = wal.scan_raw()?;
        wal.next_txn = metas.iter().map(|m| m.txn).max().unwrap_or(0) + 1;
        let valid = wal.end - wal.base;
        {
            let mut f = lock(&wal.file);
            f.io.set_len(valid)?;
            f.flushed = wal.end;
        }
        wal.shared.durable.store(wal.end, Ordering::Release);
        Ok(wal)
    }

    /// Replace the I/O backend in place: `f` receives the current backend
    /// and returns the one to use from now on (typically wrapping it in a
    /// fault injector).
    pub(crate) fn wrap_io(&mut self, f: impl FnOnce(Box<dyn StorageIo>) -> Box<dyn StorageIo>) {
        struct Placeholder;
        impl StorageIo for Placeholder {
            fn read_at(&mut self, _: u64, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::other("I/O backend is being replaced"))
            }
            fn write_at(&mut self, _: u64, _: &[u8]) -> io::Result<()> {
                Err(io::Error::other("I/O backend is being replaced"))
            }
            fn sync(&mut self) -> io::Result<()> {
                Err(io::Error::other("I/O backend is being replaced"))
            }
            fn set_len(&mut self, _: u64) -> io::Result<()> {
                Err(io::Error::other("I/O backend is being replaced"))
            }
            fn len(&mut self) -> io::Result<u64> {
                Err(io::Error::other("I/O backend is being replaced"))
            }
        }
        let mut file = lock(&self.file);
        let current = std::mem::replace(&mut file.io, Box::new(Placeholder));
        file.io = f(current);
    }

    /// Configure how transient I/O errors are retried.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        lock(&self.file).retry = policy;
    }

    /// Absolute LSN of the end of the log (next append position).
    pub fn end_lsn(&self) -> Lsn {
        self.end
    }

    /// Absolute LSN of the first record position in the (un-truncated) log.
    /// `end_lsn() - start_lsn()` is the current log backlog in bytes.
    pub fn start_lsn(&self) -> Lsn {
        self.base + WAL_HEADER
    }

    /// Absolute LSN up to which the log is durable.
    pub fn durable_lsn(&self) -> Lsn {
        self.shared.durable()
    }

    /// Counters since the last [`Wal::reset_stats`].
    pub fn stats(&self) -> WalStats {
        WalStats {
            syncs: self.shared.syncs.load(Ordering::Relaxed),
            group_rounds: self.shared.group_rounds.load(Ordering::Relaxed),
            group_members: self.shared.group_members.load(Ordering::Relaxed),
            ..self.stats
        }
    }

    /// Reset activity counters.
    pub fn reset_stats(&mut self) {
        self.stats = WalStats::default();
        self.shared.syncs.store(0, Ordering::Relaxed);
        self.shared.group_rounds.store(0, Ordering::Relaxed);
        self.shared.group_members.store(0, Ordering::Relaxed);
    }

    /// The concurrency handles the buffer pool parks committers on.
    pub(crate) fn commit_handles(&self) -> CommitHandles {
        CommitHandles {
            file: Arc::clone(&self.file),
            queue: Arc::clone(&self.queue),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Record a fatal log failure: every subsequent writer surfaces
    /// `WriterPoisoned`.
    pub(crate) fn poison(&self, why: &str) {
        self.shared.poison(why);
    }

    /// The recorded fatal failure, if any.
    pub(crate) fn poisoned(&self) -> Option<String> {
        self.shared.poisoned()
    }

    /// Allocate the next transaction id.
    pub fn next_txn_id(&mut self) -> u64 {
        let id = self.next_txn;
        self.next_txn += 1;
        id
    }

    /// Append a page image (after-image at commit; `undo = true` for a
    /// before-image logged at steal time). Returns the record's LSN.
    pub fn append_image(
        &mut self,
        kind: WalRecordKind,
        txn: u64,
        pid: PageId,
        image: &[u8],
    ) -> StorageResult<Lsn> {
        debug_assert_eq!(image.len(), PAGE_SIZE);
        debug_assert!(kind != WalRecordKind::Commit);
        let mut body = Vec::with_capacity(1 + 16 + PAGE_SIZE);
        body.push(kind.to_u8());
        body.extend_from_slice(&txn.to_le_bytes());
        body.extend_from_slice(&pid.0.to_le_bytes());
        body.extend_from_slice(image);
        let lsn = self.append_frame(&body, 0)?;
        self.stats.page_images += 1;
        Ok(lsn)
    }

    /// Append a commit record carrying the file-header state.
    pub fn append_commit(
        &mut self,
        txn: u64,
        page_count: u64,
        catalog_root: u64,
        user_meta: u64,
    ) -> StorageResult<Lsn> {
        let mut body = Vec::with_capacity(1 + 32);
        body.push(WalRecordKind::Commit.to_u8());
        body.extend_from_slice(&txn.to_le_bytes());
        body.extend_from_slice(&page_count.to_le_bytes());
        body.extend_from_slice(&catalog_root.to_le_bytes());
        body.extend_from_slice(&user_meta.to_le_bytes());
        let lsn = self.append_frame(&body, 1)?;
        self.stats.commits += 1;
        Ok(lsn)
    }

    fn append_frame(&mut self, body: &[u8], commits: u64) -> StorageResult<Lsn> {
        let mut frame = Vec::with_capacity(FRAME_HEADER + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(body).to_le_bytes());
        frame.extend_from_slice(body);
        let lsn = self.end;
        let len = frame.len() as u64;
        lock(&self.queue).frames.push_back(PendingFrame {
            bytes: frame,
            commits,
        });
        self.end += len;
        // Opportunistic write-through: when no group-commit leader holds the
        // file, drain here so write failures surface at the append site (the
        // legacy contract — a failed append rolls its transaction back).
        // Under contention the enqueue stands and the leader writes it.
        let drained = match self.file.try_lock() {
            Ok(mut f) => drain_into(&mut f, &self.queue),
            Err(TryLockError::WouldBlock) => Ok(()),
            Err(TryLockError::Poisoned(e)) => drain_into(&mut e.into_inner(), &self.queue),
        };
        if let Err(e) = drained {
            // Un-enqueue this frame. Appends are serialized by the io latch
            // and a failed drain stops at the failing frame, so this frame
            // is still the newest entry; removing it and giving back its LSN
            // range lets the caller roll back as if nothing had been logged.
            let popped = lock(&self.queue)
                .frames
                .pop_back()
                .expect("failed append leaves its frame queued");
            debug_assert_eq!(popped.bytes.len() as u64, len);
            self.end = lsn;
            return Err(e);
        }
        self.stats.appends += 1;
        self.stats.bytes += len;
        Ok(lsn)
    }

    /// Make the whole log durable (no-op when already durable): drain the
    /// commit queue to the file and fsync if the durable watermark is
    /// behind.
    pub fn sync(&mut self) -> StorageResult<()> {
        let mut f = lock(&self.file);
        drain_into(&mut f, &self.queue)?;
        sync_flushed(&mut f, &self.shared)
    }

    /// Truncate the log (checkpoint). The base LSN advances so LSNs remain
    /// monotone across truncations.
    pub fn reset(&mut self) -> StorageResult<()> {
        let mut f = lock(&self.file);
        drain_into(&mut f, &self.queue)?;
        self.base = self.end;
        f.base = self.base;
        write_header(&mut f, self.base)?;
        f.io.set_len(WAL_HEADER)?;
        f.io.sync()?;
        self.end = self.base + WAL_HEADER;
        f.flushed = self.end;
        f.unsynced_commits = 0;
        self.shared.durable.store(self.end, Ordering::Release);
        Ok(())
    }

    /// Scan all intact records, returning their headers and whether the scan
    /// stopped at a torn tail. Drains any pending frames first (the scan
    /// reads the file), then positions `self.end` after the last intact
    /// record.
    pub(crate) fn scan_raw(&mut self) -> StorageResult<(Vec<RecordMeta>, bool)> {
        let mut f = lock(&self.file);
        drain_into(&mut f, &self.queue)?;
        let file_len = f.io.len()?;
        let mut metas = Vec::new();
        let mut offset = WAL_HEADER;
        let mut torn = false;
        let mut header = [0u8; FRAME_HEADER];
        while offset + FRAME_HEADER as u64 <= file_len {
            let retry = f.retry;
            let io = &mut f.io;
            let got = retry.run(|| io.read_at(offset, &mut header));
            match got {
                Ok(n) if n == FRAME_HEADER => {}
                Ok(_) => {
                    torn = true;
                    break;
                }
                Err(e) => return Err(e.into()),
            }
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as u64;
            let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
            if len == 0
                || len > (PAGE_SIZE + 64) as u64
                || offset + FRAME_HEADER as u64 + len > file_len
            {
                torn = true;
                break;
            }
            let mut body = vec![0u8; len as usize];
            let body_offset = offset + FRAME_HEADER as u64;
            let io = &mut f.io;
            let got = retry.run(|| io.read_at(body_offset, &mut body));
            match got {
                Ok(n) if n == body.len() => {}
                Ok(_) => {
                    torn = true;
                    break;
                }
                Err(e) => return Err(e.into()),
            }
            if crc32(&body) != crc {
                torn = true;
                break;
            }
            match decode_body(offset, &body) {
                Some(meta) => metas.push(meta),
                None => {
                    torn = true;
                    break;
                }
            }
            offset += FRAME_HEADER as u64 + len;
        }
        if offset < file_len {
            torn = true;
        }
        self.end = self.base + offset;
        f.flushed = self.end;
        Ok((metas, torn))
    }

    /// Read a page image at the file offset recorded by
    /// [`Wal::scan_raw`]. Frame CRCs were already validated by the scan, so
    /// the bytes returned here are exactly what the logger wrote.
    pub(crate) fn read_image_at(&mut self, image_offset: u64) -> StorageResult<Vec<u8>> {
        let mut image = vec![0u8; PAGE_SIZE];
        let mut f = lock(&self.file);
        let retry = f.retry;
        let io = &mut f.io;
        let n = retry.run(|| io.read_at(image_offset, &mut image))?;
        if n < PAGE_SIZE {
            return Err(StorageError::Corrupted(
                "write-ahead log image truncated".to_string(),
            ));
        }
        Ok(image)
    }

    /// The latest *committed* after-image of `pid` still present in the
    /// un-truncated log, re-validating frame CRCs along the way. This is
    /// the WAL-based repair source for a page that fails its checksum on
    /// disk: every committed write since the last checkpoint is still in
    /// the log, so the newest committed image *is* the page's true content.
    ///
    /// Returns `None` when the log holds no committed image for the page
    /// (e.g. the page was last written before the last checkpoint).
    pub(crate) fn latest_committed_image(&mut self, pid: PageId) -> StorageResult<Option<Vec<u8>>> {
        let (metas, _torn) = self.scan_raw()?;
        let committed: HashSet<u64> = metas
            .iter()
            .filter(|m| m.kind == WalRecordKind::Commit)
            .map(|m| m.txn)
            .collect();
        let best = metas.iter().rfind(|m| {
            m.kind == WalRecordKind::PageImage && m.pid == pid.0 && committed.contains(&m.txn)
        });
        match best {
            Some(m) => Ok(Some(self.read_image_at(m.image_offset)?)),
            None => Ok(None),
        }
    }
}

fn write_header(f: &mut WalFile, base: u64) -> StorageResult<()> {
    let mut header = [0u8; WAL_HEADER as usize];
    header[0..8].copy_from_slice(WAL_MAGIC);
    header[8..16].copy_from_slice(&base.to_le_bytes());
    let retry = f.retry;
    let io = &mut f.io;
    retry.run(|| io.write_at(0, &header))?;
    f.io.sync()?;
    Ok(())
}

fn decode_body(file_offset: u64, body: &[u8]) -> Option<RecordMeta> {
    let kind = WalRecordKind::from_u8(*body.first()?)?;
    let u64_at = |off: usize| -> Option<u64> {
        body.get(off..off + 8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    };
    match kind {
        WalRecordKind::PageImage | WalRecordKind::Undo => {
            if body.len() != 1 + 16 + PAGE_SIZE {
                return None;
            }
            Some(RecordMeta {
                kind,
                txn: u64_at(1)?,
                pid: u64_at(9)?,
                page_count: 0,
                catalog_root: 0,
                user_meta: 0,
                image_offset: file_offset + FRAME_HEADER as u64 + 17,
            })
        }
        WalRecordKind::Commit => {
            if body.len() != 1 + 32 {
                return None;
            }
            Some(RecordMeta {
                kind,
                txn: u64_at(1)?,
                page_count: u64_at(9)?,
                catalog_root: u64_at(17)?,
                user_meta: u64_at(25)?,
                pid: 0,
                image_offset: 0,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// Replay the log against the data file: restore each page to the payload of
/// its last applicable record (last committed after-image or last loser
/// before-image, whichever is later in the log), restore the header from the
/// last commit record, fsync the data file, then truncate the log.
pub(crate) fn recover(pager: &mut Pager, wal: &mut Wal) -> StorageResult<RecoveryReport> {
    let (metas, torn) = wal.scan_raw()?;
    let mut report = RecoveryReport {
        wal_bytes: wal.end_lsn() - (wal.base + WAL_HEADER),
        records: metas.len() as u64,
        torn_tail: torn,
        ..Default::default()
    };
    if metas.is_empty() {
        wal.reset()?;
        return Ok(report);
    }

    // Analysis: which transactions committed, and what header state the last
    // one recorded.
    let mut committed: HashMap<u64, ()> = HashMap::new();
    let mut losers: HashMap<u64, ()> = HashMap::new();
    let mut last_commit: Option<RecordMeta> = None;
    for m in &metas {
        match m.kind {
            WalRecordKind::Commit => {
                committed.insert(m.txn, ());
                losers.remove(&m.txn);
                last_commit = Some(*m);
            }
            WalRecordKind::PageImage | WalRecordKind::Undo => {
                if !committed.contains_key(&m.txn) {
                    losers.insert(m.txn, ());
                }
            }
        }
    }
    // A transaction both seen before its commit and committed later is not a
    // loser; rebuild the loser set properly.
    losers.retain(|txn, _| !committed.contains_key(txn));
    report.committed_txns = committed.len() as u64;
    report.loser_txns = losers.len() as u64;

    // Per page: the last applicable full-image record decides the content.
    let mut last_for_page: HashMap<u64, RecordMeta> = HashMap::new();
    for m in &metas {
        let applicable = match m.kind {
            WalRecordKind::PageImage => committed.contains_key(&m.txn),
            WalRecordKind::Undo => losers.contains_key(&m.txn),
            WalRecordKind::Commit => false,
        };
        if applicable {
            last_for_page.insert(m.pid, *m);
        }
    }

    // Header state: keep the checkpointed header unless a later commit
    // superseded it.
    let mut page_count = pager.page_count();
    let mut catalog_root = pager.catalog_root();
    let mut user_meta = pager.user_meta();
    if let Some(c) = last_commit {
        page_count = page_count.max(c.page_count);
        catalog_root = PageId(c.catalog_root);
        user_meta = PageId(c.user_meta);
    }
    pager.restore_header(page_count, catalog_root, user_meta, wal.end_lsn());

    // Apply images. Pages at or beyond the recovered page count are
    // unreachable garbage from loser allocations; skip them.
    let mut pids: Vec<u64> = last_for_page.keys().copied().collect();
    pids.sort_unstable();
    for pid in pids {
        let m = last_for_page[&pid];
        if pid >= page_count {
            continue;
        }
        let image = wal.read_image_at(m.image_offset)?;
        let page = crate::page::Page::from_bytes(image);
        pager.write_page(PageId(pid), &page)?;
        match m.kind {
            WalRecordKind::PageImage => report.pages_redone += 1,
            WalRecordKind::Undo => report.pages_undone += 1,
            WalRecordKind::Commit => unreachable!(),
        }
    }
    pager.sync()?;
    wal.reset()?;
    Ok(report)
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) — implemented locally; the build has no network
// access for a checksum crate.
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// CRC32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    #[test]
    fn crc32_known_values() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tempdir().unwrap();
        let mut wal = Wal::create(dir.path().join("t.wal")).unwrap();
        let image = vec![7u8; PAGE_SIZE];
        let l1 = wal
            .append_image(WalRecordKind::PageImage, 1, PageId(3), &image)
            .unwrap();
        let l2 = wal.append_commit(1, 4, 2, 0).unwrap();
        assert!(l2 > l1);
        wal.sync().unwrap();
        let (metas, torn) = wal.scan_raw().unwrap();
        assert!(!torn);
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].kind, WalRecordKind::PageImage);
        assert_eq!(metas[0].pid, 3);
        assert_eq!(metas[1].kind, WalRecordKind::Commit);
        assert_eq!(metas[1].page_count, 4);
        let back = wal.read_image_at(metas[0].image_offset).unwrap();
        assert_eq!(back, image);
    }

    #[test]
    fn torn_tail_is_dropped_on_open() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.wal");
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append_commit(1, 2, 0, 0).unwrap();
            wal.append_commit(2, 3, 0, 0).unwrap();
            wal.sync().unwrap();
        }
        // Chop the last record in half.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let mut wal = Wal::open(&path).unwrap();
        let (metas, torn) = wal.scan_raw().unwrap();
        assert!(!torn, "open() must have truncated the torn tail");
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].page_count, 2);
        // Appending after the torn tail keeps the log parseable.
        wal.append_commit(3, 5, 0, 0).unwrap();
        let (metas, _) = wal.scan_raw().unwrap();
        assert_eq!(metas.len(), 2);
    }

    #[test]
    fn corrupt_crc_ends_scan() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.wal");
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append_commit(1, 2, 0, 0).unwrap();
            wal.append_commit(2, 3, 0, 0).unwrap();
            wal.sync().unwrap();
        }
        // Flip a byte inside the second record's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut wal = Wal::open(&path).unwrap();
        let (metas, _) = wal.scan_raw().unwrap();
        assert_eq!(metas.len(), 1);
    }

    #[test]
    fn reset_advances_base_lsn() {
        let dir = tempdir().unwrap();
        let mut wal = Wal::create(dir.path().join("t.wal")).unwrap();
        wal.append_commit(1, 2, 0, 0).unwrap();
        let end_before = wal.end_lsn();
        wal.reset().unwrap();
        assert!(wal.end_lsn() >= end_before);
        let (metas, torn) = wal.scan_raw().unwrap();
        assert!(metas.is_empty());
        assert!(!torn);
        // LSNs after the reset are larger than any before it.
        let lsn = wal.append_commit(2, 2, 0, 0).unwrap();
        assert!(lsn >= end_before);
    }

    #[test]
    fn injected_crash_tears_the_append() {
        use crate::io::{shared_schedule, FaultIo, FaultSchedule, FileKind};
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.wal");
        let mut wal = Wal::create(&path).unwrap();
        wal.append_commit(1, 2, 0, 0).unwrap();
        let schedule = shared_schedule(FaultSchedule::inert());
        schedule.lock().crash_at_wal_append(0);
        let s = schedule.clone();
        wal.wrap_io(move |inner| Box::new(FaultIo::new(inner, FileKind::Wal, s)));
        assert!(wal.append_commit(2, 3, 0, 0).is_err());
        assert!(schedule.lock().crashed());
        // Everything after the crash fails.
        assert!(wal.append_commit(3, 4, 0, 0).is_err());
        assert!(wal.sync().is_err());
        // Reopening drops the torn half-record.
        let mut wal = Wal::open(&path).unwrap();
        let (metas, _) = wal.scan_raw().unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].txn, 1);
    }

    #[test]
    fn latest_committed_image_picks_newest_committed() {
        let dir = tempdir().unwrap();
        let mut wal = Wal::create(dir.path().join("t.wal")).unwrap();
        let old = vec![1u8; PAGE_SIZE];
        let new = vec![2u8; PAGE_SIZE];
        let uncommitted = vec![3u8; PAGE_SIZE];
        wal.append_image(WalRecordKind::PageImage, 1, PageId(5), &old)
            .unwrap();
        wal.append_commit(1, 6, 0, 0).unwrap();
        wal.append_image(WalRecordKind::PageImage, 2, PageId(5), &new)
            .unwrap();
        wal.append_commit(2, 6, 0, 0).unwrap();
        // A later image from a transaction that never committed must not win.
        wal.append_image(WalRecordKind::PageImage, 3, PageId(5), &uncommitted)
            .unwrap();
        wal.sync().unwrap();
        let got = wal.latest_committed_image(PageId(5)).unwrap().unwrap();
        assert_eq!(got, new);
        assert!(wal.latest_committed_image(PageId(9)).unwrap().is_none());
    }

    #[test]
    fn group_accounting_counts_rounds_and_members() {
        let dir = tempdir().unwrap();
        let mut wal = Wal::create(dir.path().join("t.wal")).unwrap();
        // Three commit records, one fsync: one round of three members.
        wal.append_commit(1, 2, 0, 0).unwrap();
        wal.append_commit(2, 2, 0, 0).unwrap();
        wal.append_commit(3, 2, 0, 0).unwrap();
        wal.sync().unwrap();
        let stats = wal.stats();
        assert_eq!(stats.group_rounds, 1);
        assert_eq!(stats.group_members, 3);
        // A sync with nothing new is free.
        wal.sync().unwrap();
        assert_eq!(wal.stats().syncs, 1);
        // A lone commit is a round of one.
        wal.append_commit(4, 2, 0, 0).unwrap();
        wal.sync().unwrap();
        let stats = wal.stats();
        assert_eq!(stats.group_rounds, 2);
        assert_eq!(stats.group_members, 4);
    }

    #[test]
    fn commit_handles_lead_and_observe_durability() {
        let dir = tempdir().unwrap();
        let mut wal = Wal::create(dir.path().join("t.wal")).unwrap();
        let handles = wal.commit_handles();
        let lsn = wal.append_commit(1, 2, 0, 0).unwrap();
        // Write-through happened, but durability requires a led round.
        assert!(handles.durable() <= lsn);
        assert!(handles.try_lead_sync().unwrap());
        assert!(handles.durable() > lsn);
        assert!(handles.poisoned().is_none());
        handles.poison("test poison");
        assert_eq!(handles.poisoned().as_deref(), Some("test poison"));
    }

    #[test]
    fn wal_path_suffix() {
        assert_eq!(
            wal_path_for(Path::new("/tmp/x/repo.crimson")),
            PathBuf::from("/tmp/x/repo.crimson.wal")
        );
    }
}
