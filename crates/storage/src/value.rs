//! Typed values, row cell encoding and order-preserving key encoding.
//!
//! Two encodings live here:
//!
//! * **cell encoding** ([`Value::encode_cell`] / [`Value::decode_cell`]) —
//!   compact, self-describing bytes used inside heap records;
//! * **key encoding** ([`Value::encode_key`]) — bytes whose lexicographic
//!   order matches the natural order of the values, used as B+tree keys so
//!   that range scans (e.g. "all nodes with cumulative time ≥ t") work by
//!   plain byte comparison.

use crate::error::{StorageError, StorageResult};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Text,
    /// Raw bytes.
    Bytes,
    /// Boolean.
    Bool,
}

impl ValueType {
    /// Single-byte tag used in encodings and the catalog.
    pub fn tag(self) -> u8 {
        match self {
            ValueType::Int => 1,
            ValueType::Float => 2,
            ValueType::Text => 3,
            ValueType::Bytes => 4,
            ValueType::Bool => 5,
        }
    }

    /// Inverse of [`ValueType::tag`].
    pub fn from_tag(tag: u8) -> StorageResult<Self> {
        Ok(match tag {
            1 => ValueType::Int,
            2 => ValueType::Float,
            3 => ValueType::Text,
            4 => ValueType::Bytes,
            5 => ValueType::Bool,
            other => {
                return Err(StorageError::Corrupted(format!(
                    "unknown value type tag {other}"
                )))
            }
        })
    }
}

/// A dynamically typed cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL-style NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Convenience constructor for byte values.
    pub fn bytes(b: impl Into<Vec<u8>>) -> Self {
        Value::Bytes(b.into())
    }

    /// The value's type, or `None` for NULL.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Text(_) => Some(ValueType::Text),
            Value::Bytes(_) => Some(ValueType::Bytes),
            Value::Bool(_) => Some(ValueType::Bool),
        }
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an integer (also accepts Bool as 0/1).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Extract a float (also accepts Int).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extract a string slice.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Extract raw bytes.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Extract a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(v) => Some(*v != 0),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Cell encoding (self-describing, compact)
    // ------------------------------------------------------------------

    /// Append the cell encoding of this value to `out`.
    pub fn encode_cell(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(v) => {
                out.push(1);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Float(v) => {
                out.push(2);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Text(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                out.push(4);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
            Value::Bool(b) => {
                out.push(5);
                out.push(*b as u8);
            }
        }
    }

    /// Decode one cell from `buf` starting at `pos`; returns the value and
    /// the new position.
    pub fn decode_cell(buf: &[u8], pos: usize) -> StorageResult<(Value, usize)> {
        let tag = *buf.get(pos).ok_or_else(|| truncated("cell tag"))?;
        let mut p = pos + 1;
        let value = match tag {
            0 => Value::Null,
            1 => {
                let raw = read_array::<8>(buf, p)?;
                p += 8;
                Value::Int(i64::from_le_bytes(raw))
            }
            2 => {
                let raw = read_array::<8>(buf, p)?;
                p += 8;
                Value::Float(f64::from_le_bytes(raw))
            }
            3 | 4 => {
                let raw = read_array::<4>(buf, p)?;
                p += 4;
                let len = u32::from_le_bytes(raw) as usize;
                let bytes = buf
                    .get(p..p + len)
                    .ok_or_else(|| truncated("cell payload"))?;
                p += len;
                if tag == 3 {
                    let s = std::str::from_utf8(bytes).map_err(|_| {
                        StorageError::Corrupted("invalid UTF-8 in text cell".into())
                    })?;
                    Value::Text(s.to_string())
                } else {
                    Value::Bytes(bytes.to_vec())
                }
            }
            5 => {
                let b = *buf.get(p).ok_or_else(|| truncated("bool cell"))?;
                p += 1;
                Value::Bool(b != 0)
            }
            other => {
                return Err(StorageError::Corrupted(format!("unknown cell tag {other}")));
            }
        };
        Ok((value, p))
    }

    // ------------------------------------------------------------------
    // Key encoding (order-preserving)
    // ------------------------------------------------------------------

    /// Append an order-preserving key encoding of this value to `out`.
    ///
    /// Ordering across types follows the tag order (Null < Int/Float < Text <
    /// Bytes < Bool); within a type, byte order equals value order. Int and
    /// Float share a numeric class only when the caller keeps column types
    /// homogeneous (which the schema layer enforces), so each uses its own
    /// tag here.
    pub fn encode_key(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0x00),
            Value::Int(v) => {
                out.push(0x10);
                // Flip the sign bit so negative numbers order below positives.
                let bits = (*v as u64) ^ (1 << 63);
                out.extend_from_slice(&bits.to_be_bytes());
            }
            Value::Float(v) => {
                out.push(0x20);
                out.extend_from_slice(&encode_f64_orderable(*v));
            }
            Value::Text(s) => {
                out.push(0x30);
                escape_bytes(s.as_bytes(), out);
            }
            Value::Bytes(b) => {
                out.push(0x40);
                escape_bytes(b, out);
            }
            Value::Bool(b) => {
                out.push(0x50);
                out.push(*b as u8);
            }
        }
    }

    /// Convenience: the key encoding as an owned buffer.
    pub fn key_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_key(&mut out);
        out
    }

    /// Total order consistent with the key encoding (used by tests and the
    /// in-memory sort paths). NULLs sort first, NaN sorts above all floats.
    pub fn order(&self, other: &Value) -> Ordering {
        self.key_bytes().cmp(&other.key_bytes())
    }
}

/// Byte-escape `data` into `out` so that the encoding of a string is never a
/// prefix of the encoding of a longer string *and* order is preserved:
/// each 0x00 byte becomes 0x00 0xFF, and the value is terminated by 0x00 0x00.
fn escape_bytes(data: &[u8], out: &mut Vec<u8>) {
    for &b in data {
        if b == 0x00 {
            out.push(0x00);
            out.push(0xFF);
        } else {
            out.push(b);
        }
    }
    out.push(0x00);
    out.push(0x00);
}

/// Order-preserving encoding of an `f64`: positive numbers get the sign bit
/// flipped; negative numbers are bitwise inverted. NaN maps above +inf.
fn encode_f64_orderable(v: f64) -> [u8; 8] {
    let bits = v.to_bits();
    let transformed = if bits & (1 << 63) == 0 {
        bits | (1 << 63)
    } else {
        !bits
    };
    transformed.to_be_bytes()
}

fn read_array<const N: usize>(buf: &[u8], pos: usize) -> StorageResult<[u8; N]> {
    let slice = buf
        .get(pos..pos + N)
        .ok_or_else(|| truncated("fixed-width cell"))?;
    let mut out = [0u8; N];
    out.copy_from_slice(slice);
    Ok(out)
}

fn truncated(what: &str) -> StorageError {
    StorageError::Corrupted(format!("truncated {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let mut buf = Vec::new();
        v.encode_cell(&mut buf);
        let (back, used) = Value::decode_cell(&buf, 0).unwrap();
        assert_eq!(back, v);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn cell_roundtrips() {
        roundtrip(Value::Null);
        roundtrip(Value::Int(0));
        roundtrip(Value::Int(-123456789));
        roundtrip(Value::Int(i64::MAX));
        roundtrip(Value::Float(3.25));
        roundtrip(Value::Float(-0.0));
        roundtrip(Value::Text("".into()));
        roundtrip(Value::Text("species name with spaces".into()));
        roundtrip(Value::Bytes(vec![0, 1, 2, 255]));
        roundtrip(Value::Bool(true));
        roundtrip(Value::Bool(false));
    }

    #[test]
    fn multiple_cells_sequential_decode() {
        let values = vec![
            Value::Int(5),
            Value::text("abc"),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
        ];
        let mut buf = Vec::new();
        for v in &values {
            v.encode_cell(&mut buf);
        }
        let mut pos = 0;
        let mut decoded = Vec::new();
        while pos < buf.len() {
            let (v, p) = Value::decode_cell(&buf, pos).unwrap();
            decoded.push(v);
            pos = p;
        }
        assert_eq!(decoded, values);
    }

    #[test]
    fn decode_rejects_truncation_and_bad_tags() {
        assert!(Value::decode_cell(&[], 0).is_err());
        assert!(Value::decode_cell(&[1, 0, 0], 0).is_err());
        assert!(Value::decode_cell(&[99], 0).is_err());
        // Text with invalid UTF-8.
        let mut buf = vec![3];
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Value::decode_cell(&buf, 0).is_err());
    }

    #[test]
    fn int_key_order() {
        let values = [i64::MIN, -100, -1, 0, 1, 42, i64::MAX];
        for w in values.windows(2) {
            let a = Value::Int(w[0]).key_bytes();
            let b = Value::Int(w[1]).key_bytes();
            assert!(a < b, "{} should sort before {}", w[0], w[1]);
        }
    }

    #[test]
    fn float_key_order() {
        let values = [
            f64::NEG_INFINITY,
            -1e9,
            -1.5,
            -0.0,
            0.0,
            1e-12,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for i in 0..values.len() {
            for j in 0..values.len() {
                let a = Value::Float(values[i]).key_bytes();
                let b = Value::Float(values[j]).key_bytes();
                // -0.0 and 0.0 compare equal numerically but not bytewise;
                // only require strict agreement when the floats differ.
                if values[i] < values[j] {
                    assert!(a < b, "{} should sort before {}", values[i], values[j]);
                }
                if values[i] > values[j] {
                    assert!(a > b, "{} should sort after {}", values[i], values[j]);
                }
            }
        }
        // NaN sorts at the top of the float class.
        let nan = Value::Float(f64::NAN).key_bytes();
        assert!(nan > Value::Float(f64::INFINITY).key_bytes());
    }

    #[test]
    fn text_key_order_and_prefix_safety() {
        let a = Value::text("abc").key_bytes();
        let b = Value::text("abd").key_bytes();
        let c = Value::text("ab").key_bytes();
        assert!(a < b);
        assert!(c < a);
        // A string is never a prefix-equal of a longer string's encoding when
        // compared as keys with appended suffixes.
        let mut a_with_suffix = Value::text("ab").key_bytes();
        a_with_suffix.extend_from_slice(&[0xFF; 8]);
        assert!(a_with_suffix != a);
    }

    #[test]
    fn text_with_nul_bytes_orders_correctly() {
        let a = Value::Bytes(vec![1, 0, 2]).key_bytes();
        let b = Value::Bytes(vec![1, 0, 3]).key_bytes();
        let c = Value::Bytes(vec![1, 1]).key_bytes();
        assert!(a < b);
        assert!(a < c);
    }

    #[test]
    fn order_method_matches_partial_ord_for_same_type() {
        assert_eq!(Value::Int(1).order(&Value::Int(2)), Ordering::Less);
        assert_eq!(Value::text("z").order(&Value::text("a")), Ordering::Greater);
        assert_eq!(Value::Float(1.0).order(&Value::Float(1.0)), Ordering::Equal);
        assert_eq!(Value::Null.order(&Value::Int(0)), Ordering::Less);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::Int(5).as_float(), Some(5.0));
        assert_eq!(Value::text("x").as_text(), Some("x"));
        assert_eq!(Value::bytes(vec![1]).as_bytes(), Some(&[1u8][..]));
        assert_eq!(Value::Int(0).as_bool(), Some(false));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.value_type(), None);
        assert_eq!(Value::Float(1.0).value_type(), Some(ValueType::Float));
    }

    #[test]
    fn type_tags_roundtrip() {
        for t in [
            ValueType::Int,
            ValueType::Float,
            ValueType::Text,
            ValueType::Bytes,
            ValueType::Bool,
        ] {
            assert_eq!(ValueType::from_tag(t.tag()).unwrap(), t);
        }
        assert!(ValueType::from_tag(77).is_err());
    }
}
