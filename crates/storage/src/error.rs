//! Error handling for the storage engine.

use std::fmt;
use std::io;

/// Convenience alias used throughout the crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors produced by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file is not a Crimson database (bad magic number) or is from an
    /// incompatible version.
    InvalidDatabase(String),
    /// A page id was out of range or referenced a freed page.
    InvalidPage(u64),
    /// A record id referenced a missing slot.
    InvalidRecord {
        /// Page the record was expected on.
        page: u64,
        /// Slot index within the page.
        slot: u16,
    },
    /// A record or key is too large to fit on a single page.
    RecordTooLarge(usize),
    /// The named table does not exist.
    UnknownTable(String),
    /// The named index does not exist.
    UnknownIndex(String),
    /// The named column does not exist in the table schema.
    UnknownColumn(String),
    /// A table or index with this name already exists.
    AlreadyExists(String),
    /// A row did not match the table schema.
    SchemaMismatch(String),
    /// A unique index rejected a duplicate key.
    DuplicateKey(String),
    /// A bulk load received keys that are not strictly increasing, or that
    /// do not sort after every key already in the target structure.
    BulkOutOfOrder(String),
    /// Stored bytes could not be decoded (corruption or version skew).
    Corrupted(String),
    /// Every buffer-pool frame is pinned; no page can be brought in. The
    /// payload is the pool's frame capacity.
    PoolExhausted(usize),
    /// A transaction is already open (the engine is single-writer) or the
    /// attempted operation (checkpoint, logging toggle) is illegal while
    /// one is open.
    TransactionActive,
    /// `commit`/`rollback` was called with no open transaction.
    NoActiveTransaction,
    /// A page failed its checksum on read: the stored CRC32 and the CRC32
    /// of the bytes actually read disagree (media corruption).
    CorruptPage {
        /// Page id that failed verification.
        page: u64,
        /// Checksum recorded when the page was last written.
        expected: u32,
        /// Checksum of the bytes read from disk.
        found: u32,
    },
    /// An fsync failed earlier, so durability of previously acknowledged
    /// writes is unknown; the writer refuses further mutations. Readers
    /// keep serving the last committed snapshot.
    WriterPoisoned(String),
    /// The database was opened in (degraded) read-only mode; mutation was
    /// refused.
    ReadOnly,
    /// A versioned read asked for a snapshot epoch whose page versions have
    /// already been garbage-collected (the bounded version chain dropped
    /// them). The reader should re-pin a fresh epoch and retry.
    SnapshotRetired {
        /// The epoch the reader had pinned.
        epoch: u64,
        /// The oldest epoch the pool can still serve.
        floor: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::InvalidDatabase(m) => write!(f, "invalid database file: {m}"),
            StorageError::InvalidPage(p) => write!(f, "invalid page id {p}"),
            StorageError::InvalidRecord { page, slot } => {
                write!(f, "invalid record id (page {page}, slot {slot})")
            }
            StorageError::RecordTooLarge(n) => {
                write!(f, "record of {n} bytes exceeds the maximum page payload")
            }
            StorageError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            StorageError::UnknownIndex(i) => write!(f, "unknown index `{i}`"),
            StorageError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            StorageError::AlreadyExists(n) => write!(f, "`{n}` already exists"),
            StorageError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StorageError::DuplicateKey(k) => write!(f, "duplicate key {k} in unique index"),
            StorageError::BulkOutOfOrder(m) => {
                write!(f, "bulk load keys out of order: {m}")
            }
            StorageError::Corrupted(m) => write!(f, "corrupted data: {m}"),
            StorageError::PoolExhausted(cap) => {
                write!(f, "all {cap} buffer-pool frames are pinned")
            }
            StorageError::TransactionActive => {
                write!(f, "a transaction is already active")
            }
            StorageError::NoActiveTransaction => {
                write!(f, "no transaction is active")
            }
            StorageError::CorruptPage {
                page,
                expected,
                found,
            } => write!(
                f,
                "corrupt page {page}: checksum mismatch \
                 (expected {expected:#010x}, found {found:#010x})"
            ),
            StorageError::WriterPoisoned(m) => {
                write!(f, "writer poisoned by earlier fsync failure: {m}")
            }
            StorageError::ReadOnly => {
                write!(f, "database is open in read-only (degraded) mode")
            }
            StorageError::SnapshotRetired { epoch, floor } => write!(
                f,
                "snapshot epoch {epoch} retired: oldest readable epoch is {floor}; \
                 re-pin and retry"
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StorageError::InvalidPage(7).to_string().contains("7"));
        assert!(StorageError::UnknownTable("t".into())
            .to_string()
            .contains("`t`"));
        assert!(StorageError::RecordTooLarge(123456)
            .to_string()
            .contains("123456"));
        assert!(StorageError::InvalidRecord { page: 3, slot: 9 }
            .to_string()
            .contains("slot 9"));
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        let io_err = io::Error::new(io::ErrorKind::NotFound, "missing");
        let err: StorageError = io_err.into();
        assert!(matches!(err, StorageError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}
