//! Catalog: persistent metadata about tables and indexes.
//!
//! The catalog is a small JSON document stored in a chain of dedicated pages
//! (page layout: `len: u32`, `next: u64`, payload). The file header records
//! the first catalog page. JSON keeps the metadata human-inspectable with a
//! hex dump and avoids inventing yet another binary format for a structure
//! that is read once per open and written only on DDL or flush.

use crate::buffer::{BufferPool, PageSource};
use crate::error::{StorageError, StorageResult};
use crate::page::{PageId, PAGE_SIZE};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

const CAT_LEN: usize = 0;
const CAT_NEXT: usize = 4;
const CAT_HEADER: usize = 12;
const CAT_PAYLOAD: usize = PAGE_SIZE - CAT_HEADER;

/// Metadata for one secondary index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexMeta {
    /// Index name (unique per table); by convention `<table>_<column>_idx`.
    pub name: String,
    /// Indexed column name.
    pub column: String,
    /// Whether duplicate keys are rejected.
    pub unique: bool,
    /// Root page of the backing B+tree.
    pub root_page: u64,
}

/// Metadata for one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Column definitions.
    pub schema: Schema,
    /// First page of the backing heap file.
    pub heap_first_page: u64,
    /// Secondary indexes.
    pub indexes: Vec<IndexMeta>,
}

/// Metadata for one raw (table-less) B+tree index. Raw indexes map
/// application-encoded keys to `u64` payloads without a backing heap table —
/// the persistence vehicle for covering indexes such as the node-interval
/// index, where the key carries the whole entry and fetching a heap row per
/// hit would defeat the point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawIndexMeta {
    /// Index name (unique across raw indexes).
    pub name: String,
    /// Root page of the backing B+tree.
    pub root_page: u64,
}

/// The full catalog.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    /// All tables, in creation order. A table's position is its `TableId`.
    pub tables: Vec<TableMeta>,
    /// Raw B+tree indexes, in creation order. Position is the `RawIndexId`.
    pub raw_indexes: Vec<RawIndexMeta>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Find a table index by name.
    pub fn table_id(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.name == name)
    }

    /// Serialize and persist the catalog, reusing/extending the existing page
    /// chain starting at the header's catalog root (allocating it on first
    /// save). Returns the first catalog page.
    pub fn save(&self, pool: &BufferPool) -> StorageResult<PageId> {
        let payload =
            serde_json::to_vec(self).map_err(|e| StorageError::Corrupted(e.to_string()))?;
        let mut first = pool.catalog_root();
        if first.is_null() {
            first = pool.allocate_page()?;
            pool.set_catalog_root(first);
        }
        let mut remaining: &[u8] = &payload;
        let mut current = first;
        loop {
            let chunk_len = remaining.len().min(CAT_PAYLOAD);
            let (chunk, rest) = remaining.split_at(chunk_len);
            let existing_next = pool.with_page(current, |p| PageId(p.read_u64(CAT_NEXT)))?;
            let next = if rest.is_empty() {
                PageId::NULL
            } else if existing_next.is_null() {
                pool.allocate_page()?
            } else {
                existing_next
            };
            pool.with_page_mut(current, |p| {
                p.write_u32(CAT_LEN, chunk.len() as u32);
                p.write_u64(CAT_NEXT, next.0);
                p.write_bytes(CAT_HEADER, chunk);
            })?;
            if rest.is_empty() {
                break;
            }
            remaining = rest;
            current = next;
        }
        Ok(first)
    }

    /// Load the catalog from the page chain recorded in the file header.
    /// A null root yields an empty catalog (fresh database). Generic over
    /// the [`PageSource`]: snapshot readers load the last committed catalog
    /// through the overlay-aware view.
    pub fn load<S: PageSource>(pool: S) -> StorageResult<Catalog> {
        let first = PageSource::catalog_root(&pool);
        if first.is_null() {
            return Ok(Catalog::new());
        }
        let mut payload = Vec::new();
        let mut current = first;
        loop {
            let (chunk, next) = pool.with_page(current, |p| {
                let len = p.read_u32(CAT_LEN) as usize;
                let next = PageId(p.read_u64(CAT_NEXT));
                (
                    p.read_bytes(CAT_HEADER, len.min(CAT_PAYLOAD)).to_vec(),
                    next,
                )
            })?;
            payload.extend_from_slice(&chunk);
            if next.is_null() {
                break;
            }
            current = next;
        }
        if payload.is_empty() {
            return Ok(Catalog::new());
        }
        serde_json::from_slice(&payload)
            .map_err(|e| StorageError::Corrupted(format!("catalog decode failed: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;
    use crate::schema::ColumnDef;
    use crate::value::ValueType;
    use tempfile::tempdir;

    fn pool() -> (tempfile::TempDir, BufferPool) {
        let dir = tempdir().unwrap();
        let pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        (dir, BufferPool::with_capacity(pager, 64).unwrap())
    }

    fn sample_table(name: &str) -> TableMeta {
        TableMeta {
            name: name.to_string(),
            schema: Schema::new(vec![
                ColumnDef::not_null("id", ValueType::Int),
                ColumnDef::new("name", ValueType::Text),
            ]),
            heap_first_page: 7,
            indexes: vec![IndexMeta {
                name: format!("{name}_name_idx"),
                column: "name".to_string(),
                unique: false,
                root_page: 9,
            }],
        }
    }

    #[test]
    fn empty_catalog_loads_when_no_root() {
        let (_d, pool) = pool();
        let cat = Catalog::load(&pool).unwrap();
        assert!(cat.tables.is_empty());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let (_d, pool) = pool();
        let mut cat = Catalog::new();
        cat.tables.push(sample_table("tree_nodes"));
        cat.tables.push(sample_table("species"));
        cat.save(&pool).unwrap();
        let back = Catalog::load(&pool).unwrap();
        assert_eq!(back, cat);
        assert_eq!(back.table_id("species"), Some(1));
        assert_eq!(back.table_id("missing"), None);
    }

    #[test]
    fn resave_grows_and_shrinks() {
        let (_d, pool) = pool();
        let mut cat = Catalog::new();
        // Large catalog spanning multiple pages.
        for i in 0..200 {
            cat.tables
                .push(sample_table(&format!("table_with_a_rather_long_name_{i}")));
        }
        cat.save(&pool).unwrap();
        let back = Catalog::load(&pool).unwrap();
        assert_eq!(back.tables.len(), 200);
        // Shrink and resave — must load the small version afterwards.
        cat.tables.truncate(3);
        cat.save(&pool).unwrap();
        let back = Catalog::load(&pool).unwrap();
        assert_eq!(back.tables.len(), 3);
    }

    #[test]
    fn persists_across_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        {
            let pager = Pager::create(&path).unwrap();
            let pool = BufferPool::new(pager).unwrap();
            let mut cat = Catalog::new();
            cat.tables.push(sample_table("persisted"));
            cat.save(&pool).unwrap();
            pool.flush().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        let pool = BufferPool::new(pager).unwrap();
        let cat = Catalog::load(&pool).unwrap();
        assert_eq!(cat.tables.len(), 1);
        assert_eq!(cat.tables[0].name, "persisted");
        assert_eq!(cat.tables[0].indexes[0].root_page, 9);
    }
}
