//! # crimson-storage — embedded relational storage engine
//!
//! The Crimson paper stores phylogenetic trees "in relational form" inside a
//! relational database and builds indexes over node labels, species names and
//! evolutionary times. This crate is the from-scratch substrate standing in
//! for that DBMS: a small, disk-backed, page-oriented storage engine with
//!
//! * a file-backed **pager** ([`pager::Pager`]) managing fixed-size pages,
//! * a **write-ahead log** ([`wal::Wal`]) with CRC-framed physical
//!   page-image records, group fsync on commit, redo/undo crash recovery
//!   and log truncation at checkpoints — see below,
//! * a fixed-capacity **buffer pool** ([`buffer::BufferPool`]) with clock
//!   (second-chance) eviction, `Arc<Page>` frames, frame pinning for
//!   in-flight scans, and zero-clone write-back — see below,
//! * **slotted-page heap files** ([`heap::HeapFile`]) holding variable-length
//!   records addressed by [`heap::RecordId`],
//! * **B+tree indexes** ([`btree::BTree`]) over order-preserving binary keys,
//!   supporting point lookups and range scans (the access paths Crimson needs
//!   for species names, node labels and cumulative evolutionary time),
//! * **raw indexes** ([`db::Database::create_raw_index`]): table-less
//!   B+trees for covering keys — the persistence vehicle of the interval
//!   index behind Crimson's structure queries,
//! * a typed **row/schema layer** ([`schema`], [`value`]) and a **catalog**
//!   ([`catalog`]) persisting table, index and raw-index metadata,
//! * a [`db::Database`] facade tying the pieces together.
//!
//! ## Buffer pool: sharded latches, clock eviction, snapshot reads
//!
//! Residency is bounded by a fixed frame capacity; the pool never grows past
//! it whatever the file size. The page table is sharded (16 short-held
//! mutexes) and each frame carries its own read/write latch, atomic pin
//! count and reference bit, so any number of reader threads hit the cache
//! concurrently; file I/O, the WAL and the single open transaction
//! serialize on one writer/io latch (latch order: io → shard map → frame →
//! mvcc registry → version map). All statistics counters are atomic.
//! Eviction is clock
//! second-chance: every access sets a frame's reference bit, and the hand
//! sweeps shards round-robin clearing bits until it finds an unpinned,
//! unreferenced victim. Dirty victims are written back through a borrow of
//! the frame (`Page` is never cloned on the write path). Pinned frames
//! ([`buffer::BufferPool::pin`]) are skipped by the sweep; a pool whose
//! every frame is pinned surfaces [`StorageError::PoolExhausted`] instead
//! of growing. Range scans pin one leaf at a time and decode entries lazily
//! from the pinned frame, so a scan neither copies whole leaves nor has its
//! leaf evicted mid-read.
//!
//! Concurrent readers see **versioned committed snapshots** (MVCC): a
//! transaction's first touch of a page publishes its before-image into a
//! bounded per-page version chain, and each commit graduates those images
//! into committed history stamped with the commit sequence. A reader pins
//! a snapshot **epoch** ([`buffer::BufferPool::pin_epoch`],
//! [`db::DbReader::at_epoch`]) and reads every page as of that sequence —
//! an in-flight transaction is invisible, readers never block behind the
//! writer, and a pinned multi-page read never retries however fast commits
//! land. The [`buffer::PageSource`] trait makes the B+tree, heap and
//! catalog read paths generic over the current view, the committed view
//! ([`buffer::Snapshot`]) and the pinned-epoch view ([`db::EpochSnapshot`]);
//! `ARCHITECTURE.md` documents the latching protocol and the epoch-pinning
//! rule in full.
//!
//! ## Transactions, write-ahead logging and recovery
//!
//! Every [`db::Database`] mutation runs inside a transaction — the caller's
//! explicit [`db::Database::begin`]/[`db::Database::commit`]/
//! [`db::Database::rollback`], or an implicit auto-commit per operation. At
//! commit the after-image of every dirtied page plus a commit record is
//! appended to the sibling `.wal` file (one fsync covers the group); the
//! buffer pool enforces WAL-before-data on eviction and flush, logging a
//! before-image first whenever an uncommitted dirty page must be stolen.
//! [`db::Database::flush`] is a checkpoint: it makes the data file durable
//! and truncates the log. Opening an existing file replays the log — redo
//! for committed transactions, undo for losers — before anything reads the
//! catalog ([`db::Database::recovery_report`]). `ARCHITECTURE.md` documents
//! the on-disk formats and the recovery protocol in full.
//!
//! The engine intentionally supports exactly the operational envelope the
//! paper's workload requires — bulk load, point/range reads, secondary
//! indexes, atomic durable transactions, single-writer/many-reader
//! concurrency — rather than a SQL surface or multi-writer concurrency.
//! See `DESIGN.md` §2 for the substitution argument.
//!
//! ```
//! use storage::db::Database;
//! use storage::schema::{ColumnDef, Schema};
//! use storage::value::{Value, ValueType};
//!
//! let dir = tempfile::tempdir().unwrap();
//! let mut db = Database::create(dir.path().join("example.crdb")).unwrap();
//! let schema = Schema::new(vec![
//!     ColumnDef::new("name", ValueType::Text),
//!     ColumnDef::new("weight", ValueType::Float),
//! ]);
//! let table = db.create_table("species", schema).unwrap();
//! db.insert(table, &[Value::text("Bha"), Value::Float(0.75)]).unwrap();
//! db.create_index(table, "name", true).unwrap();
//! let hits = db.index_lookup(table, "name", &Value::text("Bha")).unwrap();
//! assert_eq!(hits.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod db;
pub mod error;
pub mod heap;
pub mod io;
pub mod page;
pub mod pager;
pub mod schema;
pub mod value;
pub mod wal;

pub use buffer::{
    CheckpointPolicy, CheckpointerGuard, CrashPoint, EpochPin, PageSource, PinnedPage,
    ScrubOptions, ScrubStats, Snapshot,
};
pub use db::{Database, DbRead, DbReader, EpochSnapshot, EpochView, RawIndexId, TableId};
pub use error::{StorageError, StorageResult};
pub use heap::RecordId;
pub use io::{
    shared_schedule, FaultConfig, FaultSchedule, FaultStats, FileKind, RetryPolicy,
    SharedFaultSchedule,
};
pub use page::{PageId, PAGE_SIZE};
pub use schema::{ColumnDef, Row, Schema};
pub use value::{Value, ValueType};
pub use wal::RecoveryReport;
