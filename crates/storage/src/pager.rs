//! File-backed pager: reads, writes and allocates fixed-size pages.
//!
//! The pager owns the database file. Page 0 is the file header carrying a
//! magic number, a format version, the allocated page count and the page ids
//! of the catalog root. All higher-level structures (heap files, B+trees,
//! catalog) live in pages allocated through [`Pager::allocate_page`].
//!
//! ## Media-fault detection (format v2)
//!
//! Format v2 adds two checksum layers:
//!
//! * The header page carries a CRC32 of its own full 8 KiB (computed with
//!   the checksum field zeroed), so a flipped bit in the header surfaces as
//!   a typed [`StorageError::InvalidDatabase`] at open, never a panic or a
//!   silently wrong catalog root.
//! * Every data page has a CRC32 of its full content, kept in a sidecar
//!   checksum file (`<db>.sum`, rewritten atomically at every
//!   [`Pager::sync`], i.e. at checkpoint and recovery). Checksums live out
//!   of line because pages use all `PAGE_SIZE` bytes for payload (heap
//!   cells pack down from the page end), so an in-page trailer would
//!   change every page layout and break v1 files. Entries are verified on
//!   every disk read; a mismatch is a typed [`StorageError::CorruptPage`].
//!
//! v1 files still open: their pages are simply *unverified* until the next
//! checkpoint backfills the sidecar and bumps the header to v2. A missing
//! or damaged sidecar likewise degrades to "unverified" (never a false
//! corruption report) and heals at the next checkpoint.
//!
//! [`Pager::write_page`] records the new checksum **in memory only**; the
//! sidecar file is rewritten at the next [`Pager::sync`]. Between
//! checkpoints, disk pages can therefore be newer than the persisted
//! sidecar — from eviction write-backs and from the background
//! checkpointer's pre-flush of committed dirty pages. That window is safe
//! because every such write is WAL-covered (WAL-before-data): after a
//! crash, recovery rewrites each covered page from the log and the
//! checkpoint that ends recovery persists fresh checksums. The sidecar is
//! only ever trusted for pages the log no longer covers.
//!
//! All file I/O goes through the injectable [`StorageIo`] seam; transient
//! failures (`ErrorKind::Interrupted`) are retried with bounded exponential
//! backoff per the configured [`RetryPolicy`].

use crate::error::{StorageError, StorageResult};
use crate::io::{DiskIo, RetryPolicy, StorageIo};
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::wal::crc32;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"CRIMSON1";
/// Newest format this build writes.
const FORMAT_VERSION: u32 = 2;
/// Oldest format this build still opens (checksums are backfilled on the
/// next checkpoint, which also bumps the file to the current version).
const MIN_FORMAT_VERSION: u32 = 1;

const SUM_MAGIC: &[u8; 8] = b"CRIMSUM1";
const SUM_VERSION: u32 = 1;
/// Sidecar layout: magic(8) version(4) page_count(8).
const SUM_HEADER: usize = 20;

// Header layout (page 0):
//   0..8    magic
//   8..12   format version (u32)
//   12..20  page count (u64)
//   20..28  catalog root page (u64)
//   28..36  user metadata page (u64, reserved)
//   36..44  checkpoint LSN (u64): the WAL position of the last checkpoint
//   44..48  header CRC32 (v2+): CRC of the full header page with this
//           field zeroed
const HDR_VERSION: usize = 8;
const HDR_PAGE_COUNT: usize = 12;
const HDR_CATALOG_ROOT: usize = 20;
const HDR_USER_META: usize = 28;
const HDR_CHECKPOINT_LSN: usize = 36;
const HDR_HEADER_CRC: usize = 44;

/// Parse a little-endian `u32` out of the header, surfacing a typed
/// corruption error instead of panicking when the slice is short.
fn header_u32(header: &[u8], offset: usize, what: &str) -> StorageResult<u32> {
    header
        .get(offset..offset + 4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| StorageError::InvalidDatabase(format!("header truncated reading {what}")))
}

/// Parse a little-endian `u64` out of the header (typed error, no panic).
fn header_u64(header: &[u8], offset: usize, what: &str) -> StorageResult<u64> {
    header
        .get(offset..offset + 8)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| StorageError::InvalidDatabase(format!("header truncated reading {what}")))
}

/// The sidecar checksum file living next to a database file.
pub fn sum_path_for(db_path: &Path) -> PathBuf {
    let mut os = db_path.as_os_str().to_os_string();
    os.push(".sum");
    PathBuf::from(os)
}

/// Outcome of verifying one page against the checksum table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PageVerdict {
    /// Checksum known and matched.
    Verified,
    /// No checksum recorded for this page (v1 file or damaged sidecar);
    /// the content was accepted unverified.
    Unverified,
}

/// The pager: owns the file handle and the header page.
pub struct Pager {
    io: Box<dyn StorageIo>,
    path: PathBuf,
    page_count: u64,
    catalog_root: PageId,
    user_meta: PageId,
    checkpoint_lsn: u64,
    header_dirty: bool,
    fresh: bool,
    /// On-disk format version of this file (bumped to current at sync).
    version: u32,
    /// Per-page CRC32 table, indexed by page id. `None` = unknown (page 0,
    /// v1 files before backfill, damaged sidecar, freshly allocated pages).
    checksums: Vec<Option<u32>>,
    /// The sidecar existed but failed its own validation at open.
    sum_damaged: bool,
    retry: RetryPolicy,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("path", &self.path)
            .field("page_count", &self.page_count)
            .field("catalog_root", &self.catalog_root)
            .field("version", &self.version)
            .finish()
    }
}

impl Pager {
    /// Create a new database file, truncating any existing file at `path`.
    pub fn create(path: impl AsRef<Path>) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        // A stale sidecar from a previous database at this path would
        // produce false corruption reports; drop it.
        let _ = std::fs::remove_file(sum_path_for(&path));
        let mut pager = Pager {
            io: Box::new(DiskIo::new(file)),
            path,
            page_count: 1, // header page
            catalog_root: PageId::NULL,
            user_meta: PageId::NULL,
            checkpoint_lsn: 0,
            header_dirty: true,
            fresh: true,
            version: FORMAT_VERSION,
            checksums: vec![None],
            sum_damaged: false,
            retry: RetryPolicy::default(),
        };
        pager.write_header()?;
        Ok(pager)
    }

    /// Open an existing database file.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut io: Box<dyn StorageIo> = Box::new(DiskIo::new(file));
        let file_len = io.len()?;
        if file_len < PAGE_SIZE as u64 {
            return Err(StorageError::InvalidDatabase(format!(
                "file is {file_len} bytes, too short to hold the {PAGE_SIZE}-byte header page"
            )));
        }
        let mut header = vec![0u8; PAGE_SIZE];
        let n = io.read_at(0, &mut header)?;
        if n < PAGE_SIZE {
            return Err(StorageError::InvalidDatabase(format!(
                "short read of the header page ({n} of {PAGE_SIZE} bytes)"
            )));
        }
        if &header[0..8] != MAGIC {
            return Err(StorageError::InvalidDatabase(
                "bad magic number".to_string(),
            ));
        }
        let version = header_u32(&header, HDR_VERSION, "format version")?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(StorageError::InvalidDatabase(format!(
                "unsupported format version {version} (this build reads versions \
                 {MIN_FORMAT_VERSION} through {FORMAT_VERSION})"
            )));
        }
        if version >= 2 {
            let stored = header_u32(&header, HDR_HEADER_CRC, "header checksum")?;
            header[HDR_HEADER_CRC..HDR_HEADER_CRC + 4].copy_from_slice(&[0u8; 4]);
            let actual = crc32(&header);
            if stored != actual {
                return Err(StorageError::InvalidDatabase(format!(
                    "header page checksum mismatch \
                     (expected {stored:#010x}, found {actual:#010x}): \
                     the header page is corrupt"
                )));
            }
        }
        let page_count = header_u64(&header, HDR_PAGE_COUNT, "page count")?;
        if page_count == 0 {
            return Err(StorageError::InvalidDatabase(
                "header records zero pages (the header page itself is page 0)".to_string(),
            ));
        }
        let catalog_root = header_u64(&header, HDR_CATALOG_ROOT, "catalog root")?;
        if catalog_root >= page_count {
            return Err(StorageError::InvalidDatabase(format!(
                "catalog root {catalog_root} lies beyond the page count {page_count}"
            )));
        }
        let user_meta = header_u64(&header, HDR_USER_META, "user metadata page")?;
        let checkpoint_lsn = header_u64(&header, HDR_CHECKPOINT_LSN, "checkpoint LSN")?;
        let (checksums, sum_damaged) = if version >= 2 {
            load_checksums(&sum_path_for(&path), page_count)
        } else {
            (vec![None; page_count as usize], false)
        };
        Ok(Pager {
            io,
            path,
            page_count,
            catalog_root: PageId(catalog_root),
            user_meta: PageId(user_meta),
            checkpoint_lsn,
            header_dirty: false,
            fresh: false,
            version,
            checksums,
            sum_damaged,
            retry: RetryPolicy::default(),
        })
    }

    /// `true` when this pager was just created (no recovery needed).
    pub(crate) fn is_fresh(&self) -> bool {
        self.fresh
    }

    /// On-disk format version of the open file (1 or 2; files are bumped to
    /// the current version at the next sync).
    pub fn format_version(&self) -> u32 {
        self.version
    }

    /// `true` when the sidecar checksum file existed but failed its own
    /// validation at open (all pages degrade to unverified until the next
    /// checkpoint rebuilds it).
    pub fn checksum_sidecar_damaged(&self) -> bool {
        self.sum_damaged
    }

    /// Replace the I/O backend in place: `f` receives the current backend
    /// and returns the one to use from now on (typically wrapping it in a
    /// fault injector).
    pub(crate) fn wrap_io(&mut self, f: impl FnOnce(Box<dyn StorageIo>) -> Box<dyn StorageIo>) {
        let placeholder: Box<dyn StorageIo> = Box::new(PoisonIo);
        let current = std::mem::replace(&mut self.io, placeholder);
        self.io = f(current);
    }

    /// Configure how transient I/O errors are retried.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The WAL position recorded by the last checkpoint.
    pub fn checkpoint_lsn(&self) -> u64 {
        self.checkpoint_lsn
    }

    /// Record the WAL position of a checkpoint (persisted on the next header
    /// write).
    pub fn set_checkpoint_lsn(&mut self, lsn: u64) {
        self.checkpoint_lsn = lsn;
        self.header_dirty = true;
    }

    /// Overwrite the in-memory header state wholesale. Used by crash
    /// recovery (restoring the state of the last committed transaction) and
    /// by transaction rollback (restoring the begin-time snapshot).
    pub(crate) fn restore_header(
        &mut self,
        page_count: u64,
        catalog_root: PageId,
        user_meta: PageId,
        checkpoint_lsn: u64,
    ) {
        self.page_count = page_count;
        self.catalog_root = catalog_root;
        self.user_meta = user_meta;
        self.checkpoint_lsn = checkpoint_lsn;
        self.header_dirty = true;
    }

    /// Path of the underlying database file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages allocated so far (including the header page).
    pub fn page_count(&self) -> u64 {
        self.page_count
    }

    /// The page id of the catalog root, or NULL when not yet assigned.
    pub fn catalog_root(&self) -> PageId {
        self.catalog_root
    }

    /// Record the page id of the catalog root.
    pub fn set_catalog_root(&mut self, pid: PageId) {
        self.catalog_root = pid;
        self.header_dirty = true;
    }

    /// An extra application-defined metadata page id (reserved for callers).
    pub fn user_meta(&self) -> PageId {
        self.user_meta
    }

    /// Set the application-defined metadata page id.
    pub fn set_user_meta(&mut self, pid: PageId) {
        self.user_meta = pid;
        self.header_dirty = true;
    }

    /// Allocate a fresh page at the end of the file and return its id.
    /// The page contents on disk are undefined until first written.
    pub fn allocate_page(&mut self) -> StorageResult<PageId> {
        let pid = PageId(self.page_count);
        self.page_count += 1;
        self.header_dirty = true;
        // Whatever bytes the file holds at this offset are undefined until
        // the page is first written, so its checksum is unknown.
        *self.entry_mut(pid) = None;
        Ok(pid)
    }

    fn entry_mut(&mut self, pid: PageId) -> &mut Option<u32> {
        let idx = pid.0 as usize;
        if idx >= self.checksums.len() {
            self.checksums.resize(idx + 1, None);
        }
        &mut self.checksums[idx]
    }

    fn entry(&self, pid: PageId) -> Option<u32> {
        self.checksums.get(pid.0 as usize).copied().flatten()
    }

    /// `true` when a checksum is recorded for this page (reads of it are
    /// verified).
    pub(crate) fn checksum_known(&self, pid: PageId) -> bool {
        self.entry(pid).is_some()
    }

    /// Read the raw bytes of a page, zero-filling past end-of-file (the
    /// file may be shorter than the logical page count, and the trailing
    /// page may be short if a crash interrupted a write). Transient errors
    /// are retried per the policy. No checksum verification.
    fn read_page_raw(&mut self, pid: PageId) -> StorageResult<Vec<u8>> {
        let offset = pid.offset();
        let io = &mut self.io;
        let buf = self.retry.run(|| {
            let mut buf = vec![0u8; PAGE_SIZE];
            let _ = io.read_at(offset, &mut buf)?;
            Ok(buf)
        })?;
        Ok(buf)
    }

    /// Verify `buf` against the recorded checksum of `pid`.
    fn verify_buf(&self, pid: PageId, buf: &[u8]) -> Result<PageVerdict, (u32, u32)> {
        match self.entry(pid) {
            None => Ok(PageVerdict::Unverified),
            Some(expected) => {
                let found = crc32(buf);
                if expected == found {
                    Ok(PageVerdict::Verified)
                } else {
                    Err((expected, found))
                }
            }
        }
    }

    /// Read a page from disk, verifying its checksum when one is recorded.
    /// Reading a page that was allocated but never written returns a zeroed
    /// page. A checksum mismatch is re-read once (to rule out a transient
    /// in-flight corruption) and then surfaces as
    /// [`StorageError::CorruptPage`].
    pub fn read_page(&mut self, pid: PageId) -> StorageResult<Page> {
        if pid.0 >= self.page_count {
            return Err(StorageError::InvalidPage(pid.0));
        }
        let mut mismatch = (0u32, 0u32);
        for _ in 0..2 {
            let buf = self.read_page_raw(pid)?;
            match self.verify_buf(pid, &buf) {
                Ok(_) => return Ok(Page::from_bytes(buf)),
                Err(pair) => mismatch = pair,
            }
        }
        Err(StorageError::CorruptPage {
            page: pid.0,
            expected: mismatch.0,
            found: mismatch.1,
        })
    }

    /// Verify a page's on-disk bytes without materialising a [`Page`].
    /// Used by the scrubber.
    pub(crate) fn verify_page(&mut self, pid: PageId) -> StorageResult<PageVerdict> {
        if pid.0 >= self.page_count {
            return Err(StorageError::InvalidPage(pid.0));
        }
        let mut mismatch = (0u32, 0u32);
        for _ in 0..2 {
            let buf = self.read_page_raw(pid)?;
            match self.verify_buf(pid, &buf) {
                Ok(v) => return Ok(v),
                Err(pair) => mismatch = pair,
            }
        }
        Err(StorageError::CorruptPage {
            page: pid.0,
            expected: mismatch.0,
            found: mismatch.1,
        })
    }

    /// Record the checksum of a page's *current* disk content (used to
    /// backfill unknown entries; the content is trusted as-is).
    pub(crate) fn backfill_checksum(&mut self, pid: PageId) -> StorageResult<()> {
        if pid.0 >= self.page_count {
            return Err(StorageError::InvalidPage(pid.0));
        }
        let buf = self.read_page_raw(pid)?;
        *self.entry_mut(pid) = Some(crc32(&buf));
        Ok(())
    }

    /// Write a page to disk and record its checksum. Transient errors are
    /// retried per the policy.
    pub fn write_page(&mut self, pid: PageId, page: &Page) -> StorageResult<()> {
        if pid.0 >= self.page_count {
            return Err(StorageError::InvalidPage(pid.0));
        }
        let offset = pid.offset();
        let bytes = page.bytes();
        let io = &mut self.io;
        self.retry.run(|| io.write_at(offset, bytes))?;
        *self.entry_mut(pid) = Some(crc32(bytes));
        Ok(())
    }

    /// Persist the header page if it changed since the last sync.
    pub fn write_header(&mut self) -> StorageResult<()> {
        if !self.header_dirty {
            return Ok(());
        }
        let mut page = Page::new();
        page.write_bytes(0, MAGIC);
        page.write_u32(HDR_VERSION, self.version);
        page.write_u64(HDR_PAGE_COUNT, self.page_count);
        page.write_u64(HDR_CATALOG_ROOT, self.catalog_root.0);
        page.write_u64(HDR_USER_META, self.user_meta.0);
        page.write_u64(HDR_CHECKPOINT_LSN, self.checkpoint_lsn);
        if self.version >= 2 {
            // CRC over the full header page with the checksum field zeroed.
            page.write_u32(HDR_HEADER_CRC, crc32(page.bytes()));
        }
        let bytes = page.bytes();
        let io = &mut self.io;
        self.retry.run(|| io.write_at(0, bytes))?;
        self.header_dirty = false;
        Ok(())
    }

    /// Compute checksums for every page that lacks one, from current disk
    /// content. This is the v1 → v2 backfill (and the heal path for a
    /// damaged sidecar); it trusts the bytes as they stand.
    fn backfill_unknown(&mut self) -> StorageResult<()> {
        for raw in 1..self.page_count {
            let pid = PageId(raw);
            if !self.checksum_known(pid) {
                self.backfill_checksum(pid)?;
            }
        }
        Ok(())
    }

    /// Atomically rewrite the sidecar checksum file.
    fn save_checksums(&mut self) -> StorageResult<()> {
        let n = self.page_count as usize;
        let bitmap_len = n.div_ceil(8);
        let mut out = Vec::with_capacity(SUM_HEADER + bitmap_len + 4 * n + 4);
        out.extend_from_slice(SUM_MAGIC);
        out.extend_from_slice(&SUM_VERSION.to_le_bytes());
        out.extend_from_slice(&self.page_count.to_le_bytes());
        let mut bitmap = vec![0u8; bitmap_len];
        for (i, entry) in self.checksums.iter().take(n).enumerate() {
            if entry.is_some() {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        out.extend_from_slice(&bitmap);
        for i in 0..n {
            let v = self.checksums.get(i).copied().flatten().unwrap_or(0);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&crc32(&out).to_le_bytes());

        let final_path = sum_path_for(&self.path);
        let tmp_path = {
            let mut os = final_path.as_os_str().to_os_string();
            os.push(".tmp");
            PathBuf::from(os)
        };
        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(&out)?;
        tmp.sync_all()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &final_path)?;
        self.sum_damaged = false;
        Ok(())
    }

    /// Flush everything (header + OS buffers) to stable storage and persist
    /// the checksum table. A v1 file is backfilled and bumped to the
    /// current format version here — "checksums appear at the next
    /// checkpoint".
    pub fn sync(&mut self) -> StorageResult<()> {
        self.backfill_unknown()?;
        if self.version < FORMAT_VERSION {
            self.version = FORMAT_VERSION;
            self.header_dirty = true;
        }
        self.save_checksums()?;
        self.write_header()?;
        self.io.sync()?;
        Ok(())
    }
}

/// Load the sidecar checksum file. Any problem (missing file, bad magic,
/// failed self-CRC, size mismatch) degrades to "all unknown" — never a
/// false corruption report. Returns `(entries, damaged)` where `damaged`
/// means the file existed but failed validation.
fn load_checksums(path: &Path, page_count: u64) -> (Vec<Option<u32>>, bool) {
    let unknown = vec![None; page_count as usize];
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(_) => return (unknown, false), // no sidecar: v2 file before first checkpoint
    };
    if bytes.len() < SUM_HEADER + 4 || &bytes[0..8] != SUM_MAGIC {
        return (unknown, true);
    }
    let body_len = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[body_len..].try_into().unwrap());
    if crc32(&bytes[..body_len]) != stored {
        return (unknown, true);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SUM_VERSION {
        return (unknown, true);
    }
    let recorded = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let n = recorded.min(page_count) as usize;
    let bitmap_len = (recorded as usize).div_ceil(8);
    let entries_start = SUM_HEADER + bitmap_len;
    if entries_start + 4 * recorded as usize != body_len {
        return (unknown, true);
    }
    let bitmap = &bytes[SUM_HEADER..entries_start];
    let mut entries = vec![None; page_count as usize];
    for (i, entry) in entries.iter_mut().take(n).enumerate() {
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            let at = entries_start + 4 * i;
            *entry = Some(u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()));
        }
    }
    (entries, false)
}

/// Placeholder backend used only inside `wrap_io`'s swap; never operated on.
struct PoisonIo;

impl StorageIo for PoisonIo {
    fn read_at(&mut self, _: u64, _: &mut [u8]) -> std::io::Result<usize> {
        Err(std::io::Error::other("I/O backend is being replaced"))
    }
    fn write_at(&mut self, _: u64, _: &[u8]) -> std::io::Result<()> {
        Err(std::io::Error::other("I/O backend is being replaced"))
    }
    fn sync(&mut self) -> std::io::Result<()> {
        Err(std::io::Error::other("I/O backend is being replaced"))
    }
    fn set_len(&mut self, _: u64) -> std::io::Result<()> {
        Err(std::io::Error::other("I/O backend is being replaced"))
    }
    fn len(&mut self) -> std::io::Result<u64> {
        Err(std::io::Error::other("I/O backend is being replaced"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    #[test]
    fn create_allocate_write_read() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let mut pager = Pager::create(&path).unwrap();
        let pid = pager.allocate_page().unwrap();
        assert_eq!(pid, PageId(1));
        let mut page = Page::new();
        page.write_bytes(0, b"hello pages");
        pager.write_page(pid, &page).unwrap();
        let back = pager.read_page(pid).unwrap();
        assert_eq!(back.read_bytes(0, 11), b"hello pages");
    }

    #[test]
    fn reopen_preserves_header() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        {
            let mut pager = Pager::create(&path).unwrap();
            let p1 = pager.allocate_page().unwrap();
            let p2 = pager.allocate_page().unwrap();
            pager.set_catalog_root(p1);
            pager.set_user_meta(p2);
            let mut page = Page::new();
            page.write_u64(0, 777);
            pager.write_page(p2, &page).unwrap();
            pager.sync().unwrap();
        }
        let mut pager = Pager::open(&path).unwrap();
        assert_eq!(pager.page_count(), 3);
        assert_eq!(pager.catalog_root(), PageId(1));
        assert_eq!(pager.user_meta(), PageId(2));
        let page = pager.read_page(PageId(2)).unwrap();
        assert_eq!(page.read_u64(0), 777);
    }

    #[test]
    fn open_rejects_truncated_file() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        {
            let mut pager = Pager::create(&path).unwrap();
            pager.sync().unwrap();
        }
        // Chop the header page short; open must fail with a typed error, not
        // a panic.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(100).unwrap();
        drop(file);
        match Pager::open(&path) {
            Err(StorageError::InvalidDatabase(msg)) => {
                assert!(msg.contains("too short"), "unexpected message: {msg}")
            }
            other => panic!("expected InvalidDatabase, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_wrong_version() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        {
            let mut pager = Pager::create(&path).unwrap();
            pager.sync().unwrap();
        }
        // Rewrite the version field with a future version number.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HDR_VERSION..HDR_VERSION + 4].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match Pager::open(&path) {
            Err(StorageError::InvalidDatabase(msg)) => {
                assert!(msg.contains("version 99"), "unexpected message: {msg}")
            }
            other => panic!("expected InvalidDatabase, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_corrupt_header_fields() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        {
            let mut pager = Pager::create(&path).unwrap();
            pager.sync().unwrap();
        }
        // A catalog root beyond the page count is structural corruption. In
        // v2 the header CRC trips first, which is equally typed.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HDR_CATALOG_ROOT..HDR_CATALOG_ROOT + 8].copy_from_slice(&77u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Pager::open(&path),
            Err(StorageError::InvalidDatabase(_))
        ));
    }

    #[test]
    fn header_bit_flip_is_detected_at_open() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        {
            let mut pager = Pager::create(&path).unwrap();
            pager.allocate_page().unwrap();
            pager.sync().unwrap();
        }
        // Flip one bit in a header byte no structural check looks at: only
        // the header CRC can catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[100] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        match Pager::open(&path) {
            Err(StorageError::InvalidDatabase(msg)) => {
                assert!(msg.contains("checksum"), "unexpected message: {msg}")
            }
            other => panic!("expected InvalidDatabase, got {other:?}"),
        }
    }

    #[test]
    fn data_bit_flip_is_detected_as_corrupt_page() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let pid = {
            let mut pager = Pager::create(&path).unwrap();
            let pid = pager.allocate_page().unwrap();
            let mut page = Page::new();
            page.write_bytes(0, b"precious phylogeny");
            pager.write_page(pid, &page).unwrap();
            pager.sync().unwrap();
            pid
        };
        let mut bytes = std::fs::read(&path).unwrap();
        let at = pid.offset() as usize + 7;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let mut pager = Pager::open(&path).unwrap();
        match pager.read_page(pid) {
            Err(StorageError::CorruptPage {
                page,
                expected,
                found,
            }) => {
                assert_eq!(page, pid.0);
                assert_ne!(expected, found);
            }
            other => panic!("expected CorruptPage, got {other:?}"),
        }
    }

    #[test]
    fn v1_file_opens_unverified_and_upgrades_at_sync() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let pid = {
            let mut pager = Pager::create(&path).unwrap();
            let pid = pager.allocate_page().unwrap();
            let mut page = Page::new();
            page.write_u64(0, 4242);
            pager.write_page(pid, &page).unwrap();
            pager.sync().unwrap();
            pid
        };
        // Rewrite the header as a v1 header (no CRC field) and drop the
        // sidecar, emulating a file written by the previous format.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HDR_VERSION..HDR_VERSION + 4].copy_from_slice(&1u32.to_le_bytes());
        bytes[HDR_HEADER_CRC..HDR_HEADER_CRC + 4].copy_from_slice(&[0u8; 4]);
        std::fs::write(&path, &bytes).unwrap();
        std::fs::remove_file(sum_path_for(&path)).unwrap();

        let mut pager = Pager::open(&path).unwrap();
        assert_eq!(pager.format_version(), 1);
        assert!(!pager.checksum_known(pid), "v1 pages start unverified");
        assert_eq!(pager.read_page(pid).unwrap().read_u64(0), 4242);
        // The next sync backfills checksums and bumps the version.
        pager.sync().unwrap();
        assert_eq!(pager.format_version(), 2);
        assert!(pager.checksum_known(pid));
        drop(pager);
        let mut pager = Pager::open(&path).unwrap();
        assert_eq!(pager.format_version(), 2);
        assert!(pager.checksum_known(pid));
        assert_eq!(pager.read_page(pid).unwrap().read_u64(0), 4242);
    }

    #[test]
    fn damaged_sidecar_degrades_to_unverified_and_heals() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let pid = {
            let mut pager = Pager::create(&path).unwrap();
            let pid = pager.allocate_page().unwrap();
            let mut page = Page::new();
            page.write_u64(0, 11);
            pager.write_page(pid, &page).unwrap();
            pager.sync().unwrap();
            pid
        };
        // Corrupt the sidecar itself.
        let sum = sum_path_for(&path);
        let mut bytes = std::fs::read(&sum).unwrap();
        let last = bytes.len() - 10;
        bytes[last] ^= 0xFF;
        std::fs::write(&sum, &bytes).unwrap();

        let mut pager = Pager::open(&path).unwrap();
        assert!(pager.checksum_sidecar_damaged());
        assert!(!pager.checksum_known(pid));
        assert_eq!(pager.read_page(pid).unwrap().read_u64(0), 11);
        pager.sync().unwrap();
        assert!(!pager.checksum_sidecar_damaged());
        assert!(pager.checksum_known(pid));
    }

    #[test]
    fn checkpoint_lsn_roundtrips_through_header() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        {
            let mut pager = Pager::create(&path).unwrap();
            pager.set_checkpoint_lsn(0xAB_CDEF);
            pager.sync().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        assert_eq!(pager.checkpoint_lsn(), 0xAB_CDEF);
    }

    #[test]
    fn open_rejects_non_database() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("junk.bin");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        assert!(matches!(
            Pager::open(&path),
            Err(StorageError::InvalidDatabase(_))
        ));
    }

    #[test]
    fn read_unwritten_allocated_page_is_zeroed() {
        let dir = tempdir().unwrap();
        let mut pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        let pid = pager.allocate_page().unwrap();
        let page = pager.read_page(pid).unwrap();
        assert!(page.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_page_errors() {
        let dir = tempdir().unwrap();
        let mut pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        assert!(matches!(
            pager.read_page(PageId(5)),
            Err(StorageError::InvalidPage(5))
        ));
        let page = Page::new();
        assert!(matches!(
            pager.write_page(PageId(5), &page),
            Err(StorageError::InvalidPage(5))
        ));
    }

    #[test]
    fn many_pages_roundtrip() {
        let dir = tempdir().unwrap();
        let mut pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        let mut pids = Vec::new();
        for i in 0..64u64 {
            let pid = pager.allocate_page().unwrap();
            let mut page = Page::new();
            page.write_u64(0, i * 31);
            pager.write_page(pid, &page).unwrap();
            pids.push(pid);
        }
        for (i, pid) in pids.iter().enumerate() {
            let page = pager.read_page(*pid).unwrap();
            assert_eq!(page.read_u64(0), i as u64 * 31);
        }
    }
}
