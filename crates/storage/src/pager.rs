//! File-backed pager: reads, writes and allocates fixed-size pages.
//!
//! The pager owns the database file. Page 0 is the file header carrying a
//! magic number, a format version, the allocated page count and the page ids
//! of the catalog root. All higher-level structures (heap files, B+trees,
//! catalog) live in pages allocated through [`Pager::allocate_page`].

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"CRIMSON1";
const FORMAT_VERSION: u32 = 1;

// Header layout (page 0):
//   0..8    magic
//   8..12   format version (u32)
//   12..20  page count (u64)
//   20..28  catalog root page (u64)
//   28..36  user metadata page (u64, reserved)
const HDR_VERSION: usize = 8;
const HDR_PAGE_COUNT: usize = 12;
const HDR_CATALOG_ROOT: usize = 20;
const HDR_USER_META: usize = 28;

/// The pager: owns the file handle and the header page.
pub struct Pager {
    file: File,
    path: PathBuf,
    page_count: u64,
    catalog_root: PageId,
    user_meta: PageId,
    header_dirty: bool,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("path", &self.path)
            .field("page_count", &self.page_count)
            .field("catalog_root", &self.catalog_root)
            .finish()
    }
}

impl Pager {
    /// Create a new database file, truncating any existing file at `path`.
    pub fn create(path: impl AsRef<Path>) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut pager = Pager {
            file,
            path,
            page_count: 1, // header page
            catalog_root: PageId::NULL,
            user_meta: PageId::NULL,
            header_dirty: true,
        };
        pager.write_header()?;
        Ok(pager)
    }

    /// Open an existing database file.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut header = vec![0u8; PAGE_SIZE];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if &header[0..8] != MAGIC {
            return Err(StorageError::InvalidDatabase("bad magic number".to_string()));
        }
        let version = u32::from_le_bytes(header[HDR_VERSION..HDR_VERSION + 4].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(StorageError::InvalidDatabase(format!(
                "unsupported format version {version}"
            )));
        }
        let page_count =
            u64::from_le_bytes(header[HDR_PAGE_COUNT..HDR_PAGE_COUNT + 8].try_into().unwrap());
        let catalog_root =
            u64::from_le_bytes(header[HDR_CATALOG_ROOT..HDR_CATALOG_ROOT + 8].try_into().unwrap());
        let user_meta =
            u64::from_le_bytes(header[HDR_USER_META..HDR_USER_META + 8].try_into().unwrap());
        Ok(Pager {
            file,
            path,
            page_count,
            catalog_root: PageId(catalog_root),
            user_meta: PageId(user_meta),
            header_dirty: false,
        })
    }

    /// Path of the underlying database file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages allocated so far (including the header page).
    pub fn page_count(&self) -> u64 {
        self.page_count
    }

    /// The page id of the catalog root, or NULL when not yet assigned.
    pub fn catalog_root(&self) -> PageId {
        self.catalog_root
    }

    /// Record the page id of the catalog root.
    pub fn set_catalog_root(&mut self, pid: PageId) {
        self.catalog_root = pid;
        self.header_dirty = true;
    }

    /// An extra application-defined metadata page id (reserved for callers).
    pub fn user_meta(&self) -> PageId {
        self.user_meta
    }

    /// Set the application-defined metadata page id.
    pub fn set_user_meta(&mut self, pid: PageId) {
        self.user_meta = pid;
        self.header_dirty = true;
    }

    /// Allocate a fresh page at the end of the file and return its id.
    /// The page contents on disk are undefined until first written.
    pub fn allocate_page(&mut self) -> StorageResult<PageId> {
        let pid = PageId(self.page_count);
        self.page_count += 1;
        self.header_dirty = true;
        Ok(pid)
    }

    /// Read a page from disk. Reading a page that was allocated but never
    /// written returns a zeroed page (the file may be shorter than the
    /// logical page count).
    pub fn read_page(&mut self, pid: PageId) -> StorageResult<Page> {
        if pid.0 >= self.page_count {
            return Err(StorageError::InvalidPage(pid.0));
        }
        let file_len = self.file.metadata()?.len();
        if pid.offset() >= file_len {
            return Ok(Page::new());
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.seek(SeekFrom::Start(pid.offset()))?;
        // The trailing page may be short if a crash interrupted a write; treat
        // missing bytes as zeros.
        let mut read_total = 0usize;
        while read_total < PAGE_SIZE {
            let n = self.file.read(&mut buf[read_total..])?;
            if n == 0 {
                break;
            }
            read_total += n;
        }
        Ok(Page::from_bytes(buf))
    }

    /// Write a page to disk.
    pub fn write_page(&mut self, pid: PageId, page: &Page) -> StorageResult<()> {
        if pid.0 >= self.page_count {
            return Err(StorageError::InvalidPage(pid.0));
        }
        self.file.seek(SeekFrom::Start(pid.offset()))?;
        self.file.write_all(page.bytes())?;
        Ok(())
    }

    /// Persist the header page if it changed since the last sync.
    pub fn write_header(&mut self) -> StorageResult<()> {
        if !self.header_dirty {
            return Ok(());
        }
        let mut page = Page::new();
        page.write_bytes(0, MAGIC);
        page.write_u32(HDR_VERSION, FORMAT_VERSION);
        page.write_u64(HDR_PAGE_COUNT, self.page_count);
        page.write_u64(HDR_CATALOG_ROOT, self.catalog_root.0);
        page.write_u64(HDR_USER_META, self.user_meta.0);
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(page.bytes())?;
        self.header_dirty = false;
        Ok(())
    }

    /// Flush everything (header + OS buffers) to stable storage.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.write_header()?;
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    #[test]
    fn create_allocate_write_read() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let mut pager = Pager::create(&path).unwrap();
        let pid = pager.allocate_page().unwrap();
        assert_eq!(pid, PageId(1));
        let mut page = Page::new();
        page.write_bytes(0, b"hello pages");
        pager.write_page(pid, &page).unwrap();
        let back = pager.read_page(pid).unwrap();
        assert_eq!(back.read_bytes(0, 11), b"hello pages");
    }

    #[test]
    fn reopen_preserves_header() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        {
            let mut pager = Pager::create(&path).unwrap();
            let p1 = pager.allocate_page().unwrap();
            let p2 = pager.allocate_page().unwrap();
            pager.set_catalog_root(p1);
            pager.set_user_meta(p2);
            let mut page = Page::new();
            page.write_u64(0, 777);
            pager.write_page(p2, &page).unwrap();
            pager.sync().unwrap();
        }
        let mut pager = Pager::open(&path).unwrap();
        assert_eq!(pager.page_count(), 3);
        assert_eq!(pager.catalog_root(), PageId(1));
        assert_eq!(pager.user_meta(), PageId(2));
        let page = pager.read_page(PageId(2)).unwrap();
        assert_eq!(page.read_u64(0), 777);
    }

    #[test]
    fn open_rejects_non_database() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("junk.bin");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        assert!(matches!(Pager::open(&path), Err(StorageError::InvalidDatabase(_))));
    }

    #[test]
    fn read_unwritten_allocated_page_is_zeroed() {
        let dir = tempdir().unwrap();
        let mut pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        let pid = pager.allocate_page().unwrap();
        let page = pager.read_page(pid).unwrap();
        assert!(page.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_page_errors() {
        let dir = tempdir().unwrap();
        let mut pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        assert!(matches!(pager.read_page(PageId(5)), Err(StorageError::InvalidPage(5))));
        let page = Page::new();
        assert!(matches!(pager.write_page(PageId(5), &page), Err(StorageError::InvalidPage(5))));
    }

    #[test]
    fn many_pages_roundtrip() {
        let dir = tempdir().unwrap();
        let mut pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        let mut pids = Vec::new();
        for i in 0..64u64 {
            let pid = pager.allocate_page().unwrap();
            let mut page = Page::new();
            page.write_u64(0, i * 31);
            pager.write_page(pid, &page).unwrap();
            pids.push(pid);
        }
        for (i, pid) in pids.iter().enumerate() {
            let page = pager.read_page(*pid).unwrap();
            assert_eq!(page.read_u64(0), i as u64 * 31);
        }
    }
}
