//! File-backed pager: reads, writes and allocates fixed-size pages.
//!
//! The pager owns the database file. Page 0 is the file header carrying a
//! magic number, a format version, the allocated page count and the page ids
//! of the catalog root. All higher-level structures (heap files, B+trees,
//! catalog) live in pages allocated through [`Pager::allocate_page`].

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"CRIMSON1";
const FORMAT_VERSION: u32 = 1;

// Header layout (page 0):
//   0..8    magic
//   8..12   format version (u32)
//   12..20  page count (u64)
//   20..28  catalog root page (u64)
//   28..36  user metadata page (u64, reserved)
//   36..44  checkpoint LSN (u64): the WAL position of the last checkpoint
const HDR_VERSION: usize = 8;
const HDR_PAGE_COUNT: usize = 12;
const HDR_CATALOG_ROOT: usize = 20;
const HDR_USER_META: usize = 28;
const HDR_CHECKPOINT_LSN: usize = 36;

/// Parse a little-endian `u32` out of the header, surfacing a typed
/// corruption error instead of panicking when the slice is short.
fn header_u32(header: &[u8], offset: usize, what: &str) -> StorageResult<u32> {
    header
        .get(offset..offset + 4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| StorageError::InvalidDatabase(format!("header truncated reading {what}")))
}

/// Parse a little-endian `u64` out of the header (typed error, no panic).
fn header_u64(header: &[u8], offset: usize, what: &str) -> StorageResult<u64> {
    header
        .get(offset..offset + 8)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| StorageError::InvalidDatabase(format!("header truncated reading {what}")))
}

/// The pager: owns the file handle and the header page.
pub struct Pager {
    file: File,
    path: PathBuf,
    page_count: u64,
    catalog_root: PageId,
    user_meta: PageId,
    checkpoint_lsn: u64,
    header_dirty: bool,
    fresh: bool,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("path", &self.path)
            .field("page_count", &self.page_count)
            .field("catalog_root", &self.catalog_root)
            .finish()
    }
}

impl Pager {
    /// Create a new database file, truncating any existing file at `path`.
    pub fn create(path: impl AsRef<Path>) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut pager = Pager {
            file,
            path,
            page_count: 1, // header page
            catalog_root: PageId::NULL,
            user_meta: PageId::NULL,
            checkpoint_lsn: 0,
            header_dirty: true,
            fresh: true,
        };
        pager.write_header()?;
        Ok(pager)
    }

    /// Open an existing database file.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < PAGE_SIZE as u64 {
            return Err(StorageError::InvalidDatabase(format!(
                "file is {file_len} bytes, too short to hold the {PAGE_SIZE}-byte header page"
            )));
        }
        let mut header = vec![0u8; PAGE_SIZE];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if &header[0..8] != MAGIC {
            return Err(StorageError::InvalidDatabase(
                "bad magic number".to_string(),
            ));
        }
        let version = header_u32(&header, HDR_VERSION, "format version")?;
        if version != FORMAT_VERSION {
            return Err(StorageError::InvalidDatabase(format!(
                "unsupported format version {version} (this build reads version {FORMAT_VERSION})"
            )));
        }
        let page_count = header_u64(&header, HDR_PAGE_COUNT, "page count")?;
        if page_count == 0 {
            return Err(StorageError::InvalidDatabase(
                "header records zero pages (the header page itself is page 0)".to_string(),
            ));
        }
        let catalog_root = header_u64(&header, HDR_CATALOG_ROOT, "catalog root")?;
        if catalog_root >= page_count {
            return Err(StorageError::InvalidDatabase(format!(
                "catalog root {catalog_root} lies beyond the page count {page_count}"
            )));
        }
        let user_meta = header_u64(&header, HDR_USER_META, "user metadata page")?;
        let checkpoint_lsn = header_u64(&header, HDR_CHECKPOINT_LSN, "checkpoint LSN")?;
        Ok(Pager {
            file,
            path,
            page_count,
            catalog_root: PageId(catalog_root),
            user_meta: PageId(user_meta),
            checkpoint_lsn,
            header_dirty: false,
            fresh: false,
        })
    }

    /// `true` when this pager was just created (no recovery needed).
    pub(crate) fn is_fresh(&self) -> bool {
        self.fresh
    }

    /// The WAL position recorded by the last checkpoint.
    pub fn checkpoint_lsn(&self) -> u64 {
        self.checkpoint_lsn
    }

    /// Record the WAL position of a checkpoint (persisted on the next header
    /// write).
    pub fn set_checkpoint_lsn(&mut self, lsn: u64) {
        self.checkpoint_lsn = lsn;
        self.header_dirty = true;
    }

    /// Overwrite the in-memory header state wholesale. Used by crash
    /// recovery (restoring the state of the last committed transaction) and
    /// by transaction rollback (restoring the begin-time snapshot).
    pub(crate) fn restore_header(
        &mut self,
        page_count: u64,
        catalog_root: PageId,
        user_meta: PageId,
        checkpoint_lsn: u64,
    ) {
        self.page_count = page_count;
        self.catalog_root = catalog_root;
        self.user_meta = user_meta;
        self.checkpoint_lsn = checkpoint_lsn;
        self.header_dirty = true;
    }

    /// Path of the underlying database file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages allocated so far (including the header page).
    pub fn page_count(&self) -> u64 {
        self.page_count
    }

    /// The page id of the catalog root, or NULL when not yet assigned.
    pub fn catalog_root(&self) -> PageId {
        self.catalog_root
    }

    /// Record the page id of the catalog root.
    pub fn set_catalog_root(&mut self, pid: PageId) {
        self.catalog_root = pid;
        self.header_dirty = true;
    }

    /// An extra application-defined metadata page id (reserved for callers).
    pub fn user_meta(&self) -> PageId {
        self.user_meta
    }

    /// Set the application-defined metadata page id.
    pub fn set_user_meta(&mut self, pid: PageId) {
        self.user_meta = pid;
        self.header_dirty = true;
    }

    /// Allocate a fresh page at the end of the file and return its id.
    /// The page contents on disk are undefined until first written.
    pub fn allocate_page(&mut self) -> StorageResult<PageId> {
        let pid = PageId(self.page_count);
        self.page_count += 1;
        self.header_dirty = true;
        Ok(pid)
    }

    /// Read a page from disk. Reading a page that was allocated but never
    /// written returns a zeroed page (the file may be shorter than the
    /// logical page count).
    pub fn read_page(&mut self, pid: PageId) -> StorageResult<Page> {
        if pid.0 >= self.page_count {
            return Err(StorageError::InvalidPage(pid.0));
        }
        let file_len = self.file.metadata()?.len();
        if pid.offset() >= file_len {
            return Ok(Page::new());
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.seek(SeekFrom::Start(pid.offset()))?;
        // The trailing page may be short if a crash interrupted a write; treat
        // missing bytes as zeros.
        let mut read_total = 0usize;
        while read_total < PAGE_SIZE {
            let n = self.file.read(&mut buf[read_total..])?;
            if n == 0 {
                break;
            }
            read_total += n;
        }
        Ok(Page::from_bytes(buf))
    }

    /// Write a page to disk.
    pub fn write_page(&mut self, pid: PageId, page: &Page) -> StorageResult<()> {
        if pid.0 >= self.page_count {
            return Err(StorageError::InvalidPage(pid.0));
        }
        self.file.seek(SeekFrom::Start(pid.offset()))?;
        self.file.write_all(page.bytes())?;
        Ok(())
    }

    /// Persist the header page if it changed since the last sync.
    pub fn write_header(&mut self) -> StorageResult<()> {
        if !self.header_dirty {
            return Ok(());
        }
        let mut page = Page::new();
        page.write_bytes(0, MAGIC);
        page.write_u32(HDR_VERSION, FORMAT_VERSION);
        page.write_u64(HDR_PAGE_COUNT, self.page_count);
        page.write_u64(HDR_CATALOG_ROOT, self.catalog_root.0);
        page.write_u64(HDR_USER_META, self.user_meta.0);
        page.write_u64(HDR_CHECKPOINT_LSN, self.checkpoint_lsn);
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(page.bytes())?;
        self.header_dirty = false;
        Ok(())
    }

    /// Flush everything (header + OS buffers) to stable storage.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.write_header()?;
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    #[test]
    fn create_allocate_write_read() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        let mut pager = Pager::create(&path).unwrap();
        let pid = pager.allocate_page().unwrap();
        assert_eq!(pid, PageId(1));
        let mut page = Page::new();
        page.write_bytes(0, b"hello pages");
        pager.write_page(pid, &page).unwrap();
        let back = pager.read_page(pid).unwrap();
        assert_eq!(back.read_bytes(0, 11), b"hello pages");
    }

    #[test]
    fn reopen_preserves_header() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        {
            let mut pager = Pager::create(&path).unwrap();
            let p1 = pager.allocate_page().unwrap();
            let p2 = pager.allocate_page().unwrap();
            pager.set_catalog_root(p1);
            pager.set_user_meta(p2);
            let mut page = Page::new();
            page.write_u64(0, 777);
            pager.write_page(p2, &page).unwrap();
            pager.sync().unwrap();
        }
        let mut pager = Pager::open(&path).unwrap();
        assert_eq!(pager.page_count(), 3);
        assert_eq!(pager.catalog_root(), PageId(1));
        assert_eq!(pager.user_meta(), PageId(2));
        let page = pager.read_page(PageId(2)).unwrap();
        assert_eq!(page.read_u64(0), 777);
    }

    #[test]
    fn open_rejects_truncated_file() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        {
            let mut pager = Pager::create(&path).unwrap();
            pager.sync().unwrap();
        }
        // Chop the header page short; open must fail with a typed error, not
        // a panic.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(100).unwrap();
        drop(file);
        match Pager::open(&path) {
            Err(StorageError::InvalidDatabase(msg)) => {
                assert!(msg.contains("too short"), "unexpected message: {msg}")
            }
            other => panic!("expected InvalidDatabase, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_wrong_version() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        {
            let mut pager = Pager::create(&path).unwrap();
            pager.sync().unwrap();
        }
        // Rewrite the version field with a future version number.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HDR_VERSION..HDR_VERSION + 4].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match Pager::open(&path) {
            Err(StorageError::InvalidDatabase(msg)) => {
                assert!(msg.contains("version 99"), "unexpected message: {msg}")
            }
            other => panic!("expected InvalidDatabase, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_corrupt_header_fields() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        {
            let mut pager = Pager::create(&path).unwrap();
            pager.sync().unwrap();
        }
        // A catalog root beyond the page count is structural corruption.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HDR_CATALOG_ROOT..HDR_CATALOG_ROOT + 8].copy_from_slice(&77u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Pager::open(&path),
            Err(StorageError::InvalidDatabase(_))
        ));
    }

    #[test]
    fn checkpoint_lsn_roundtrips_through_header() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.crdb");
        {
            let mut pager = Pager::create(&path).unwrap();
            pager.set_checkpoint_lsn(0xAB_CDEF);
            pager.sync().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        assert_eq!(pager.checkpoint_lsn(), 0xAB_CDEF);
    }

    #[test]
    fn open_rejects_non_database() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("junk.bin");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        assert!(matches!(
            Pager::open(&path),
            Err(StorageError::InvalidDatabase(_))
        ));
    }

    #[test]
    fn read_unwritten_allocated_page_is_zeroed() {
        let dir = tempdir().unwrap();
        let mut pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        let pid = pager.allocate_page().unwrap();
        let page = pager.read_page(pid).unwrap();
        assert!(page.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_page_errors() {
        let dir = tempdir().unwrap();
        let mut pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        assert!(matches!(
            pager.read_page(PageId(5)),
            Err(StorageError::InvalidPage(5))
        ));
        let page = Page::new();
        assert!(matches!(
            pager.write_page(PageId(5), &page),
            Err(StorageError::InvalidPage(5))
        ));
    }

    #[test]
    fn many_pages_roundtrip() {
        let dir = tempdir().unwrap();
        let mut pager = Pager::create(dir.path().join("t.crdb")).unwrap();
        let mut pids = Vec::new();
        for i in 0..64u64 {
            let pid = pager.allocate_page().unwrap();
            let mut page = Page::new();
            page.write_u64(0, i * 31);
            pager.write_page(pid, &page).unwrap();
            pids.push(pid);
        }
        for (i, pid) in pids.iter().enumerate() {
            let page = pager.read_page(*pid).unwrap();
            assert_eq!(page.read_u64(0), i as u64 * 31);
        }
    }
}
